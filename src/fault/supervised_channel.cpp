#include "fault/supervised_channel.hpp"

#include <algorithm>
#include <cstring>
#include <future>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"

namespace neptune::fault {
namespace {

/// Wait until every callback currently in flight on `loop` has finished.
/// A stopped loop (killed resource) runs no callbacks, so it is skipped;
/// the wait is bounded in case the loop stops concurrently.
void loop_barrier(EventLoop* loop) {
  if (!loop->loop_running()) return;
  auto done = std::make_shared<std::promise<void>>();
  auto fut = done->get_future();
  loop->post([done] { done->set_value(); });
  fut.wait_for(std::chrono::milliseconds(500));
}

/// Control frames (heartbeats, acks, EOF) are encoded into pooled buffers
/// and sent through the zero-copy ref path, so the steady-state ack stream
/// is allocation-free once the pool is warm.
FrameBufRef encode_control(uint8_t flags, uint32_t link_id, uint64_t ack_value,
                           bool with_payload) {
  FrameHeader h;
  h.flags = flags;
  h.link_id = link_id;
  FrameBufRef buf = FrameBufPool::global().acquire();
  if (with_payload) {
    uint8_t payload[8];
    for (int i = 0; i < 8; ++i) payload[i] = static_cast<uint8_t>(ack_value >> (8 * i));
    encode_frame(h, payload, buf->buffer());
  } else {
    encode_frame(h, {}, buf->buffer());
  }
  return buf;
}

/// The transport config for a supervised link's connections: the stream is
/// all wire frames, so the connection carves them at the socket and both
/// directions ride pooled views end to end.
ChannelConfig framed(ChannelConfig c) {
  c.framed_rx = true;
  return c;
}

void detach_connection(const std::shared_ptr<TcpConnection>& conn) {
  if (!conn) return;
  conn->set_data_callback({});
  conn->set_writable_callback({});
  conn->close();
}

}  // namespace

int64_t compute_reconnect_backoff_ns(const SupervisorConfig& config, uint32_t attempts,
                                     Xoshiro256& rng) {
  int64_t backoff = config.reconnect_backoff_ns;
  for (uint32_t i = 0; i + 1 < attempts; ++i)
    backoff = std::min(backoff * 2, config.reconnect_backoff_max_ns);
  double jitter = 1.0 + config.reconnect_jitter * (rng.next_double() * 2.0 - 1.0);
  int64_t ns = static_cast<int64_t>(static_cast<double>(backoff) * jitter);
  int64_t lo = std::max<int64_t>(config.reconnect_backoff_ns, 1);
  int64_t hi = std::max(config.reconnect_backoff_max_ns, lo);
  return std::clamp(ns, lo, hi);
}

// --- SupervisedTcpSender --------------------------------------------------------

SupervisedTcpSender::SupervisedTcpSender(EventLoop* loop, uint16_t port,
                                         const ChannelConfig& channel_config,
                                         const SupervisorConfig& config, const EdgeId& edge,
                                         FaultInjector* injector,
                                         std::atomic<uint64_t>* reconnect_counter,
                                         EdgeFailureHandler on_failure)
    : loop_(loop),
      port_(port),
      channel_config_(channel_config),
      config_(config),
      edge_(edge),
      injector_(injector),
      reconnect_counter_(reconnect_counter),
      on_failure_(std::move(on_failure)),
      jitter_rng_(config.jitter_seed != 0
                      ? config.jitter_seed
                      : 0x9E3779B9u ^ (static_cast<uint64_t>(port) << 32) ^ edge.link_id) {
  supervisor_ = std::thread([this] { supervise(); });
}

SupervisedTcpSender::~SupervisedTcpSender() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  {
    std::lock_guard lk(mu_);
    conn = std::move(conn_);
    data_path_.reset();
  }
  detach_connection(conn);
  loop_barrier(loop_);
}

SendStatus SupervisedTcpSender::try_send(std::span<const uint8_t> frame) {
  // Legacy copying entry: stage into a pooled buffer, then share the
  // zero-copy retention path.
  FrameBufRef staged = FrameBufPool::global().acquire();
  staged->buffer().write_bytes(frame);
  return try_send(staged);
}

SendStatus SupervisedTcpSender::try_send(const FrameBufRef& frame) {
  size_t size = frame.size();
  {
    std::lock_guard lk(mu_);
    if (shutdown_ || hard_failed_ || eof_enqueued_) return SendStatus::kClosed;
    if (!retained_.empty() && retained_bytes_ + size > channel_config_.capacity_bytes) {
      blocked_ = true;
      return SendStatus::kBlocked;
    }
    retained_.push_back({frame, false});  // pins the caller's buffer
    retained_bytes_ += size;
    ++total_enqueued_;
    bytes_sent_.fetch_add(size, std::memory_order_relaxed);
  }
  pump();
  return SendStatus::kOk;
}

void SupervisedTcpSender::set_writable_callback(std::function<void()> cb) {
  std::lock_guard lk(mu_);
  writable_cb_ = std::move(cb);
}

bool SupervisedTcpSender::writable(size_t bytes) const {
  std::lock_guard lk(mu_);
  if (shutdown_ || hard_failed_ || eof_enqueued_) return false;
  return retained_.empty() || retained_bytes_ + bytes <= channel_config_.capacity_bytes;
}

void SupervisedTcpSender::close() {
  {
    std::lock_guard lk(mu_);
    if (shutdown_ || eof_enqueued_) return;
    FrameBufRef eof = encode_control(FrameHeader::kFlagEof, edge_.link_id, 0, false);
    retained_bytes_ += eof.size();
    retained_.push_back({std::move(eof), /*control=*/true});
    ++total_enqueued_;
    eof_enqueued_ = true;
  }
  pump();
  cv_.notify_all();
}

bool SupervisedTcpSender::delivery_complete() const {
  std::lock_guard lk(mu_);
  return done_;
}

bool SupervisedTcpSender::failed() const {
  std::lock_guard lk(mu_);
  return hard_failed_;
}

void SupervisedTcpSender::supervise() {
  std::unique_lock lk(mu_);
  while (!shutdown_ && !done_ && !hard_failed_) {
    if (link_state_ == LinkState::kDisconnected) {
      // attempts_ counts consecutive failures to reach a *working* link
      // (connect failures, and connections that died before the hello ack
      // arrived) — it resets only once the hello is received.
      if (attempts_ > config_.max_reconnect_attempts) {
        hard_failed_ = true;
        std::string what = "edge " + edge_.to_string() + ": reconnect budget exhausted (" +
                           std::to_string(config_.max_reconnect_attempts) + " attempts)";
        NEPTUNE_LOG_ERROR("%s", what.c_str());
        EdgeFailureHandler handler = on_failure_;
        std::function<void()> wake = writable_cb_;
        lk.unlock();
        if (wake) wake();  // blocked upstream observes kClosed
        if (handler) handler(what);
        lk.lock();
        break;
      }
      if (attempts_ > 0 || had_connection_) {
        auto wait = std::chrono::nanoseconds(
            compute_reconnect_backoff_ns(config_, std::max(attempts_, 1u), jitter_rng_));
        cv_.wait_for(lk, wait, [&] { return shutdown_; });
        if (shutdown_) break;
        if (link_state_ != LinkState::kDisconnected) continue;
      }
      lk.unlock();
      bool ok = attempt_connect();
      lk.lock();
      if (shutdown_) break;
      if (!ok) ++attempts_;
      continue;
    }

    cv_.wait_for(lk, std::chrono::nanoseconds(config_.heartbeat_interval_ns),
                 [&] { return shutdown_ || done_; });
    if (shutdown_ || done_) break;
    if (link_state_ == LinkState::kDisconnected) continue;
    if (!conn_ || conn_->closed()) {
      auto old = link_dead_locked("connection closed");
      lk.unlock();
      detach_connection(old);
      lk.lock();
      continue;
    }
    if (now_ns() - last_inbound_ns_ > config_.peer_timeout_ns) {
      auto old = link_dead_locked("peer timeout");
      lk.unlock();
      detach_connection(old);
      lk.lock();
      continue;
    }
    lk.unlock();
    send_heartbeat();
    lk.lock();
  }
}

bool SupervisedTcpSender::attempt_connect() {
  int fd = tcp_connect_blocking(port_, config_.connect_timeout_ms);
  if (fd < 0) return false;
  auto conn = TcpConnection::create(loop_, fd, framed(channel_config_));
  conn->start();
  uint64_t inc;
  bool was_reconnect;
  {
    std::lock_guard lk(mu_);
    if (shutdown_) {
      conn->close();
      return true;
    }
    ++incarnation_;
    inc = incarnation_;
    conn_ = conn;
    data_path_ = injector_ ? injector_->wrap_sender(edge_, conn, loop_)
                           : std::static_pointer_cast<ChannelSender>(conn);
    ack_decoder_.reset();
    link_state_ = LinkState::kAwaitHello;
    last_inbound_ns_ = now_ns();
    was_reconnect = had_connection_;
    had_connection_ = true;
  }
  if (was_reconnect) {
    NEPTUNE_LOG_INFO("supervised edge %s: reconnected", edge_.to_string().c_str());
    if (reconnect_counter_) reconnect_counter_->fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::record(
        obs::FlightRecorder::register_actor("edge " + edge_.to_string()),
        obs::FlightEventType::kReconnect,
        reconnect_counter_ ? reconnect_counter_->load(std::memory_order_relaxed) : 0,
        edge_.link_id);
  }
  // Set via the (possibly fault-wrapped) data path so a stall decorator can
  // re-fire the callback when its stall expires; it forwards to the
  // connection as well.
  std::shared_ptr<ChannelSender> path;
  {
    std::lock_guard lk(mu_);
    path = data_path_;
  }
  if (path) path->set_writable_callback([this] { pump(); });
  conn->set_data_callback([this, inc] { drain_acks(inc); });
  drain_acks(inc);  // the hello ack may have landed before the callback
  return true;
}

void SupervisedTcpSender::pump() {
  if (pumping_.exchange(true, std::memory_order_acquire)) return;
  for (;;) {
    std::shared_ptr<ChannelSender> path;
    FrameBufRef frame;
    uint64_t idx = 0, inc = 0;
    bool have_work = false;
    {
      std::lock_guard lk(mu_);
      if (!shutdown_ && link_state_ == LinkState::kStreaming && conn_ &&
          sent_through_ < total_enqueued_) {
        idx = sent_through_ + 1;
        size_t pos = static_cast<size_t>(idx - 1 - trimmed_);
        if (pos < retained_.size()) {
          const RetainedFrame& f = retained_[pos];
          frame = f.frame;  // extra ref: survives a concurrent ack trim
          path = f.control ? std::static_pointer_cast<ChannelSender>(conn_) : data_path_;
          inc = incarnation_;
          have_work = true;
        }
      }
    }
    if (!have_work) {
      pumping_.store(false, std::memory_order_release);
      // Re-check: work (or the hello) may have arrived while exiting.
      {
        std::lock_guard lk(mu_);
        if (shutdown_ || link_state_ != LinkState::kStreaming || sent_through_ >= total_enqueued_)
          return;
      }
      if (pumping_.exchange(true, std::memory_order_acquire)) return;
      continue;
    }
    // The ref overload pins the same buffer in the connection's out queue —
    // a retransmission after reconnect sends these exact bytes again, no
    // copy at any hop. (A fault-decorated path falls back to the span
    // adapter; that copy only exists under injection.)
    SendStatus st = path->try_send(frame);
    if (st == SendStatus::kOk) {
      std::lock_guard lk(mu_);
      if (inc == incarnation_ && sent_through_ < idx) sent_through_ = idx;
      continue;
    }
    if (st == SendStatus::kClosed) {
      std::shared_ptr<TcpConnection> old;
      {
        std::lock_guard lk(mu_);
        if (inc == incarnation_) old = link_dead_locked("send failed");
      }
      detach_connection(old);
    }
    // kBlocked: the writable callback will re-enter pump().
    pumping_.store(false, std::memory_order_release);
    return;
  }
}

void SupervisedTcpSender::drain_acks(uint64_t incarnation) {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard lk(mu_);
    if (incarnation != incarnation_ || !conn_) return;
    conn = conn_;
  }
  while (auto chunk = conn->try_receive_buf()) {
    uint64_t acked = 0;
    bool got_ack = false;
    {
      std::lock_guard lk(mu_);
      if (incarnation != incarnation_) return;
      last_inbound_ns_ = now_ns();
      auto on_frame = [&](const FrameHeader& h, std::span<const uint8_t> payload) {
        if ((h.flags & FrameHeader::kFlagAck) != 0 && payload.size() >= 8) {
          uint64_t c = ByteReader(payload).read_u64();
          acked = std::max(acked, c);
          got_ack = true;
        }
      };
      std::span<const uint8_t> bytes = chunk->contents();
      // framed_rx delivers exactly one frame per view — decode in place.
      // Anything else (raw fallback, injector decorators) reassembles.
      if (ack_decoder_.pending_bytes() == 0) {
        if (auto f = decode_whole_frame(bytes)) {
          on_frame(f->header, f->payload);
        } else {
          ack_decoder_.feed(bytes, on_frame);
        }
      } else {
        ack_decoder_.feed(bytes, on_frame);
      }
    }
    if (got_ack) handle_ack(acked, incarnation);
  }
}

void SupervisedTcpSender::handle_ack(uint64_t consumed, uint64_t incarnation) {
  std::function<void()> fire_writable;
  bool do_pump = false;
  {
    std::lock_guard lk(mu_);
    if (incarnation != incarnation_) return;
    if (consumed > total_enqueued_) consumed = total_enqueued_;
    if (link_state_ == LinkState::kAwaitHello) {
      // Hello: the receiver's authoritative consumed count tells us where
      // to resume; everything beyond it is retransmitted.
      link_state_ = LinkState::kStreaming;
      sent_through_ = std::max(consumed, trimmed_);
      attempts_ = 0;  // the link works end to end; reset the retry budget
      do_pump = true;
    }
    while (trimmed_ < consumed && !retained_.empty()) {
      retained_bytes_ -= retained_.front().frame.size();
      retained_.pop_front();  // releases the pin; the pool recycles the buffer
      ++trimmed_;
    }
    if (sent_through_ < trimmed_) sent_through_ = trimmed_;
    if (blocked_ && retained_bytes_ <= channel_config_.low_watermark_bytes) {
      blocked_ = false;
      fire_writable = writable_cb_;
    }
    if (eof_enqueued_ && trimmed_ == total_enqueued_ && !done_) {
      done_ = true;
      cv_.notify_all();
    }
    if (sent_through_ < total_enqueued_) do_pump = true;
  }
  if (fire_writable) fire_writable();
  if (do_pump) pump();
}

std::shared_ptr<TcpConnection> SupervisedTcpSender::link_dead_locked(const char* why) {
  if (link_state_ == LinkState::kDisconnected) return nullptr;
  NEPTUNE_LOG_INFO("supervised edge %s: link down (%s), will reconnect",
                   edge_.to_string().c_str(), why);
  if (link_state_ == LinkState::kAwaitHello) ++attempts_;  // never worked: burn budget
  std::shared_ptr<TcpConnection> old = std::move(conn_);
  conn_.reset();
  data_path_.reset();
  ++incarnation_;
  link_state_ = LinkState::kDisconnected;
  cv_.notify_all();
  return old;
}

void SupervisedTcpSender::send_heartbeat() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard lk(mu_);
    if (link_state_ == LinkState::kDisconnected || !conn_) return;
    conn = conn_;
  }
  FrameBufRef frame = encode_control(FrameHeader::kFlagHeartbeat, edge_.link_id, 0, false);
  conn->try_send(frame);  // best effort; a dead link is caught by the timeout
}

// --- SupervisedTcpReceiver ------------------------------------------------------

SupervisedTcpReceiver::SupervisedTcpReceiver(EventLoop* loop, const ChannelConfig& channel_config,
                                             const SupervisorConfig& config, const EdgeId& edge,
                                             FaultInjector* injector,
                                             std::atomic<uint64_t>* corrupt_counter,
                                             uint16_t listen_port)
    : loop_(loop),
      channel_config_(channel_config),
      config_(config),
      edge_(edge),
      injector_(injector),
      corrupt_counter_(corrupt_counter) {
  last_inbound_ns_ = now_ns();
  listener_ = std::make_unique<TcpListener>(loop, listen_port, [this](int fd) { on_accept(fd); });
  supervisor_ = std::thread([this] { supervise(); });
}

SupervisedTcpReceiver::~SupervisedTcpReceiver() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  {
    std::lock_guard lk(mu_);
    conn = std::move(conn_);
    rx_path_.reset();
  }
  detach_connection(conn);
  listener_.reset();
  loop_barrier(loop_);
}

void SupervisedTcpReceiver::on_accept(int fd) {
  auto conn = TcpConnection::create(loop_, fd, framed(channel_config_));
  conn->start();
  std::shared_ptr<TcpConnection> old;
  uint64_t inc;
  {
    std::lock_guard lk(mu_);
    if (shutdown_) {
      conn->close();
      return;
    }
    old = std::move(conn_);
    conn_ = conn;
    rx_path_ = injector_ ? injector_->wrap_receiver(edge_, conn, loop_)
                         : std::static_pointer_cast<ChannelReceiver>(conn);
    decoder_.reset();
    // Discard everything not yet consumed: the hello ack below reports the
    // consumed count, and the sender retransmits from exactly that point.
    queue_.clear();
    ++incarnation_;
    inc = incarnation_;
    last_inbound_ns_ = now_ns();
  }
  accepts_.fetch_add(1, std::memory_order_relaxed);
  detach_connection(old);
  conn->set_data_callback([this, inc] { drain(inc); });
  send_ack();  // hello: tell the sender where to resume
  drain(inc);
}

void SupervisedTcpReceiver::drain(uint64_t incarnation) {
  std::shared_ptr<ChannelReceiver> rx;
  {
    std::lock_guard lk(mu_);
    if (incarnation != incarnation_ || shutdown_ || !rx_path_) return;
    rx = rx_path_;
  }
  bool need_ack = false;
  bool corrupt = false;
  bool notify = false;
  std::function<void()> data_cb;
  while (!corrupt) {
    auto chunk = rx->try_receive_buf();
    if (!chunk) break;
    std::lock_guard lk(mu_);
    if (incarnation != incarnation_ || shutdown_) return;
    last_inbound_ns_ = now_ns();
    bytes_received_.fetch_add(chunk->size(), std::memory_order_relaxed);
    bool was_empty = queue_.empty();
    auto classify = [&](const FrameHeader& h) -> int {
      if ((h.flags & FrameHeader::kFlagHeartbeat) != 0) return 1;
      if ((h.flags & FrameHeader::kFlagAck) != 0) return 2;  // not expected here; ignore
      if ((h.flags & FrameHeader::kFlagEof) != 0) return 3;
      return 0;  // data
    };
    FrameDecodeStatus s = FrameDecodeStatus::kNeedMore;
    std::optional<DecodedFrame> whole;
    // Fast path: framed_rx connections deliver exactly one CRC-checkable
    // wire frame per view, so the view itself (still pinning the transport's
    // recv chunk) is queued for the runtime — no reassembly, no re-encode.
    // The FrameDecoder fallback covers raw-fallback streams and
    // fault-decorated paths, re-encoding into a pooled buffer.
    if (decoder_.pending_bytes() == 0 &&
        (whole = decode_whole_frame(chunk->contents(), &s)).has_value()) {
      switch (classify(whole->header)) {
        case 1: need_ack = true; break;
        case 2: break;
        case 3: queue_.push_back({FrameBufRef{}, /*eof=*/true}); break;
        default: queue_.push_back({std::move(*chunk), /*eof=*/false}); break;
      }
      s = FrameDecodeStatus::kFrame;
    } else if (decoder_.pending_bytes() == 0 && s != FrameDecodeStatus::kNeedMore) {
      // A whole-looking view with a corrupt header/CRC: fail without
      // polluting the reassembler.
    } else {
      s = decoder_.feed(chunk->contents(),
                        [&](const FrameHeader& h, std::span<const uint8_t> payload) {
                          switch (classify(h)) {
                            case 1: need_ack = true; break;
                            case 2: break;
                            case 3: queue_.push_back({FrameBufRef{}, /*eof=*/true}); break;
                            default: {
                              FrameBufRef reframed = FrameBufPool::global().acquire();
                              encode_frame(h, payload, reframed->buffer());
                              queue_.push_back({std::move(reframed), /*eof=*/false});
                              break;
                            }
                          }
                        });
    }
    if (s == FrameDecodeStatus::kBadMagic || s == FrameDecodeStatus::kBadChecksum ||
        s == FrameDecodeStatus::kBadLength) {
      NEPTUNE_LOG_INFO("supervised edge %s: corrupt frame (status %d), dropping connection",
                       edge_.to_string().c_str(), static_cast<int>(s));
      if (corrupt_counter_) corrupt_counter_->fetch_add(1, std::memory_order_relaxed);
      corrupt = true;
    }
    if (was_empty && !queue_.empty()) {
      notify = true;
      data_cb = data_cb_;
      cv_.notify_all();
    }
  }
  if (corrupt) {
    // Drop the link: the sender reconnects and retransmits everything past
    // our consumed mark, so the corrupted frame is re-delivered intact.
    std::shared_ptr<TcpConnection> bad;
    {
      std::lock_guard lk(mu_);
      if (incarnation == incarnation_) bad = conn_;
    }
    detach_connection(bad);
  }
  if (need_ack) send_ack();
  if (notify && data_cb) data_cb();
}

std::optional<FrameBufRef> SupervisedTcpReceiver::try_receive_buf() {
  std::optional<FrameBufRef> out;
  bool ack = false;
  {
    std::lock_guard lk(mu_);
    while (!queue_.empty()) {
      QueuedFrame& f = queue_.front();
      if (f.eof) {
        ++consumed_;
        eof_consumed_ = true;
        queue_.pop_front();
        ack = true;
        cv_.notify_all();
        continue;
      }
      out = std::move(f.frame);
      queue_.pop_front();
      ++consumed_;
      ack = true;
      break;
    }
  }
  if (ack) send_ack();
  return out;
}

std::optional<FrameBufRef> SupervisedTcpReceiver::receive_buf(std::chrono::nanoseconds timeout) {
  {
    std::unique_lock lk(mu_);
    cv_.wait_for(lk, timeout, [&] { return !queue_.empty() || shutdown_ || eof_consumed_; });
  }
  return try_receive_buf();
}

std::optional<std::vector<uint8_t>> SupervisedTcpReceiver::try_receive() {
  auto buf = try_receive_buf();
  if (!buf) return std::nullopt;
  std::span<const uint8_t> bytes = buf->contents();
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

std::optional<std::vector<uint8_t>> SupervisedTcpReceiver::receive(
    std::chrono::nanoseconds timeout) {
  auto buf = receive_buf(timeout);
  if (!buf) return std::nullopt;
  std::span<const uint8_t> bytes = buf->contents();
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

void SupervisedTcpReceiver::set_data_callback(std::function<void()> cb) {
  std::lock_guard lk(mu_);
  data_cb_ = std::move(cb);
}

bool SupervisedTcpReceiver::closed() const {
  std::lock_guard lk(mu_);
  return eof_consumed_ && queue_.empty();
}

void SupervisedTcpReceiver::send_ack() {
  std::shared_ptr<TcpConnection> conn;
  uint64_t consumed;
  {
    std::lock_guard lk(mu_);
    if (!conn_) return;
    conn = conn_;
    consumed = consumed_;
  }
  FrameBufRef frame = encode_control(FrameHeader::kFlagAck, edge_.link_id, consumed, true);
  conn->try_send(frame);  // best effort; acks are cumulative
}

void SupervisedTcpReceiver::supervise() {
  std::unique_lock lk(mu_);
  while (!shutdown_) {
    cv_.wait_for(lk, std::chrono::nanoseconds(config_.heartbeat_interval_ns),
                 [&] { return shutdown_; });
    if (shutdown_) break;
    if (!conn_ || eof_consumed_) continue;
    if (conn_->closed()) continue;  // awaiting the sender's reconnect
    if (now_ns() - last_inbound_ns_ > config_.peer_timeout_ns) {
      NEPTUNE_LOG_INFO("supervised edge %s: no inbound for %lld ms, dropping connection",
                       edge_.to_string().c_str(),
                       static_cast<long long>(config_.peer_timeout_ns / 1'000'000));
      std::shared_ptr<TcpConnection> dead = conn_;
      last_inbound_ns_ = now_ns();  // avoid re-firing every tick
      lk.unlock();
      detach_connection(dead);
      lk.lock();
    }
  }
}

}  // namespace neptune::fault
