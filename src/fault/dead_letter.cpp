#include "fault/dead_letter.hpp"

#include <cstdio>

#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "obs/incident.hpp"

namespace neptune::fault {

namespace {

constexpr uint32_t kRecordMagic = 0x4E444C51;  // "NDLQ"

size_t entry_footprint(const DeadLetterEntry& e) {
  return e.packet_bytes.size() + e.reason.size() + e.op_id.size() + sizeof(DeadLetterEntry);
}

void serialize_entry(const DeadLetterEntry& e, ByteBuffer& out) {
  out.write_string(e.op_id);
  out.write_u32(e.instance);
  out.write_u32(e.link_id);
  out.write_u32(e.src_instance);
  out.write_u32(e.packet_count);
  out.write_string(e.reason);
  out.write_i64(e.quarantined_ns);
  out.write_block(e.packet_bytes);
}

bool deserialize_entry(ByteReader& r, DeadLetterEntry& e) {
  try {
    e.op_id = r.read_string();
    e.instance = r.read_u32();
    e.link_id = r.read_u32();
    e.src_instance = r.read_u32();
    e.packet_count = r.read_u32();
    e.reason = r.read_string();
    e.quarantined_ns = r.read_i64();
    auto b = r.read_block();
    e.packet_bytes.assign(b.begin(), b.end());
    return true;
  } catch (const BufferUnderflow&) {
    return false;
  }
}

}  // namespace

DeadLetterQueue::DeadLetterQueue(DeadLetterConfig cfg) : cfg_(std::move(cfg)) {}

void DeadLetterQueue::quarantine(DeadLetterEntry entry) {
  // Outside mu_: the reporter samples telemetry whose closures read this
  // queue's counters (and take mu_). Rate-limited inside the reporter, so a
  // poison storm costs one bundle, not one per packet.
  obs::IncidentReporter::trigger_global(
      "quarantine",
      entry.op_id + "[" + std::to_string(entry.instance) + "]: " + entry.reason);
  std::lock_guard lk(mu_);
  ++total_;
  if (mem_.size() + spilled_ >= cfg_.max_entries) {
    // Hard entry cap: keep the earliest evidence of a poisoning, drop the
    // newest (bounded queue, never unbounded disk growth either).
    ++dropped_;
    return;
  }
  mem_bytes_ += entry_footprint(entry);
  mem_.push_back(std::move(entry));
  while (mem_bytes_ > cfg_.max_memory_bytes && mem_.size() > 1) {
    DeadLetterEntry& oldest = mem_.front();
    mem_bytes_ -= entry_footprint(oldest);
    if (!cfg_.spill_path.empty()) {
      spill_locked(oldest);
      ++spilled_;
    } else {
      ++dropped_;
    }
    mem_.pop_front();
  }
}

void DeadLetterQueue::spill_locked(const DeadLetterEntry& e) {
  ByteBuffer body;
  serialize_entry(e, body);
  ByteBuffer rec;
  rec.write_u32(kRecordMagic);
  rec.write_u32(static_cast<uint32_t>(body.size()));
  rec.write_bytes(body.contents());
  rec.write_u32(crc32(body.contents()));
  std::FILE* f = std::fopen(cfg_.spill_path.c_str(), "ab");
  if (f == nullptr) return;
  std::fwrite(rec.data(), 1, rec.size(), f);
  std::fclose(f);
}

size_t DeadLetterQueue::size() const {
  std::lock_guard lk(mu_);
  return mem_.size() + spilled_;
}

size_t DeadLetterQueue::memory_entries() const {
  std::lock_guard lk(mu_);
  return mem_.size();
}

uint64_t DeadLetterQueue::quarantined_total() const {
  std::lock_guard lk(mu_);
  return total_;
}

uint64_t DeadLetterQueue::spilled() const {
  std::lock_guard lk(mu_);
  return spilled_;
}

uint64_t DeadLetterQueue::dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

std::vector<DeadLetterEntry> DeadLetterQueue::drain() {
  std::lock_guard lk(mu_);
  std::vector<DeadLetterEntry> out;
  if (spilled_ > 0 && !cfg_.spill_path.empty()) {
    std::FILE* f = std::fopen(cfg_.spill_path.c_str(), "rb");
    if (f != nullptr) {
      std::vector<uint8_t> file;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        file.insert(file.end(), buf, buf + n);
      std::fclose(f);
      ByteReader r(file.data(), file.size());
      while (r.remaining() >= 12) {
        if (r.read_u32() != kRecordMagic) break;  // torn/garbage tail
        uint32_t len = r.read_u32();
        if (r.remaining() < len + 4u) break;  // truncated record
        auto body = r.read_span(len);
        uint32_t crc = r.read_u32();
        if (crc32(body) != crc) break;  // bit-flipped record ends the scan
        DeadLetterEntry e;
        ByteReader br(body);
        if (!deserialize_entry(br, e)) break;
        out.push_back(std::move(e));
      }
    }
    std::remove(cfg_.spill_path.c_str());
  }
  for (auto& e : mem_) out.push_back(std::move(e));
  mem_.clear();
  mem_bytes_ = 0;
  spilled_ = 0;
  return out;
}

}  // namespace neptune::fault
