// Dead-letter queue for poison-pill quarantine (overload-resilience
// subsystem). When an operator throws or a batch is malformed past the CRC
// layer, the runtime captures the offending packet (or the unprocessed
// remainder of the batch) here and keeps the pipeline running.
//
// Bounded by construction: an in-memory byte budget plus a total entry cap.
// When the memory budget fills, the oldest entries spill to an append-only
// file (`spill_path`) of CRC-framed records; with no spill path they are
// dropped (counted). Entries carry the packets' wire bytes, so tests replay
// them through the normal deserialization path.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace neptune::fault {

/// One quarantined packet or batch remainder.
struct DeadLetterEntry {
  std::string op_id;          ///< operator whose dispatch failed
  uint32_t instance = 0;      ///< failing instance
  uint32_t link_id = 0;       ///< input edge the data arrived on
  uint32_t src_instance = 0;  ///< sending instance on that edge
  uint32_t packet_count = 0;  ///< packets inside `packet_bytes`
  std::string reason;         ///< exception what() / deadline description
  int64_t quarantined_ns = 0;
  /// The quarantined packets in StreamPacket wire format, concatenated —
  /// replayable through ByteReader + StreamPacket::deserialize.
  std::vector<uint8_t> packet_bytes;
};

struct DeadLetterConfig {
  /// In-memory payload budget; the oldest entries spill (or drop) past it.
  size_t max_memory_bytes = 1 << 20;
  /// Total retained entries, in memory plus spilled. New quarantines past
  /// this cap are counted in dropped() and discarded (the earliest evidence
  /// of a poisoning is the valuable part).
  size_t max_entries = 1024;
  /// Append-only spill file; empty disables spilling (oldest entries are
  /// dropped instead once the memory budget fills).
  std::string spill_path;
};

class DeadLetterQueue {
 public:
  explicit DeadLetterQueue(DeadLetterConfig cfg = {});

  /// Thread-safe; called from worker threads on the quarantine path.
  void quarantine(DeadLetterEntry entry);

  /// Entries currently retained (memory + spilled to disk).
  size_t size() const;
  size_t memory_entries() const;
  uint64_t quarantined_total() const;  ///< all quarantine() calls, incl. dropped
  uint64_t spilled() const;            ///< entries written to the spill file
  uint64_t dropped() const;            ///< entries discarded by the bounds

  /// Drain everything for inspection/replay: spilled entries first (oldest),
  /// then in-memory ones. Clears the queue and truncates the spill file.
  /// A torn/corrupt spill record ends the file scan (prior records are kept).
  std::vector<DeadLetterEntry> drain();

  const DeadLetterConfig& config() const { return cfg_; }

 private:
  void spill_locked(const DeadLetterEntry& e);

  const DeadLetterConfig cfg_;
  mutable std::mutex mu_;
  std::deque<DeadLetterEntry> mem_;
  size_t mem_bytes_ = 0;
  uint64_t spilled_ = 0;
  uint64_t dropped_ = 0;
  uint64_t total_ = 0;
};

}  // namespace neptune::fault
