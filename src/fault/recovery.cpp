#include "fault/recovery.hpp"

#include "common/clock.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/incident.hpp"

namespace neptune::fault {

RecoveryCoordinator::RecoveryCoordinator(Runtime& runtime, StreamGraph graph,
                                         RecoveryOptions options)
    : runtime_(runtime), graph_(std::move(graph)), options_(std::move(options)) {
  if (!options_.snapshot_dir.empty()) store_ = std::make_unique<SnapshotStore>(options_.snapshot_dir);
  obs::TelemetryRegistry& reg = obs::TelemetryRegistry::global();
  std::vector<std::pair<std::string, std::string>> labels{{"job", graph_.name()}};
  telemetry_.push_back(reg.register_series(
      {"neptune_checkpoints_total", labels, obs::SeriesKind::kCounter,
       "Automatic checkpoints captured by the recovery coordinator"},
      [this] { return static_cast<double>(checkpoints_.load(std::memory_order_relaxed)); }));
  telemetry_.push_back(reg.register_series(
      {"neptune_recoveries_total", labels, obs::SeriesKind::kCounter,
       "Checkpoint restores after detected failures"},
      [this] { return static_cast<double>(recoveries_.load(std::memory_order_relaxed)); }));
  telemetry_.push_back(reg.register_series(
      {"neptune_recovery_seconds_total", labels, obs::SeriesKind::kCounter,
       "Cumulative failure-to-restored wall time"},
      [this] {
        return static_cast<double>(recovery_ns_.load(std::memory_order_relaxed)) * 1e-9;
      }));
  telemetry_.push_back(reg.register_series(
      {"neptune_watchdog_stalls_total", labels, obs::SeriesKind::kCounter,
       "Stuck-operator detections escalated by the watchdog"},
      [this] { return static_cast<double>(watchdog_stalls_.load(std::memory_order_relaxed)); }));
  telemetry_.push_back(reg.register_series(
      {"neptune_snapshots_persisted_total", labels, obs::SeriesKind::kCounter,
       "Checkpoints durably written to the snapshot store"},
      [this] {
        return static_cast<double>(snapshots_persisted_.load(std::memory_order_relaxed));
      }));
  telemetry_.push_back(reg.register_series(
      {"neptune_checkpoint_quiesce_timeouts", labels, obs::SeriesKind::kCounter,
       "Checkpoint attempts abandoned because the pipeline failed to drain "
       "within the quiesce timeout"},
      [this] {
        return static_cast<double>(quiesce_timeouts_.load(std::memory_order_relaxed));
      }));
}

RecoveryCoordinator::~RecoveryCoordinator() { stop(); }

void RecoveryCoordinator::attach(const std::shared_ptr<Job>& job) {
  // The handler may fire from a supervisor thread long after this
  // coordinator is gone (old jobs and their channels are kept alive by the
  // runtime), so it owns the flag it touches and nothing else. The monitor
  // polls the flag every poll_interval.
  job->set_failure_handler(
      [flag = failure_flag_](const std::string&) { flag->store(true, std::memory_order_release); });
}

std::shared_ptr<Job> RecoveryCoordinator::start() {
  auto job = runtime_.submit(graph_);
  attach(job);
  // Crash restart: seed the first incarnation from the newest valid on-disk
  // snapshot (a torn or bit-flipped current file falls back to the previous
  // good one inside SnapshotStore::load).
  if (store_) {
    if (auto snap = store_->load()) {
      job->restore_state(*snap);
      std::lock_guard<std::mutex> lk(mu_);
      snapshot_ = std::move(*snap);
      have_snapshot_ = true;
      restored_from_disk_ = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
  }
  start_ns_ = now_ns();
  job->start();
  if (options_.watchdog.enabled) arm_watchdog(job);
  monitor_ = std::thread([this] { monitor(); });
  return job;
}

void RecoveryCoordinator::arm_watchdog(const std::shared_ptr<Job>& job) {
  watchdog_.reset();  // joins the previous incarnation's watch thread
  watchdog_ = std::make_unique<OperatorWatchdog>(
      job, options_.watchdog, [this, weak = std::weak_ptr<Job>(job)](const std::string& what) {
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
        if (auto j = weak.lock()) j->report_failure(what);
      });
}

std::shared_ptr<Job> RecoveryCoordinator::job() const {
  std::lock_guard<std::mutex> lk(mu_);
  return job_;
}

bool RecoveryCoordinator::wait(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, timeout, [&] { return done_; });
  return completed_;
}

void RecoveryCoordinator::stop() {
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  watchdog_.reset();  // after the monitor: recover() re-arms it
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job = job_;
  }
  if (job && !job->completed()) job->stop();
}

bool RecoveryCoordinator::permanently_failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return permanent_failure_;
}

bool RecoveryCoordinator::checkpoint_now() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job = job_;
  }
  return job && take_checkpoint(job);
}

JobMetricsSnapshot RecoveryCoordinator::metrics() const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job = job_;
  }
  JobMetricsSnapshot m = job ? job->metrics() : JobMetricsSnapshot{};
  m.checkpoints_taken = checkpoints_.load(std::memory_order_relaxed);
  m.recoveries = recoveries_.load(std::memory_order_relaxed);
  m.recovery_ns = recovery_ns_.load(std::memory_order_relaxed);
  return m;
}

bool RecoveryCoordinator::take_checkpoint(const std::shared_ptr<Job>& job) {
  // A checkpoint is only consistent if the pipeline fully drains; skip when
  // the job is already failing or a resource is down (the snapshot would
  // capture a half-processed barrier).
  if (job->failed() || job->completed() || any_resource_down()) return false;
  job->pause();
  bool quiet = job->quiesce(options_.quiesce_timeout);
  if (!quiet) {
    // A pipeline that cannot drain within the budget is a health signal in
    // its own right (wedged operator, saturated edge, runaway backlog) —
    // surface it instead of silently skipping the checkpoint.
    quiesce_timeouts_.fetch_add(1, std::memory_order_relaxed);
    NEPTUNE_LOG_WARN("checkpoint: job '%s' failed to quiesce within %.1fs — skipping",
                     job->name().c_str(),
                     std::chrono::duration<double>(options_.quiesce_timeout).count());
    obs::IncidentReporter::trigger_global(
        "quiesce-timeout",
        job->name() + ": pipeline failed to drain within " +
            std::to_string(
                std::chrono::duration_cast<std::chrono::milliseconds>(options_.quiesce_timeout)
                    .count()) +
            " ms; checkpoint skipped");
  }
  bool healthy = quiet && !job->failed() && !any_resource_down() &&
                 !failure_flag_->load(std::memory_order_acquire);
  if (healthy) {
    JobSnapshot snap = job->checkpoint_state();
    if (store_ && store_->save(snap)) {
      snapshots_persisted_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      snapshot_ = std::move(snap);
      have_snapshot_ = true;
    }
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::record(
        obs::FlightRecorder::register_actor("job " + graph_.name()),
        obs::FlightEventType::kCheckpoint, checkpoints_.load(std::memory_order_relaxed));
  }
  job->resume();
  return healthy;
}

void RecoveryCoordinator::execute_due_kills() {
  auto injector = runtime_.options().fault_injector;
  if (!injector) return;
  const int64_t elapsed = now_ns() - start_ns_;
  for (const ResourceKill& kill : injector->resource_kills()) {
    if (kill.executed || elapsed < kill.at_ns_after_start) continue;
    if (kill.resource_index >= runtime_.resource_count()) continue;
    NEPTUNE_LOG_WARN("fault: killing resource %zu (scheduled at t+%.3fs)", kill.resource_index,
                     static_cast<double>(kill.at_ns_after_start) * 1e-9);
    injector->mark_kill_executed(kill.resource_index);
    runtime_.resource(kill.resource_index)->stop();
  }
}

bool RecoveryCoordinator::any_resource_down() const {
  for (size_t i = 0; i < runtime_.resource_count(); ++i) {
    if (!runtime_.resource(i)->running()) return true;
  }
  return false;
}

void RecoveryCoordinator::monitor() {
  int64_t last_checkpoint_ns = now_ns();
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::nanoseconds(options_.poll_interval_ns),
                   [&] { return stop_.load(std::memory_order_acquire); });
    }
    if (stop_.load(std::memory_order_acquire)) break;

    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lk(mu_);
      job = job_;
    }
    if (!job) break;

    execute_due_kills();

    const bool failed = failure_flag_->load(std::memory_order_acquire) || job->failed() ||
                        any_resource_down();
    if (failed) {
      recover();
      if (stop_.load(std::memory_order_acquire)) break;
      last_checkpoint_ns = now_ns();
      continue;
    }

    if (job->completed()) {
      std::lock_guard<std::mutex> lk(mu_);
      done_ = true;
      completed_ = true;
      cv_.notify_all();
      break;
    }

    if (now_ns() - last_checkpoint_ns >= options_.checkpoint_interval_ns) {
      take_checkpoint(job);
      last_checkpoint_ns = now_ns();  // even on failure: don't hammer pause/resume
    }
  }
}

void RecoveryCoordinator::recover() {
  if (recoveries_.load(std::memory_order_relaxed) >= options_.max_recoveries) {
    NEPTUNE_LOG_ERROR("recovery: budget exhausted (%u), giving up", options_.max_recoveries);
    std::lock_guard<std::mutex> lk(mu_);
    permanent_failure_ = true;
    done_ = true;
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
    return;
  }

  const int64_t t0 = now_ns();
  std::shared_ptr<Job> old;
  bool from_snapshot = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    old = job_;
    from_snapshot = have_snapshot_;
  }
  failure_flag_->store(false, std::memory_order_release);
  watchdog_.reset();  // stop watching the wreck; re-armed on the fresh incarnation
  NEPTUNE_LOG_WARN("recovery: job '%s' failed (%s) — restoring from %s", old->name().c_str(),
                   old->failed() ? old->failure_reason().c_str() : "resource down",
                   from_snapshot ? "latest checkpoint" : "scratch (no checkpoint yet)");
  // Bundle the wreck before teardown wipes the evidence.
  obs::FlightRecorder::record(
      obs::FlightRecorder::register_actor("job " + graph_.name()),
      obs::FlightEventType::kRecovery, recoveries_.load(std::memory_order_relaxed) + 1);
  obs::IncidentReporter::trigger_global(
      "recovery", old->name() + ": " +
                      (old->failed() ? old->failure_reason() : "resource down"));

  // Tear the wreck down (best effort — dead resources never run the stop
  // notifications, which is fine; the runtime keeps the old job's carcass
  // alive so late supervisor callbacks stay safe).
  old->stop();
  // Wait until the wreck stops moving before restoring state: workers may
  // still be draining in-flight batches into operators that are shared with
  // the next incarnation (Job::wait would hang on a dead resource, so watch
  // packet movement instead — frozen instantly there, drained in ms here).
  auto moved = [&] {
    JobMetricsSnapshot m = old->metrics();
    return m.total(&OperatorMetricsSnapshot::packets_in) +
           m.total(&OperatorMetricsSnapshot::packets_out) +
           m.total(&OperatorMetricsSnapshot::executions);
  };
  uint64_t prev = moved();
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    uint64_t cur = moved();
    if (cur == prev) break;
    prev = cur;
  }

  // Restart any dead resource: fresh IO loops + worker pools. Old task
  // entries stay terminated/idle and are never rescheduled.
  for (size_t i = 0; i < runtime_.resource_count(); ++i) {
    if (!runtime_.resource(i)->running()) {
      NEPTUNE_LOG_INFO("recovery: restarting resource %zu", i);
      runtime_.resource(i)->start();
    }
  }

  // Resubmit the same graph and restore the latest consistent snapshot;
  // sources rewind to their recorded replay positions.
  auto fresh = runtime_.submit(graph_);
  attach(fresh);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (have_snapshot_) fresh->restore_state(snapshot_);
    job_ = fresh;
  }
  fresh->start();
  if (options_.watchdog.enabled) arm_watchdog(fresh);

  recoveries_.fetch_add(1, std::memory_order_relaxed);
  recovery_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  NEPTUNE_LOG_INFO("recovery: job '%s' restored in %.1f ms", fresh->name().c_str(),
                   static_cast<double>(now_ns() - t0) * 1e-6);
}

}  // namespace neptune::fault
