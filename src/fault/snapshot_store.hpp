// Crash-safe persistence for JobSnapshot (checkpoint durability satellite).
//
// Save protocol: serialize + CRC32 footer into `<dir>/snapshot.tmp`, fsync
// the file, rotate the previous `snapshot.bin` to `snapshot.prev`, then
// atomically rename the temp file into place and fsync the directory. A
// crash at any point leaves either the old snapshot, the new snapshot, or
// both — never a half-written current file.
//
// Load tries `snapshot.bin` first; a torn or bit-flipped file (bad footer
// magic, length mismatch, or CRC mismatch) falls back to `snapshot.prev`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "neptune/state.hpp"

namespace neptune::fault {

class SnapshotStore {
 public:
  /// `dir` must exist (or be creatable); files live directly inside it.
  explicit SnapshotStore(std::string dir);

  /// Durably persist `snap`. Returns false on I/O failure (the previous
  /// snapshot, if any, is untouched in that case).
  bool save(const JobSnapshot& snap);

  /// Best available snapshot: current, else the rotated previous one, else
  /// nullopt. Corrupt/torn files are skipped, not deleted.
  std::optional<JobSnapshot> load() const;

  /// True if the *current* file exists but fails validation — i.e. load()
  /// had to fall back (or found nothing). For tests and diagnostics.
  bool current_is_corrupt() const;

  // --- epoch-tagged snapshots (coordinated multi-process checkpoints) ------
  //
  // A distributed deployment commits checkpoints in numbered epochs: every
  // worker persists its slice under the same epoch, and the supervisor
  // commits the epoch only after all slices are durable. Epoch files use
  // the same tmp+fsync+rename protocol and CRC32 footer as save()/load().

  /// Durably persist `snap` as `snapshot-<epoch>.bin`, then prune epochs
  /// older than the newest `retain` (default 4). False on I/O failure.
  bool save_tagged(const JobSnapshot& snap, uint64_t epoch, size_t retain = 4);

  /// Validated snapshot for exactly `epoch`, or nullopt when missing/corrupt.
  std::optional<JobSnapshot> load_tagged(uint64_t epoch) const;

  /// Epochs with a file present (validity not checked), ascending.
  std::vector<uint64_t> tagged_epochs() const;

  std::string current_path() const;
  std::string previous_path() const;
  std::string temp_path() const;
  std::string tagged_path(uint64_t epoch) const;

 private:
  std::string dir_;
};

}  // namespace neptune::fault
