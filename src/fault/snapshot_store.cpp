#include "fault/snapshot_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/crc32.hpp"

namespace neptune::fault {

namespace {

// File layout: [snapshot bytes][u32 footer magic][u32 body len][u32 crc32].
// The snapshot body already carries its own magic/CRC; the footer guards
// against truncation (a torn tail chops the footer off first) and lets the
// reader validate without parsing.
constexpr uint32_t kFooterMagic = 0x4E505346;  // "NPSF"
constexpr size_t kFooterSize = 12;

bool read_file(const std::string& path, std::vector<uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.insert(out.end(), buf, buf + n);
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

uint32_t load_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void store_u32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

/// Validated snapshot body from `path`, or nullopt for missing/torn/corrupt.
std::optional<JobSnapshot> load_validated(const std::string& path) {
  std::vector<uint8_t> file;
  if (!read_file(path, file) || file.size() < kFooterSize) return std::nullopt;
  const uint8_t* footer = file.data() + file.size() - kFooterSize;
  if (load_u32(footer) != kFooterMagic) return std::nullopt;
  uint32_t len = load_u32(footer + 4);
  uint32_t crc = load_u32(footer + 8);
  if (len != file.size() - kFooterSize) return std::nullopt;  // truncated body
  std::span<const uint8_t> body(file.data(), len);
  if (crc32(body) != crc) return std::nullopt;  // bit flip anywhere in the body
  try {
    return JobSnapshot::deserialize(body);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool fsync_path(const std::string& path, bool directory) {
  int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best-effort; save() reports real failures
}

std::string SnapshotStore::current_path() const { return dir_ + "/snapshot.bin"; }
std::string SnapshotStore::previous_path() const { return dir_ + "/snapshot.prev"; }
std::string SnapshotStore::temp_path() const { return dir_ + "/snapshot.tmp"; }

bool SnapshotStore::save(const JobSnapshot& snap) {
  ByteBuffer body;
  snap.serialize(body);
  uint8_t footer[kFooterSize];
  store_u32(kFooterMagic, footer);
  store_u32(static_cast<uint32_t>(body.size()), footer + 4);
  store_u32(crc32(body.contents()), footer + 8);

  const std::string tmp = temp_path();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
            std::fwrite(footer, 1, kFooterSize, f) == kFooterSize &&
            std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }

  // Keep the last good snapshot as the fallback, then swing the new one in.
  if (file_exists(current_path())) {
    if (std::rename(current_path().c_str(), previous_path().c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), current_path().c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_path(dir_, /*directory=*/true);  // make both renames durable
  return true;
}

std::optional<JobSnapshot> SnapshotStore::load() const {
  if (auto cur = load_validated(current_path())) return cur;
  return load_validated(previous_path());
}

std::string SnapshotStore::tagged_path(uint64_t epoch) const {
  return dir_ + "/snapshot-" + std::to_string(epoch) + ".bin";
}

bool SnapshotStore::save_tagged(const JobSnapshot& snap, uint64_t epoch, size_t retain) {
  ByteBuffer body;
  snap.serialize(body);
  uint8_t footer[kFooterSize];
  store_u32(kFooterMagic, footer);
  store_u32(static_cast<uint32_t>(body.size()), footer + 4);
  store_u32(crc32(body.contents()), footer + 8);

  const std::string tmp = temp_path();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
            std::fwrite(footer, 1, kFooterSize, f) == kFooterSize &&
            std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), tagged_path(epoch).c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_path(dir_, /*directory=*/true);

  // Bounded retention: keep the newest `retain` epochs so a torn commit of
  // epoch N can always roll back to a fully committed earlier epoch.
  std::vector<uint64_t> epochs = tagged_epochs();
  if (retain > 0 && epochs.size() > retain) {
    for (size_t i = 0; i + retain < epochs.size(); ++i)
      std::remove(tagged_path(epochs[i]).c_str());
  }
  return true;
}

std::optional<JobSnapshot> SnapshotStore::load_tagged(uint64_t epoch) const {
  return load_validated(tagged_path(epoch));
}

std::vector<uint64_t> SnapshotStore::tagged_epochs() const {
  std::vector<uint64_t> out;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return out;
  while (struct dirent* e = ::readdir(d)) {
    std::string_view name(e->d_name);
    if (!name.starts_with("snapshot-") || !name.ends_with(".bin")) continue;
    std::string digits(name.substr(9, name.size() - 13));
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool SnapshotStore::current_is_corrupt() const {
  return file_exists(current_path()) && !load_validated(current_path()).has_value();
}

}  // namespace neptune::fault
