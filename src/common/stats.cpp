#include "common/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace neptune {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

OnlineStats summarize(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s;
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Numerical Recipes
// style modified Lentz method).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) + a * std::log(x) +
                 b * std::log(1.0 - x);
  double bt = std::exp(ln_bt);
  // Use the continued fraction directly where it converges fast, and the
  // symmetry relation elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) return bt * betacf(a, b, x) / a;
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0) throw std::invalid_argument("student_t_cdf: df must be > 0");
  double x = df / (df + t * t);
  double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0 ? 1.0 - p : p;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  OnlineStats sa = summarize(a);
  OnlineStats sb = summarize(b);
  if (sa.count() < 2 || sb.count() < 2)
    throw std::invalid_argument("welch_t_test: need >= 2 samples per group");

  double va = sa.variance() / static_cast<double>(sa.count());
  double vb = sb.variance() / static_cast<double>(sb.count());
  TTestResult r;
  if (va + vb == 0.0) {
    // Degenerate constant samples: identical means -> p = 1, else p = 0.
    r.t = sa.mean() == sb.mean() ? 0.0 : std::numeric_limits<double>::infinity();
    r.df = static_cast<double>(sa.count() + sb.count() - 2);
    r.p_two_tailed = sa.mean() == sb.mean() ? 1.0 : 0.0;
    r.p_one_tailed = sa.mean() > sb.mean() ? 0.0 : 1.0;
    return r;
  }
  r.t = (sa.mean() - sb.mean()) / std::sqrt(va + vb);
  double na1 = static_cast<double>(sa.count() - 1);
  double nb1 = static_cast<double>(sb.count() - 1);
  r.df = (va + vb) * (va + vb) / (va * va / na1 + vb * vb / nb1);
  double cdf = student_t_cdf(r.t, r.df);
  r.p_one_tailed = 1.0 - cdf;  // H1: mean(a) > mean(b)
  double tail = r.t >= 0 ? 1.0 - cdf : cdf;
  r.p_two_tailed = 2.0 * tail;
  if (r.p_two_tailed > 1.0) r.p_two_tailed = 1.0;
  return r;
}

}  // namespace neptune
