#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace neptune {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw JsonError(msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  JsonValue parse_value() {
    // The parser recurses per nesting level; without a cap a hostile
    // document ("[[[[[...") overflows the stack instead of raising
    // JsonError (found by fuzz/json_topology_fuzz).
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    skip_ws();
    char c = peek();
    JsonValue v = [&] {
      switch (c) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return JsonValue(parse_string());
        case 't': parse_literal("true"); return JsonValue(true);
        case 'f': parse_literal("false"); return JsonValue(false);
        case 'n': parse_literal("null"); return JsonValue(nullptr);
        default: return parse_number();
      }
    }();
    --depth_;
    return v;
  }

  void parse_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    double d = 0;
    auto [ptr, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, d);
    if (ec != std::errc{} || ptr != s_.data() + pos_) fail("invalid number");
    return JsonValue(d);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // UTF-8 encode (BMP only).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void dump_value(const JsonValue& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

void dump_value(const JsonValue& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& e : a) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_value(e, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, e] : o) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(k, out);
      out += indent > 0 ? ": " : ":";
      dump_value(e, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace neptune
