#include "common/bytes.hpp"

// Header-only today; the translation unit pins the vtable-free classes into
// the common library and gives a home for future out-of-line definitions.
namespace neptune {}
