// Bump-pointer arena for per-batch scratch (paper §III-B3 taken to its
// logical end): operators running in batch mode get one arena per scheduled
// execution, allocate scratch with pointer arithmetic, and the runtime
// resets the whole arena in O(1) when the execution ends. Nothing is ever
// freed individually; destructors are NOT run — only use the arena for
// trivially-destructible scratch (bytes, PODs, string copies).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

namespace neptune {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes) : block_bytes_(block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. Never returns nullptr (throws std::bad_alloc
  /// via the underlying allocator on exhaustion of the address space).
  void* allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t(align) - 1);
    if (p + bytes > limit_) {
      refill(bytes, align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t(align) - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Typed scratch array of `n` default-initialized Ts. T must be
  /// trivially destructible (no destructors run at reset()).
  template <typename T>
  T* allocate_array(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors — only trivially-destructible scratch");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copy a byte range into the arena (e.g. to own view data past a batch).
  std::string_view copy_string(std::string_view s) {
    char* p = allocate_array<char>(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// O(1) reset: rewind to the first block, keep every block's memory.
  void reset() {
    block_index_ = 0;
    if (blocks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      cursor_ = reinterpret_cast<uintptr_t>(blocks_[0].data.get());
      limit_ = cursor_ + blocks_[0].size;
    }
  }

  /// Bytes allocated since the last reset (diagnostics/benchmarks).
  size_t bytes_used() const {
    size_t used = 0;
    for (size_t i = 0; i + 1 <= block_index_ && i < blocks_.size(); ++i) used += blocks_[i].size;
    if (block_index_ < blocks_.size()) {
      used += cursor_ - reinterpret_cast<uintptr_t>(blocks_[block_index_].data.get());
    }
    return used;
  }
  /// Total bytes held across all blocks (retained across resets).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void refill(size_t bytes, size_t align) {
    // Advance to the next retained block that fits, or grow a new one.
    size_t need = bytes + align;
    while (block_index_ + 1 < blocks_.size()) {
      ++block_index_;
      if (blocks_[block_index_].size >= need) {
        cursor_ = reinterpret_cast<uintptr_t>(blocks_[block_index_].data.get());
        limit_ = cursor_ + blocks_[block_index_].size;
        return;
      }
    }
    size_t size = std::max(block_bytes_, need);
    Block b{std::make_unique<uint8_t[]>(size), size};
    cursor_ = reinterpret_cast<uintptr_t>(b.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(b));
    block_index_ = blocks_.size() - 1;
  }

  const size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t block_index_ = 0;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
};

}  // namespace neptune
