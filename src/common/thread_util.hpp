// Thread naming and kernel scheduler observability. The context-switch
// counters back Table I of the paper: batched scheduling is validated by the
// drop in non-voluntary context switches read from /proc/self/status.
#pragma once

#include <cstdint>
#include <string>

namespace neptune {

/// Name the calling thread (visible in /proc and debuggers). Truncated to
/// the kernel's 15-character limit.
void set_thread_name(const std::string& name);

/// Context switch counters for the whole process, from /proc/self/status.
struct ContextSwitches {
  uint64_t voluntary = 0;
  uint64_t nonvoluntary = 0;
  uint64_t total() const { return voluntary + nonvoluntary; }
};

/// Read the process-wide context switch counters. Returns zeros when
/// /proc is unavailable (non-Linux).
ContextSwitches read_context_switches();

/// Context switch counters for the calling thread only
/// (/proc/self/task/<tid>/status).
ContextSwitches read_thread_context_switches();

}  // namespace neptune
