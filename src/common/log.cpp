#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/clock.hpp"

namespace neptune {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_at(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[%12.6f][%s] %s\n", static_cast<double>(now_ns()) * 1e-9, level_name(level),
               body);
}

}  // namespace neptune
