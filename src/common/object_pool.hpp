// Thread-safe object pool — the mechanism behind NEPTUNE's frugal object
// creation scheme (paper §III-B3). Acquire returns a PoolPtr (RAII) that
// recycles the object on destruction instead of freeing it, so steady-state
// stream processing performs zero heap allocation per packet.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace neptune {

/// Allocation statistics, used by the object-reuse benchmarks to report the
/// C++ analogue of the paper's GC-time metric.
struct PoolStats {
  uint64_t acquires = 0;   ///< total acquire() calls
  uint64_t recycled = 0;   ///< acquires served from the free list
  uint64_t created = 0;    ///< acquires that had to heap-allocate
  uint64_t released = 0;   ///< objects returned to the pool
  uint64_t discarded = 0;  ///< objects dropped because the pool was full

  double reuse_ratio() const {
    return acquires == 0 ? 0.0 : static_cast<double>(recycled) / static_cast<double>(acquires);
  }
};

template <typename T>
class ObjectPool : public std::enable_shared_from_this<ObjectPool<T>> {
 public:
  /// `max_idle` bounds the free list so a transient burst can't pin memory
  /// forever; 0 means unbounded.
  static std::shared_ptr<ObjectPool> create(size_t max_idle = 0) {
    return std::shared_ptr<ObjectPool>(new ObjectPool(max_idle));
  }

  ~ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  class PoolPtr {
   public:
    PoolPtr() = default;
    PoolPtr(std::unique_ptr<T> obj, std::weak_ptr<ObjectPool> pool)
        : obj_(std::move(obj)), pool_(std::move(pool)) {}
    PoolPtr(PoolPtr&&) noexcept = default;
    PoolPtr& operator=(PoolPtr&& other) noexcept {
      if (this != &other) {
        release();
        obj_ = std::move(other.obj_);
        pool_ = std::move(other.pool_);
      }
      return *this;
    }
    PoolPtr(const PoolPtr&) = delete;
    PoolPtr& operator=(const PoolPtr&) = delete;
    ~PoolPtr() { release(); }

    T* get() const noexcept { return obj_.get(); }
    T& operator*() const noexcept { return *obj_; }
    T* operator->() const noexcept { return obj_.get(); }
    explicit operator bool() const noexcept { return static_cast<bool>(obj_); }

    /// Return the object to its pool early (idempotent).
    void release() {
      if (!obj_) return;
      if (auto p = pool_.lock()) {
        p->recycle(std::move(obj_));
      } else {
        obj_.reset();  // pool gone; plain delete
      }
    }

    /// Detach ownership from the pool (object will be heap-freed normally).
    std::unique_ptr<T> detach() { return std::move(obj_); }

   private:
    std::unique_ptr<T> obj_;
    std::weak_ptr<ObjectPool> pool_;
  };

  /// Get an object, recycling an idle one when available. Args are only used
  /// when a fresh object must be constructed; recycled objects are returned
  /// as-is — callers reset state via their own clear()/reset() protocol.
  template <typename... Args>
  PoolPtr acquire(Args&&... args) {
    stats_acquires_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lk(mu_);
      if (!idle_.empty()) {
        std::unique_ptr<T> obj = std::move(idle_.back());
        idle_.pop_back();
        stats_recycled_.fetch_add(1, std::memory_order_relaxed);
        return PoolPtr(std::move(obj), this->weak_from_this());
      }
    }
    stats_created_.fetch_add(1, std::memory_order_relaxed);
    return PoolPtr(std::make_unique<T>(std::forward<Args>(args)...), this->weak_from_this());
  }

  size_t idle_count() const {
    std::lock_guard lk(mu_);
    return idle_.size();
  }

  PoolStats stats() const {
    PoolStats s;
    s.acquires = stats_acquires_.load(std::memory_order_relaxed);
    s.recycled = stats_recycled_.load(std::memory_order_relaxed);
    s.created = stats_created_.load(std::memory_order_relaxed);
    s.released = stats_released_.load(std::memory_order_relaxed);
    s.discarded = stats_discarded_.load(std::memory_order_relaxed);
    return s;
  }

  /// Pre-populate the free list.
  template <typename... Args>
  void warm(size_t n, Args&&... args) {
    std::lock_guard lk(mu_);
    for (size_t i = 0; i < n; ++i) idle_.push_back(std::make_unique<T>(args...));
  }

 private:
  explicit ObjectPool(size_t max_idle) : max_idle_(max_idle) {}

  void recycle(std::unique_ptr<T> obj) {
    stats_released_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    if (max_idle_ != 0 && idle_.size() >= max_idle_) {
      stats_discarded_.fetch_add(1, std::memory_order_relaxed);
      return;  // obj deleted here
    }
    idle_.push_back(std::move(obj));
  }

  const size_t max_idle_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> idle_;
  std::atomic<uint64_t> stats_acquires_{0};
  std::atomic<uint64_t> stats_recycled_{0};
  std::atomic<uint64_t> stats_created_{0};
  std::atomic<uint64_t> stats_released_{0};
  std::atomic<uint64_t> stats_discarded_{0};
};

}  // namespace neptune
