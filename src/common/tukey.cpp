#include "common/tukey.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace neptune {
namespace {

// 40-point Gauss-Legendre nodes/weights on [-1, 1]; generated once at
// startup by Newton iteration on the Legendre recurrence.
struct GaussLegendre {
  static constexpr int kN = 40;
  double x[kN];
  double w[kN];

  GaussLegendre() {
    const int n = kN;
    for (int i = 0; i < (n + 1) / 2; ++i) {
      // Initial guess (Chebyshev-like), then Newton.
      double z = std::cos(M_PI * (i + 0.75) / (n + 0.5));
      double pp = 0;
      for (int iter = 0; iter < 100; ++iter) {
        double p0 = 1.0, p1 = 0.0;
        for (int j = 0; j < n; ++j) {
          double p2 = p1;
          p1 = p0;
          p0 = ((2.0 * j + 1.0) * z * p1 - j * p2) / (j + 1.0);
        }
        pp = n * (z * p0 - p1) / (z * z - 1.0);
        double z1 = z;
        z = z1 - p0 / pp;
        if (std::fabs(z - z1) < 1e-15) break;
      }
      x[i] = -z;
      x[n - 1 - i] = z;
      w[i] = 2.0 / ((1.0 - z * z) * pp * pp);
      w[n - 1 - i] = w[i];
    }
  }
};

const GaussLegendre& gl() {
  static GaussLegendre g;
  return g;
}

double phi(double z) { return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI); }

// Integrate f over [a, b] with panels of 40-point Gauss-Legendre.
template <typename F>
double integrate(F f, double a, double b, int panels) {
  const auto& g = gl();
  double total = 0;
  double h = (b - a) / panels;
  for (int p = 0; p < panels; ++p) {
    double lo = a + p * h;
    double mid = lo + 0.5 * h;
    double half = 0.5 * h;
    double acc = 0;
    for (int i = 0; i < GaussLegendre::kN; ++i) acc += g.w[i] * f(mid + half * g.x[i]);
    total += acc * half;
  }
  return total;
}

}  // namespace

double normal_range_cdf(double w, int k) {
  if (k < 2) throw std::invalid_argument("normal_range_cdf: k >= 2 required");
  if (w <= 0) return 0.0;
  // F_W(w) = k ∫ φ(u) [Φ(u + w) − Φ(u)]^{k−1} du, u = the minimum.
  auto integrand = [w, k](double u) {
    double d = normal_cdf(u + w) - normal_cdf(u);
    if (d <= 0) return 0.0;
    return phi(u) * std::pow(d, k - 1);
  };
  // The integrand is negligible outside u in [-8-w, 8].
  double lo = -8.0 - w;
  double hi = 8.0;
  double v = k * integrate(integrand, lo, hi, 8);
  if (v < 0) v = 0;
  if (v > 1) v = 1;
  return v;
}

double studentized_range_cdf(double q, int k, double df) {
  if (q <= 0) return 0.0;
  if (df > 1e5) return normal_range_cdf(q, k);
  if (df < 1) throw std::invalid_argument("studentized_range_cdf: df >= 1 required");

  // Density of s = chi_df / sqrt(df):
  //   f(s) = C * s^{df-1} * exp(-df s^2 / 2),
  //   ln C = (df/2) ln(df/2) - lgamma(df/2) + ln 2 ... derived below in log
  // space to stay finite for large df.
  double half_df = 0.5 * df;
  double ln_c = half_df * std::log(half_df) - std::lgamma(half_df) + std::log(2.0);
  auto s_density = [&](double s) {
    if (s <= 0) return 0.0;
    double ln_f = ln_c + (df - 1.0) * std::log(s) - half_df * s * s;
    return std::exp(ln_f);
  };
  auto integrand = [&](double s) { return s_density(s) * normal_range_cdf(q * s, k); };

  // s concentrates around 1 with stddev ~ 1/sqrt(2 df); integrate a window
  // wide enough for small df too.
  double spread = 10.0 / std::sqrt(2.0 * df);
  double lo = std::max(1e-9, 1.0 - spread);
  double hi = 1.0 + spread;
  if (df < 6) {  // heavy-tailed at small df: widen
    lo = 1e-9;
    hi = 1.0 + 14.0 / std::sqrt(2.0 * df);
  }
  double v = integrate(integrand, lo, hi, 12);
  if (v < 0) v = 0;
  if (v > 1) v = 1;
  return v;
}

TukeyResult tukey_hsd(std::span<const std::vector<double>> groups) {
  size_t k = groups.size();
  if (k < 2) throw std::invalid_argument("tukey_hsd: need >= 2 groups");

  std::vector<OnlineStats> gs(k);
  double ss_within = 0;
  double n_total = 0;
  for (size_t i = 0; i < k; ++i) {
    if (groups[i].size() < 2) throw std::invalid_argument("tukey_hsd: each group needs >= 2 samples");
    for (double x : groups[i]) gs[i].add(x);
    ss_within += gs[i].variance() * static_cast<double>(gs[i].count() - 1);
    n_total += static_cast<double>(gs[i].count());
  }

  TukeyResult r;
  r.df_within = n_total - static_cast<double>(k);
  r.ms_within = ss_within / r.df_within;

  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      TukeyComparison c;
      c.group_a = i;
      c.group_b = j;
      c.mean_diff = gs[i].mean() - gs[j].mean();
      // Tukey-Kramer SE for (possibly) unequal group sizes.
      double se = std::sqrt(r.ms_within / 2.0 *
                            (1.0 / static_cast<double>(gs[i].count()) +
                             1.0 / static_cast<double>(gs[j].count())));
      if (se == 0) {
        c.q_stat = c.mean_diff == 0 ? 0 : std::numeric_limits<double>::infinity();
        c.p_value = c.mean_diff == 0 ? 1.0 : 0.0;
      } else {
        c.q_stat = std::fabs(c.mean_diff) / se;
        c.p_value = 1.0 - studentized_range_cdf(c.q_stat, static_cast<int>(k), r.df_within);
      }
      c.significant_05 = c.p_value < 0.05;
      r.comparisons.push_back(c);
    }
  }
  return r;
}

}  // namespace neptune
