// Inter-thread queues used throughout the two-tier thread model
// (paper §III, "reduced queue contention").
//
//  * SpscRing        — lock-free bounded single-producer/single-consumer ring,
//                      used between a worker thread and its IO thread.
//  * BoundedQueue    — mutex+condvar bounded MPMC queue with high/low
//                      watermark callbacks; the building block for the
//                      backpressure chain (paper §III-B4).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <new>
#include <optional>
#include <vector>

namespace neptune {

// Fixed rather than std::hardware_destructive_interference_size: the value
// must be ABI-stable across translation units (GCC warns otherwise).
inline constexpr size_t kCacheLine = 64;

/// Lock-free bounded SPSC ring buffer. Capacity is rounded up to a power of
/// two. Producer calls try_push from exactly one thread, consumer calls
/// try_pop from exactly one (possibly different) thread.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy; exact only from the owning threads' views.
  size_t size_approx() const noexcept {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  bool try_push(T v) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) > mask_) return false;  // full
    slots_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;  // empty
    std::optional<T> v{std::move(slots_[tail & mask_])};
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
};

/// Reason a push or pop returned without transferring an element.
enum class QueueResult { kOk, kFull, kEmpty, kClosed, kTimeout };

/// Bounded blocking MPMC queue with optional high/low watermark callbacks.
///
/// The watermark callbacks fire with the queue's mutex *released* and are
/// edge-triggered: `on_high` fires when occupancy rises to >= high_watermark
/// having previously been below it; `on_low` fires when occupancy falls to
/// <= low_watermark having previously been above it. This hysteresis is what
/// keeps the backpressure chain from oscillating (paper §III-B4: "high and
/// low watermarks ... set sufficiently apart").
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, size_t high_watermark = 0, size_t low_watermark = 0)
      : capacity_(capacity),
        high_(high_watermark == 0 ? capacity : high_watermark),
        low_(low_watermark == 0 ? capacity / 2 : low_watermark) {}

  void set_watermark_callbacks(std::function<void()> on_high, std::function<void()> on_low) {
    std::lock_guard lk(mu_);
    on_high_ = std::move(on_high);
    on_low_ = std::move(on_low);
  }

  size_t capacity() const noexcept { return capacity_; }
  size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }
  /// Lock-free occupancy estimate for telemetry samplers: reads a relaxed
  /// shadow counter updated under the mutex, so it never contends with the
  /// hot path but may lag a concurrent push/pop by one element.
  size_t size_approx() const noexcept { return approx_size_.load(std::memory_order_relaxed); }
  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  /// Re-arm a closed queue so producers/consumers work again — used when a
  /// stopped resource is restarted (failure recovery). Any residue from the
  /// previous life is discarded. Only call with no threads blocked on it.
  void reopen() {
    std::lock_guard lk(mu_);
    closed_ = false;
    q_.clear();
    sync_approx_locked();
  }

  /// Blocking push; waits while full. Returns kClosed if the queue was closed.
  QueueResult push(T v) {
    bool fire_high = false;
    {
      std::unique_lock lk(mu_);
      not_full_.wait(lk, [&] { return q_.size() < capacity_ || closed_; });
      if (closed_) return QueueResult::kClosed;
      q_.push_back(std::move(v));
      sync_approx_locked();
      fire_high = crossed_high_locked();
      not_empty_.notify_one();
    }
    if (fire_high) fire(on_high_);
    return QueueResult::kOk;
  }

  QueueResult try_push(T v) {
    bool fire_high = false;
    {
      std::lock_guard lk(mu_);
      if (closed_) return QueueResult::kClosed;
      if (q_.size() >= capacity_) return QueueResult::kFull;
      q_.push_back(std::move(v));
      sync_approx_locked();
      fire_high = crossed_high_locked();
      not_empty_.notify_one();
    }
    if (fire_high) fire(on_high_);
    return QueueResult::kOk;
  }

  /// Blocking pop; waits while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::optional<T> v;
    bool fire_low = false;
    {
      std::unique_lock lk(mu_);
      not_empty_.wait(lk, [&] { return !q_.empty() || closed_; });
      if (q_.empty()) return std::nullopt;  // closed and drained
      v.emplace(std::move(q_.front()));
      q_.pop_front();
      sync_approx_locked();
      fire_low = crossed_low_locked();
      not_full_.notify_one();
    }
    if (fire_low) fire(on_low_);
    return v;
  }

  std::optional<T> try_pop() {
    std::optional<T> v;
    bool fire_low = false;
    {
      std::lock_guard lk(mu_);
      if (q_.empty()) return std::nullopt;
      v.emplace(std::move(q_.front()));
      q_.pop_front();
      sync_approx_locked();
      fire_low = crossed_low_locked();
      not_full_.notify_one();
    }
    if (fire_low) fire(on_low_);
    return v;
  }

  /// Pop with deadline; nullopt on timeout or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::optional<T> v;
    bool fire_low = false;
    {
      std::unique_lock lk(mu_);
      if (!not_empty_.wait_for(lk, timeout, [&] { return !q_.empty() || closed_; }))
        return std::nullopt;
      if (q_.empty()) return std::nullopt;
      v.emplace(std::move(q_.front()));
      q_.pop_front();
      sync_approx_locked();
      fire_low = crossed_low_locked();
      not_full_.notify_one();
    }
    if (fire_low) fire(on_low_);
    return v;
  }

  /// Drain up to `max_items` elements in one lock acquisition — the batched
  /// consumption primitive behind batched scheduling (paper §III-B2).
  size_t pop_batch(std::vector<T>& out, size_t max_items) {
    size_t n = 0;
    bool fire_low = false;
    {
      std::lock_guard lk(mu_);
      while (n < max_items && !q_.empty()) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
        ++n;
      }
      if (n > 0) {
        sync_approx_locked();
        fire_low = crossed_low_locked();
        not_full_.notify_all();
      }
    }
    if (fire_low) fire(on_low_);
    return n;
  }

  /// Close the queue: pending/blocked pushes fail, pops drain the remainder.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  bool crossed_high_locked() {
    if (!above_high_ && q_.size() >= high_) {
      above_high_ = true;
      return on_high_ != nullptr;
    }
    return false;
  }
  bool crossed_low_locked() {
    if (above_high_ && q_.size() <= low_) {
      above_high_ = false;
      return on_low_ != nullptr;
    }
    return false;
  }
  static void fire(const std::function<void()>& f) {
    if (f) f();
  }
  void sync_approx_locked() { approx_size_.store(q_.size(), std::memory_order_relaxed); }

  const size_t capacity_;
  const size_t high_;
  const size_t low_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  std::atomic<size_t> approx_size_{0};
  bool closed_ = false;
  bool above_high_ = false;
  std::function<void()> on_high_;
  std::function<void()> on_low_;
};

}  // namespace neptune
