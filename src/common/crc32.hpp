// CRC-32 (IEEE 802.3 polynomial, reflected) for frame integrity checks.
// Table-driven, 8 bytes per iteration via the slicing-by-4 technique.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace neptune {

/// CRC-32 of a byte range. `seed` allows incremental computation:
/// crc32(ab) == crc32(b, crc32(a)).
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t crc32(std::span<const uint8_t> s, uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace neptune
