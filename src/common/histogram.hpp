// Log-linear histogram (HdrHistogram-style) for latency recording on hot
// paths: O(1) lock-free-ish record, bounded relative error on percentile
// queries. Values are non-negative integers (we use nanoseconds).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace neptune {

class LatencyHistogram {
 public:
  /// `sub_bucket_bits` controls relative precision: 2^-bits (5 bits -> ~3%).
  /// `max_trackable` (0 = unbounded) caps the bucket range: values above it
  /// are clamped into the top bucket and counted in saturated_count() so the
  /// clamping is observable instead of silent.
  explicit LatencyHistogram(int sub_bucket_bits = 5, uint64_t max_trackable = 0);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one value. Thread-safe (relaxed atomic increments).
  void record(uint64_t value);
  /// Record `count` occurrences of the same value.
  void record_n(uint64_t value, uint64_t count);

  uint64_t count() const { return total_.load(std::memory_order_relaxed); }
  /// Samples that exceeded max_trackable (or the bucket range) and were
  /// clamped into the top bucket. Percentiles at/above the clamp point are
  /// lower bounds when this is non-zero.
  uint64_t saturated_count() const { return saturated_.load(std::memory_order_relaxed); }
  uint64_t max_trackable() const { return max_trackable_; }
  uint64_t min() const;
  uint64_t max() const { return max_seen_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Value at percentile p in [0, 100]. Returns an upper bound of the
  /// bucket containing the p-th ranked sample.
  uint64_t percentile(double p) const;

  void reset();

  /// Merge counts from another histogram with the same geometry.
  void merge(const LatencyHistogram& o);

  /// "p50=… p99=… p99.9=… max=…" one-liner for bench output.
  std::string summary_string(double unit_scale = 1e-6, const char* unit = "ms") const;

 private:
  size_t bucket_index(uint64_t value) const;
  uint64_t bucket_upper_bound(size_t index) const;

  int sub_bits_;
  uint64_t sub_count_;     // buckets per half-decade = 2^sub_bits
  uint64_t max_trackable_; // 0 = full 2^63 range
  size_t num_buckets_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_seen_{0};
  std::atomic<uint64_t> min_seen_{~0ULL};
  std::atomic<uint64_t> saturated_{0};
};

}  // namespace neptune
