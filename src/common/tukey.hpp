// Tukey's HSD multiple-comparison procedure (paper §III-B5: compression
// results "statistically validated using a Tukey's HSD multiple comparison
// procedure"). Requires the CDF of the studentized range distribution,
// which we evaluate by direct Gauss-Legendre quadrature of
//
//   F_Q(q; k, v) = ∫_0^∞ f_s(s; v) · F_W(q·s; k) ds
//   F_W(w; k)    = k ∫_{-∞}^{∞} φ(u) [Φ(u + w) − Φ(u)]^{k−1} du
//
// where F_W is the CDF of the range of k iid standard normals and s is a
// chi_v / sqrt(v) scale variable. Accuracy is ~1e-6, ample for reporting
// p-values against the paper's thresholds.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace neptune {

/// CDF of the range of k iid standard normal variables, P(W <= w).
double normal_range_cdf(double w, int k);

/// CDF of the studentized range, P(Q <= q) with k groups and df degrees of
/// freedom. df >= 1; df > 1e5 is treated as infinite.
double studentized_range_cdf(double q, int k, double df);

/// One pairwise comparison from a Tukey HSD procedure.
struct TukeyComparison {
  size_t group_a = 0;
  size_t group_b = 0;
  double mean_diff = 0;  ///< mean(a) - mean(b)
  double q_stat = 0;     ///< studentized range statistic
  double p_value = 1;    ///< familywise-adjusted p-value
  bool significant_05 = false;
};

struct TukeyResult {
  double ms_within = 0;  ///< pooled within-group mean square (error MS)
  double df_within = 0;
  std::vector<TukeyComparison> comparisons;  ///< all unordered pairs
};

/// Tukey(-Kramer) HSD over >= 2 groups of samples; each group needs >= 2
/// observations. Unequal group sizes use the Tukey-Kramer standard error.
TukeyResult tukey_hsd(std::span<const std::vector<double>> groups);

}  // namespace neptune
