// Time utilities. All engine-internal timestamps are steady-clock nanoseconds
// so latency math is immune to wall-clock adjustments; a pluggable Clock
// interface lets tests and the discrete-event simulator substitute virtual
// time for real time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace neptune {

/// Steady-clock nanoseconds since an arbitrary epoch.
inline int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t now_us() { return now_ns() / 1000; }
inline int64_t now_ms() { return now_ns() / 1000000; }

/// Abstract time source. Production code uses SteadyClock; tests and the
/// cluster simulator use ManualClock to make timer behaviour deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t now_ns() const = 0;
};

class SteadyClock final : public Clock {
 public:
  int64_t now_ns() const override { return neptune::now_ns(); }
  /// Process-wide shared instance (stateless, safe to share).
  static const SteadyClock& instance() {
    static SteadyClock c;
    return c;
  }
};

/// Deterministic, manually advanced clock for tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(int64_t start_ns = 0) : t_(start_ns) {}
  int64_t now_ns() const override { return t_.load(std::memory_order_acquire); }
  void advance_ns(int64_t dt) { t_.fetch_add(dt, std::memory_order_acq_rel); }
  void set_ns(int64_t t) { t_.store(t, std::memory_order_release); }

 private:
  std::atomic<int64_t> t_;
};

/// Simple start/elapsed stopwatch over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(neptune::now_ns()) {}
  void reset() { start_ = neptune::now_ns(); }
  int64_t elapsed_ns() const { return neptune::now_ns() - start_; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) * 1e-6; }

 private:
  int64_t start_;
};

}  // namespace neptune
