// Reusable growable byte buffer with explicit read/write cursors.
//
// This is the workhorse of NEPTUNE's object-reuse scheme (paper §III-B3):
// one ByteBuffer per link is cleared and refilled for every flushed batch
// instead of allocating fresh serialization scratch per message. All
// multi-byte integers are little-endian on the wire; variable-length
// integers use LEB128 with zig-zag for signed values.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace neptune {

/// Thrown when a read runs past the written region of a buffer.
class BufferUnderflow : public std::runtime_error {
 public:
  explicit BufferUnderflow(const std::string& what) : std::runtime_error(what) {}
};

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t initial_capacity) { data_.reserve(initial_capacity); }

  // --- geometry -----------------------------------------------------------

  /// Bytes written so far (the readable region is [0, size())).
  size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  size_t capacity() const noexcept { return data_.capacity(); }
  /// Bytes still readable from the current read cursor.
  size_t remaining() const noexcept { return data_.size() - read_pos_; }
  size_t read_position() const noexcept { return read_pos_; }

  const uint8_t* data() const noexcept { return data_.data(); }
  uint8_t* data() noexcept { return data_.data(); }
  std::span<const uint8_t> readable() const noexcept {
    return {data_.data() + read_pos_, data_.size() - read_pos_};
  }
  std::span<const uint8_t> contents() const noexcept { return {data_.data(), data_.size()}; }

  /// Drop all content but keep the allocation — the reuse primitive.
  void clear() noexcept {
    data_.clear();
    read_pos_ = 0;
  }
  /// Take ownership of an existing vector without copying (zero-copy
  /// hand-off from legacy receive paths into pooled frame buffers).
  void adopt(std::vector<uint8_t>&& v) noexcept {
    data_ = std::move(v);
    read_pos_ = 0;
  }
  /// Surrender the backing vector (leaves this buffer empty).
  std::vector<uint8_t> take() noexcept {
    std::vector<uint8_t> v = std::move(data_);
    data_.clear();
    read_pos_ = 0;
    return v;
  }
  void reserve(size_t n) { data_.reserve(n); }
  /// Grow/shrink the written region in place (new bytes zeroed). Lets
  /// decoders decompress directly into a pooled buffer via data().
  void resize(size_t n) { data_.resize(n); }
  void rewind() noexcept { read_pos_ = 0; }
  void skip(size_t n) {
    check_readable(n, "skip");
    read_pos_ += n;
  }

  // --- fixed-width writes ---------------------------------------------------

  void write_u8(uint8_t v) { data_.push_back(v); }
  void write_u16(uint16_t v) { write_le(v); }
  void write_u32(uint32_t v) { write_le(v); }
  void write_u64(uint64_t v) { write_le(v); }
  void write_i8(int8_t v) { write_u8(static_cast<uint8_t>(v)); }
  void write_i16(int16_t v) { write_le(static_cast<uint16_t>(v)); }
  void write_i32(int32_t v) { write_le(static_cast<uint32_t>(v)); }
  void write_i64(int64_t v) { write_le(static_cast<uint64_t>(v)); }
  void write_f32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_le(bits);
  }
  void write_f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_le(bits);
  }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  // --- varints --------------------------------------------------------------

  /// Unsigned LEB128; 1 byte for values < 128, at most 10 bytes.
  void write_varint(uint64_t v) {
    while (v >= 0x80) {
      data_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    data_.push_back(static_cast<uint8_t>(v));
  }
  /// Zig-zag-encoded signed LEB128.
  void write_svarint(int64_t v) {
    write_varint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  // --- blocks ---------------------------------------------------------------

  void write_bytes(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }
  void write_bytes(std::span<const uint8_t> s) { write_bytes(s.data(), s.size()); }
  /// Length-prefixed (varint) byte block.
  void write_block(std::span<const uint8_t> s) {
    write_varint(s.size());
    write_bytes(s);
  }
  /// Length-prefixed (varint) UTF-8 string.
  void write_string(std::string_view s) {
    write_varint(s.size());
    write_bytes(s.data(), s.size());
  }

  /// Overwrite previously written bytes in place (for length back-patching).
  void patch_u32(size_t offset, uint32_t v) {
    if (offset + 4 > data_.size()) throw std::out_of_range("ByteBuffer::patch_u32 out of range");
    uint32_t le = to_le(v);
    std::memcpy(data_.data() + offset, &le, 4);
  }
  void patch_u64(size_t offset, uint64_t v) {
    if (offset + 8 > data_.size()) throw std::out_of_range("ByteBuffer::patch_u64 out of range");
    uint64_t le = to_le(v);
    std::memcpy(data_.data() + offset, &le, 8);
  }
  void patch_i64(size_t offset, int64_t v) { patch_u64(offset, static_cast<uint64_t>(v)); }

  // --- fixed-width reads ------------------------------------------------------

  uint8_t read_u8() {
    check_readable(1, "u8");
    return data_[read_pos_++];
  }
  uint16_t read_u16() { return read_le<uint16_t>(); }
  uint32_t read_u32() { return read_le<uint32_t>(); }
  uint64_t read_u64() { return read_le<uint64_t>(); }
  int8_t read_i8() { return static_cast<int8_t>(read_u8()); }
  int16_t read_i16() { return static_cast<int16_t>(read_le<uint16_t>()); }
  int32_t read_i32() { return static_cast<int32_t>(read_le<uint32_t>()); }
  int64_t read_i64() { return static_cast<int64_t>(read_le<uint64_t>()); }
  float read_f32() {
    uint32_t bits = read_le<uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double read_f64() {
    uint64_t bits = read_le<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool read_bool() { return read_u8() != 0; }

  uint64_t read_varint() {
    // Fast path for the dominant 1- and 2-byte encodings (field counts,
    // tags, small scalars): one bounds check, constant shifts. Longer
    // varints fall through to the general checked loop.
    if (data_.size() - read_pos_ >= 2) {
      uint8_t b0 = (data_.data() + read_pos_)[0];
      if ((b0 & 0x80) == 0) {
        read_pos_ += 1;
        return b0;
      }
      uint8_t b1 = (data_.data() + read_pos_)[1];
      if ((b1 & 0x80) == 0) {
        read_pos_ += 2;
        return (static_cast<uint64_t>(b1) << 7) | (b0 & 0x7F);
      }
    }
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw BufferUnderflow("varint too long");
      uint8_t b = read_u8();
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  int64_t read_svarint() {
    uint64_t z = read_varint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  void read_bytes(void* out, size_t n) {
    check_readable(n, "bytes");
    std::memcpy(out, data_.data() + read_pos_, n);
    read_pos_ += n;
  }
  /// Zero-copy view of the next length-prefixed block; valid until mutation.
  std::span<const uint8_t> read_block() {
    size_t n = read_varint();
    check_readable(n, "block");
    std::span<const uint8_t> s{data_.data() + read_pos_, n};
    read_pos_ += n;
    return s;
  }
  std::string read_string() {
    auto s = read_block();
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

 private:
  template <typename T>
  static T to_le(T v) {
    static_assert(std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::big) {
      T r = 0;
      for (size_t i = 0; i < sizeof(T); ++i) r |= ((v >> (8 * i)) & 0xFF) << (8 * (sizeof(T) - 1 - i));
      return r;
    } else {
      return v;
    }
  }
  template <typename T>
  void write_le(T v) {
    T le = to_le(v);
    write_bytes(&le, sizeof le);
  }
  template <typename T>
  T read_le() {
    check_readable(sizeof(T), "fixed");
    T le;
    std::memcpy(&le, data_.data() + read_pos_, sizeof le);
    read_pos_ += sizeof(T);
    return to_le(le);
  }
  void check_readable(size_t n, const char* what) const {
    if (read_pos_ + n > data_.size())
      throw BufferUnderflow(std::string("ByteBuffer underflow reading ") + what);
  }

  std::vector<uint8_t> data_;
  size_t read_pos_ = 0;
};

/// Read-only cursor over an externally owned byte range. Used on receive
/// paths where the frame body lives in a pooled buffer that must not be
/// copied (object-reuse scheme, paper §III-B3).
class ByteReader {
 public:
  ByteReader(const uint8_t* p, size_t n) : p_(p), n_(n) {}
  explicit ByteReader(std::span<const uint8_t> s) : p_(s.data()), n_(s.size()) {}

  size_t remaining() const noexcept { return n_ - pos_; }
  size_t position() const noexcept { return pos_; }
  bool at_end() const noexcept { return pos_ == n_; }

  uint8_t read_u8() {
    check(1);
    return p_[pos_++];
  }
  uint16_t read_u16() { return read_le<uint16_t>(); }
  uint32_t read_u32() { return read_le<uint32_t>(); }
  uint64_t read_u64() { return read_le<uint64_t>(); }
  int32_t read_i32() { return static_cast<int32_t>(read_le<uint32_t>()); }
  int64_t read_i64() { return static_cast<int64_t>(read_le<uint64_t>()); }
  float read_f32() {
    uint32_t bits = read_le<uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double read_f64() {
    uint64_t bits = read_le<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool read_bool() { return read_u8() != 0; }

  uint64_t read_varint() {
    // Fast path for the dominant 1- and 2-byte encodings (field counts,
    // tags, small scalars): one bounds check, constant shifts. Longer
    // varints fall through to the general checked loop.
    if (n_ - pos_ >= 2) {
      uint8_t b0 = (p_ + pos_)[0];
      if ((b0 & 0x80) == 0) {
        pos_ += 1;
        return b0;
      }
      uint8_t b1 = (p_ + pos_)[1];
      if ((b1 & 0x80) == 0) {
        pos_ += 2;
        return (static_cast<uint64_t>(b1) << 7) | (b0 & 0x7F);
      }
    }
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw BufferUnderflow("varint too long");
      uint8_t b = read_u8();
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  int64_t read_svarint() {
    uint64_t z = read_varint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  std::span<const uint8_t> read_block() {
    size_t n = read_varint();
    check(n);
    std::span<const uint8_t> s{p_ + pos_, n};
    pos_ += n;
    return s;
  }
  std::string read_string() {
    auto s = read_block();
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::span<const uint8_t> read_span(size_t n) {
    check(n);
    std::span<const uint8_t> s{p_ + pos_, n};
    pos_ += n;
    return s;
  }
  void skip(size_t n) {
    check(n);
    pos_ += n;
  }

 private:
  template <typename T>
  T read_le() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, p_ + pos_, sizeof v);
    pos_ += sizeof(T);
    if constexpr (std::endian::native == std::endian::big) {
      T r = 0;
      for (size_t i = 0; i < sizeof(T); ++i) r |= ((v >> (8 * i)) & 0xFF) << (8 * (sizeof(T) - 1 - i));
      return r;
    }
    return v;
  }
  void check(size_t n) const {
    if (pos_ + n > n_) throw BufferUnderflow("ByteReader underflow");
  }
  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
};

}  // namespace neptune
