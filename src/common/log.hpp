// Minimal leveled logger. Stream processing hot paths must never log, so
// this is deliberately simple: a global level, printf-style formatting, and
// a mutex around the single write() to keep lines intact across threads.
#pragma once

#include <cstdarg>
#include <string>

namespace neptune {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; drops the message cheaply when below the level.
void log_at(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define NEPTUNE_LOG_TRACE(...) ::neptune::log_at(::neptune::LogLevel::kTrace, __VA_ARGS__)
#define NEPTUNE_LOG_DEBUG(...) ::neptune::log_at(::neptune::LogLevel::kDebug, __VA_ARGS__)
#define NEPTUNE_LOG_INFO(...) ::neptune::log_at(::neptune::LogLevel::kInfo, __VA_ARGS__)
#define NEPTUNE_LOG_WARN(...) ::neptune::log_at(::neptune::LogLevel::kWarn, __VA_ARGS__)
#define NEPTUNE_LOG_ERROR(...) ::neptune::log_at(::neptune::LogLevel::kError, __VA_ARGS__)

}  // namespace neptune
