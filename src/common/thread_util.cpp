#include "common/thread_util.hpp"

#include <dirent.h>
#include <pthread.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <sys/syscall.h>
#endif

namespace neptune {
namespace {

ContextSwitches parse_status_file(const char* path) {
  ContextSwitches cs;
  FILE* f = std::fopen(path, "r");
  if (!f) return cs;
  char line[256];
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "voluntary_ctxt_switches:", 24) == 0) {
      std::sscanf(line + 24, "%" SCNu64, &cs.voluntary);
    } else if (std::strncmp(line, "nonvoluntary_ctxt_switches:", 27) == 0) {
      std::sscanf(line + 27, "%" SCNu64, &cs.nonvoluntary);
    }
  }
  std::fclose(f);
  return cs;
}

}  // namespace

void set_thread_name(const std::string& name) {
#ifdef __linux__
  char buf[16];
  std::snprintf(buf, sizeof buf, "%s", name.c_str());
  pthread_setname_np(pthread_self(), buf);
#else
  (void)name;
#endif
}

ContextSwitches read_context_switches() {
#ifdef __linux__
  // /proc/self/status reports only the main thread; aggregate every task.
  ContextSwitches total;
  DIR* dir = opendir("/proc/self/task");
  if (!dir) return parse_status_file("/proc/self/status");
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    char path[80];
    std::snprintf(path, sizeof path, "/proc/self/task/%s/status", entry->d_name);
    ContextSwitches cs = parse_status_file(path);
    total.voluntary += cs.voluntary;
    total.nonvoluntary += cs.nonvoluntary;
  }
  closedir(dir);
  return total;
#else
  return parse_status_file("/proc/self/status");
#endif
}

ContextSwitches read_thread_context_switches() {
#ifdef __linux__
  char path[64];
  long tid = syscall(SYS_gettid);
  std::snprintf(path, sizeof path, "/proc/self/task/%ld/status", tid);
  return parse_status_file(path);
#else
  return {};
#endif
}

}  // namespace neptune
