// xoshiro256** PRNG (Blackman & Vigna). Chosen over std::mt19937_64 for the
// hot workload-generation paths: ~4x faster, 256-bit state, passes BigCrush.
// Not cryptographic; used only for synthetic stream payloads and sampling.
#pragma once

#include <cstdint>

namespace neptune {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into the full state, per the
    // reference implementation's recommendation.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). Unbiased enough for workload generation
  /// (Lemire's multiply-shift without the rejection step).
  uint64_t next_below(uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<uint64_t>((static_cast<__uint128_t>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // UniformRandomBitGenerator interface, so <algorithm>/<random> accept us.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return next_u64(); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace neptune
