// Minimal JSON DOM, parser and writer — enough for NEPTUNE's stream graph
// descriptor files (paper §III-A7: "a stream processing graph can be
// created ... through a JSON descriptor file"). Supports the full JSON
// grammar except surrogate-pair \u escapes beyond the BMP.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace neptune {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(int64_t i) : v_(static_cast<double>(i)) {}
  JsonValue(size_t i) : v_(static_cast<double>(i)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::move(a)) {}
  JsonValue(JsonObject o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  int64_t as_int() const { return static_cast<int64_t>(as_number()); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const JsonArray& as_array() const { return get<JsonArray>("array"); }
  JsonArray& as_array() { return get<JsonArray>("array"); }
  const JsonObject& as_object() const { return get<JsonObject>("object"); }
  JsonObject& as_object() { return get<JsonObject>("object"); }

  /// Object member access; throws JsonError when missing.
  const JsonValue& at(const std::string& key) const {
    const auto& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) throw JsonError("missing key: " + key);
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }
  /// Object member with default.
  double number_or(const std::string& key, double dflt) const {
    return contains(key) ? at(key).as_number() : dflt;
  }
  std::string string_or(const std::string& key, const std::string& dflt) const {
    return contains(key) ? at(key).as_string() : dflt;
  }
  bool bool_or(const std::string& key, bool dflt) const {
    return contains(key) ? at(key).as_bool() : dflt;
  }

  /// Serialize; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing non-space input is an error).
  static JsonValue parse(std::string_view text);

  bool operator==(const JsonValue& o) const { return v_ == o.v_; }

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (auto* p = std::get_if<T>(&v_)) return *p;
    throw JsonError(std::string("JSON value is not a ") + name);
  }
  template <typename T>
  T& get(const char* name) {
    if (auto* p = std::get_if<T>(&v_)) return *p;
    throw JsonError(std::string("JSON value is not a ") + name);
  }
  Storage v_;
};

}  // namespace neptune
