// Statistics used by the evaluation harness: Welford online moments,
// summary statistics, and Welch's t-test with exact Student-t p-values
// (regularized incomplete beta). The paper reports one- and two-tailed
// t-tests for the Figure 10 resource-usage comparison.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace neptune {

/// Welford single-pass accumulator for mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    double d = o.mean_ - mean_;
    uint64_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) * static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    n_ = n;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator).
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = OnlineStats{}; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean/stddev over a sample in one call.
OnlineStats summarize(std::span<const double> xs);

// --- special functions ------------------------------------------------------

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction; |error| < 1e-12 over the parameter ranges used here.
double incomplete_beta(double a, double b, double x);

/// Student-t CDF with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Standard normal CDF.
double normal_cdf(double z);

// --- hypothesis tests ---------------------------------------------------------

struct TTestResult {
  double t = 0;            ///< test statistic
  double df = 0;           ///< Welch-Satterthwaite degrees of freedom
  double p_two_tailed = 1;  ///< P(|T| >= |t|)
  double p_one_tailed = 1;  ///< P(T >= t)  (H1: mean(a) > mean(b))
};

/// Welch's unequal-variance t-test of H0: mean(a) == mean(b).
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

}  // namespace neptune
