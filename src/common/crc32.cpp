#include "common/crc32.hpp"

#include <array>

namespace neptune {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t{};
  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? kPoly : 0);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables{};

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  // Slicing-by-4: fold 4 bytes per iteration through the four tables.
  while (len >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    c = kTables.t[3][c & 0xFF] ^ kTables.t[2][(c >> 8) & 0xFF] ^ kTables.t[1][(c >> 16) & 0xFF] ^
        kTables.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len--) c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xFF];
  return ~c;
}

}  // namespace neptune
