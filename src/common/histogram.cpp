#include "common/histogram.hpp"

#include <bit>
#include <cstdio>

namespace neptune {

LatencyHistogram::LatencyHistogram(int sub_bucket_bits, uint64_t max_trackable)
    : sub_bits_(sub_bucket_bits),
      sub_count_(1ULL << sub_bucket_bits),
      max_trackable_(max_trackable) {
  // One linear sub-range per power of two up to 2^63, each with 2^sub_bits
  // buckets. The first range [0, 2*sub_count) is fully linear. A non-zero
  // max_trackable truncates the array after the bucket containing it.
  num_buckets_ = static_cast<size_t>((64 - sub_bits_) * sub_count_ + sub_count_);
  if (max_trackable_ != 0) {
    size_t cap_idx = bucket_index(max_trackable_);
    if (cap_idx + 1 < num_buckets_) num_buckets_ = cap_idx + 1;
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(num_buckets_);
  for (size_t i = 0; i < num_buckets_; ++i) counts_[i].store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::bucket_index(uint64_t value) const {
  if (value < 2 * sub_count_) return static_cast<size_t>(value);  // exact region
  int msb = 63 - std::countl_zero(value);
  int shift = msb - sub_bits_;
  uint64_t sub = value >> shift;  // in [sub_count, 2*sub_count)
  size_t base = static_cast<size_t>(shift) * sub_count_ + sub_count_;
  return base + static_cast<size_t>(sub - sub_count_);
}

uint64_t LatencyHistogram::bucket_upper_bound(size_t index) const {
  if (index < 2 * sub_count_) return static_cast<uint64_t>(index);
  size_t rel = index - sub_count_;
  size_t shift = rel / sub_count_;
  uint64_t sub = sub_count_ + rel % sub_count_;
  return ((sub + 1) << shift) - 1;
}

void LatencyHistogram::record(uint64_t value) { record_n(value, 1); }

void LatencyHistogram::record_n(uint64_t value, uint64_t count) {
  size_t idx = bucket_index(value);
  if (idx >= num_buckets_) {
    idx = num_buckets_ - 1;
    saturated_.fetch_add(count, std::memory_order_relaxed);
  }
  counts_[idx].fetch_add(count, std::memory_order_relaxed);
  total_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  // min/max via CAS loops; contention here is negligible.
  uint64_t cur = max_seen_.load(std::memory_order_relaxed);
  while (value > cur && !max_seen_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = min_seen_.load(std::memory_order_relaxed);
  while (value < cur && !min_seen_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::min() const {
  uint64_t m = min_seen_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

double LatencyHistogram::mean() const {
  uint64_t n = total_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

uint64_t LatencyHistogram::percentile(double p) const {
  uint64_t n = total_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < num_buckets_; ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_bound(i);
  }
  return max();
}

void LatencyHistogram::reset() {
  for (size_t i = 0; i < num_buckets_; ++i) counts_[i].store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_seen_.store(0, std::memory_order_relaxed);
  min_seen_.store(~0ULL, std::memory_order_relaxed);
  saturated_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  for (size_t i = 0; i < num_buckets_ && i < o.num_buckets_; ++i) {
    uint64_t c = o.counts_[i].load(std::memory_order_relaxed);
    if (c) counts_[i].fetch_add(c, std::memory_order_relaxed);
  }
  // Samples beyond our (possibly smaller) range fold into the top bucket.
  if (o.num_buckets_ > num_buckets_) {
    uint64_t overflow = 0;
    for (size_t i = num_buckets_; i < o.num_buckets_; ++i)
      overflow += o.counts_[i].load(std::memory_order_relaxed);
    if (overflow) {
      counts_[num_buckets_ - 1].fetch_add(overflow, std::memory_order_relaxed);
      saturated_.fetch_add(overflow, std::memory_order_relaxed);
    }
  }
  saturated_.fetch_add(o.saturated_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  total_.fetch_add(o.total_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(o.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  uint64_t om = o.max_seen_.load(std::memory_order_relaxed);
  uint64_t cur = max_seen_.load(std::memory_order_relaxed);
  while (om > cur && !max_seen_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
  }
  uint64_t omin = o.min_seen_.load(std::memory_order_relaxed);
  cur = min_seen_.load(std::memory_order_relaxed);
  while (omin < cur && !min_seen_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
}

std::string LatencyHistogram::summary_string(double unit_scale, const char* unit) const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "p50=%.3f%s p90=%.3f%s p99=%.3f%s p99.9=%.3f%s max=%.3f%s n=%llu",
                static_cast<double>(percentile(50)) * unit_scale, unit,
                static_cast<double>(percentile(90)) * unit_scale, unit,
                static_cast<double>(percentile(99)) * unit_scale, unit,
                static_cast<double>(percentile(99.9)) * unit_scale, unit,
                static_cast<double>(max()) * unit_scale, unit,
                static_cast<unsigned long long>(count()));
  std::string out(buf);
  uint64_t sat = saturated_count();
  if (sat != 0) {
    std::snprintf(buf, sizeof buf, " sat=%llu", static_cast<unsigned long long>(sat));
    out += buf;
  }
  return out;
}

}  // namespace neptune
