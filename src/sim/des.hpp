// Discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking. Substrate for the cluster simulator that
// reproduces the paper's 50-node experiments (Figures 5, 6, 9, 10) on a
// single machine — see DESIGN.md §3 for why this substitution preserves the
// macro-scale behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace neptune::sim {

using SimTime = int64_t;  // nanoseconds of virtual time

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(SimTime t, Handler fn) {
    if (t < now_) t = now_;
    heap_.push(Event{t, seq_++, std::move(fn)});
  }
  /// Schedule `fn` after a virtual delay.
  void schedule_in(SimTime dt, Handler fn) { schedule_at(now_ + dt, std::move(fn)); }

  /// Run until the queue is empty or virtual time would exceed `until`.
  /// Events exactly at `until` still run. Returns events executed.
  uint64_t run_until(SimTime until) {
    uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().time <= until) {
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  /// Execute exactly the next pending event (advancing virtual time to it).
  /// Returns false when the queue is empty. Substrate for step-wise drivers
  /// that interleave work with per-step checks (testkit's DST harness).
  bool run_one() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  /// Timestamp of the next pending event (now() when the queue is empty).
  SimTime next_time() const { return heap_.empty() ? now_ : heap_.top().time; }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO order among same-time events
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace neptune::sim
