// Flow-level discrete-event model of a commodity cluster running stream
// processing jobs, with engine models for NEPTUNE and the Storm baseline.
//
// Purpose: reproduce the shapes of the paper's cluster-scale results
// (Figures 5, 6, 9, 10 and the ~100 M pkt/s headline) on one machine. The
// simulation is at *batch* granularity: one event chain per flushed buffer
// (NEPTUNE) or per K-tuple accounting chunk (Storm), with per-packet costs
// applied analytically inside each event. Cost constants are calibrated
// from this repo's real single-node microbenchmarks (see
// bench/micro_* and EXPERIMENTS.md).
//
// Modelled resources per node:
//   * CPU: `cores` FIFO servers; every scheduled execution also pays a
//     context-switch cost and a scheduler-contention term that grows with
//     the number of runnable tasks on the node (this produces the paper's
//     throughput decline past ~1 job/node in Figure 5).
//   * NIC egress: a single 1 Gbps serialized resource; wire bytes include
//     Ethernet L1+L2 (38 B/frame) and TCP/IP (40 B/segment) overhead with
//     MTU-1500 segmentation — this is why small unbatched messages
//     underutilize the link (paper §III-B1).
//   * Memory: queued-bytes accounting on top of a fixed engine footprint.
//
// Backpressure: NEPTUNE edges carry a bounded credit window (channel
// capacity / buffer size); sources stall when a window is exhausted. The
// Storm model has effectively unbounded windows — overload manifests as
// queue growth and latency, as the paper observed.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "sim/des.hpp"

namespace neptune::sim {

enum class Engine { kNeptune, kStorm };

struct ClusterSpec {
  size_t nodes = 50;
  int cores_per_node = 4;  ///< physical cores (E5620: 4C/8T; HT counted as ~0)
  double nic_bps = 1e9;          ///< 1 Gbps LAN, as in the paper's testbed
  double node_memory_gb = 12.0;  ///< HP DL160 nodes
};

/// Cost constants (ns) — defaults calibrated against this repo's real
/// single-node runs; see EXPERIMENTS.md "Calibration".
struct CostModel {
  double ser_ns_per_packet = 45;     ///< serialize one small packet into a buffer
  double deser_ns_per_packet = 55;   ///< deserialize + pool-recycled object fill
  double proc_ns_per_packet = 30;    ///< relay-grade user logic
  double batch_overhead_ns = 4000;   ///< one scheduled batched execution (incl. wakeup)
  double ctx_switch_ns = 2000;       ///< one context switch
  /// Storm: per-tuple cost of the 4-thread handoff path (queues, locks,
  /// Kryo-style serialization, per-tuple framing) — the §IV-C "four
  /// different threads" tax. Calibrated to Storm 0.9.x JVM workers, which
  /// sustain only tens of thousands of tuples/s per executor chain (the
  /// paper's Figure 9 Storm line ≈ 37 k tuples/s per job), not to this
  /// repo's much faster C++ re-implementation.
  double storm_per_tuple_overhead_ns = 25000;
  /// Extra scheduler/queue contention per additional runnable task sharing
  /// a node (fractional slowdown per task).
  double contention_per_task = 0.012;
  /// Engine resident footprint per worker/resource (the paper gave both
  /// 1 GB heaps).
  double base_memory_gb = 1.0;
};

struct NetModel {
  double bandwidth_bps = 1e9;
  static constexpr double kMtu = 1500;          // IP MTU
  static constexpr double kEthOverhead = 38;    // preamble+SFD+MAC+FCS+IFG
  static constexpr double kTcpIpHeader = 40;    // IPv4 + TCP, no options

  /// Bytes on the wire for one application message/frame of `payload`
  /// bytes, including segmentation overheads.
  static double wire_bytes(double payload) {
    double mss = kMtu - kTcpIpHeader;
    double segments = payload <= mss ? 1.0 : std::ceil(payload / mss);
    return payload + segments * (kTcpIpHeader + kEthOverhead);
  }
  /// Transmission time at the NIC, ns (bandwidth is in bits/s).
  double tx_ns(double payload) const { return wire_bytes(payload) * 8.0 / bandwidth_bps * 1e9; }
};

/// One stage of a simulated job.
struct StageSpec {
  std::string id;
  uint32_t parallelism = 1;
  double proc_ns_per_packet = 30;  ///< per-packet user logic at this stage
  /// Emitted packets per consumed packet (1 = relay; <1 = filter/detector).
  double selectivity = 1.0;
};

struct JobSpec {
  std::string name = "job";
  std::vector<StageSpec> stages;  ///< stages[0] is the source
  double packet_bytes = 100;
  /// NEPTUNE: application-level buffer capacity (flush threshold).
  double buffer_bytes = 1 << 20;
  /// NEPTUNE: flush timer (bounds batch wait at low rates).
  double flush_interval_ns = 5e6;
  /// NEPTUNE: per-edge in-flight window in buffers (channel cap / buffer).
  int credit_window = 4;
  /// Source offered rate, packets/s per source instance. 0 = saturating
  /// (emit as fast as CPU/credits allow).
  double offered_pps = 0;
  /// Finite reproducible workload: total packets emitted across the whole
  /// source stage (split over instances like workload::BytesSource — the
  /// first total%parallelism instances emit one extra). 0 = unbounded
  /// (sources run until the duration elapses). Finite jobs run to full
  /// drain, so conservation (emitted == delivered for relay stages) is
  /// exact — the property the differential harness (src/testkit) checks
  /// against the real dataflow code.
  uint64_t total_packets = 0;
  /// Storm scheduling constraint (paper §IV-C): a Storm worker process is
  /// dedicated to a single job, so under Engine::kStorm the whole job is
  /// placed on one node. NEPTUNE placement is unaffected.
  bool storm_colocate = false;
};

struct NodeStats {
  double cpu_busy_ns = 0;
  double nic_busy_ns = 0;
  uint64_t ctx_switches = 0;
  double peak_queued_bytes = 0;
  double queued_bytes = 0;
  int runnable_tasks = 0;
};

/// Integer packet accounting for one simulated stage — the model-side half
/// of the runtime-vs-model differential validation (src/testkit). For the
/// source stage `packets` counts emissions; for processing stages it counts
/// packets consumed (arrivals processed). `per_instance` breaks the same
/// count down by instance index, so round-robin distribution can be diffed
/// against the real ShufflePartitioning.
struct StageCount {
  std::string id;
  uint64_t packets = 0;
  std::vector<uint64_t> per_instance;
};

struct JobCounts {
  std::string name;
  std::vector<StageCount> stages;
};

struct SimResult {
  double duration_s = 0;
  uint64_t packets_delivered = 0;      ///< packets arriving at terminal stages
  uint64_t packets_emitted = 0;        ///< packets leaving sources
  double throughput_pps = 0;           ///< delivered / duration
  double source_throughput_pps = 0;    ///< emitted / duration (Figure 9's metric)
  double bandwidth_bps = 0;            ///< cluster-wide wire bytes / duration
  double avg_cpu_utilization = 0;      ///< mean over nodes, 0..1 (all cores)
  double avg_memory_fraction = 0;      ///< mean over nodes, 0..1
  std::vector<double> per_node_cpu;    ///< per-node utilization
  std::vector<double> per_node_memory;
  uint64_t ctx_switches_per_node_per_5s = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_mean_ms = 0;
  /// Per-job integer stage counts (see StageCount). Always populated.
  std::vector<JobCounts> per_job;
};

/// Simulate `jobs` running concurrently under `engine` for `duration_s` of
/// virtual time. Placement is round-robin over nodes (per job, offset by
/// job index), mirroring the real runtime and Storm's even scheduler.
SimResult simulate_cluster(const ClusterSpec& cluster, const CostModel& costs, Engine engine,
                           const std::vector<JobSpec>& jobs, double duration_s);

/// The paper's 2-stage all-pairs scalability job (§IV-B): stage 1 sources
/// spread over all nodes, stage 2 sinks spread over all nodes, shuffle
/// partitioning => data flows between every pair of nodes.
JobSpec scalability_job(const ClusterSpec& cluster, double packet_bytes = 100);

/// The paper's 4-stage manufacturing-equipment monitoring job (Figure 8).
JobSpec manufacturing_job(const ClusterSpec& cluster);

/// The 3-stage message relay (Figure 1) pinned to 2 nodes.
JobSpec relay_job(double packet_bytes, double buffer_bytes = 1 << 20);

}  // namespace neptune::sim
