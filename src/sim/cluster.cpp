#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/stats.hpp"

namespace neptune::sim {
namespace {

constexpr SimTime kSwitchLatencyNs = 50'000;  // ToR switch + propagation

/// An accounting chunk: N packets moving together. For NEPTUNE this is a
/// real flushed buffer; for Storm it is K individually-framed tuples whose
/// per-tuple costs are applied analytically.
struct Chunk {
  uint32_t job = 0;
  uint32_t stage = 0;       // destination stage index
  uint32_t dst_instance = 0;
  double packets = 0;
  double payload_bytes = 0;  // application payload in this chunk
  SimTime emit_ns = 0;       // when the first packet entered the system
  uint32_t src_instance = 0;  // upstream instance (for credit release)
};

struct Node {
  std::vector<SimTime> core_free;
  SimTime nic_free = 0;
  NodeStats stats;
  double contention_multiplier = 1.0;

  /// Acquire one core for `dur` ns, no earlier than `earliest`.
  /// Returns completion time.
  SimTime cpu_acquire(SimTime earliest, double dur_ns) {
    auto it = std::min_element(core_free.begin(), core_free.end());
    SimTime start = std::max(earliest, *it);
    SimTime end = start + static_cast<SimTime>(dur_ns);
    *it = end;
    stats.cpu_busy_ns += dur_ns;
    return end;
  }
};

struct Edge;  // forward

/// One operator instance (any engine): a FIFO service chain on its node.
struct Instance {
  uint32_t job = 0;
  uint32_t stage = 0;
  uint32_t index = 0;
  size_t node = 0;
  SimTime busy_until = 0;
  bool in_service = false;          // currently processing a chunk
  std::deque<Chunk> pending;        // arrived, not yet processed
  double out_accum_packets = 0;     // emitted packets awaiting a full buffer
  SimTime out_accum_since = 0;      // when accumulation started (flush timer)
  size_t rr_cursor = 0;             // round-robin over downstream instances
  /// Effective packets per generated batch at a source. Usually the full
  /// buffer; when many flows share the NIC, the flush timer fires before a
  /// per-edge buffer fills and batches shrink (the paper's
  /// over-provisioning effect, §III-B1/Fig. 5).
  double gen_packets = 0;
  /// Offered-rate sources: virtual-time gap between generated batches and
  /// the next due time (keeps cadence under transient stalls).
  SimTime gen_interval_ns = 0;
  SimTime next_gen_ns = 0;
  bool waiting_for_credit = false;
  Chunk blocked_chunk;              // chunk whose forward is stalled
  bool has_blocked_chunk = false;
  bool source_active = false;       // source generation loop armed
  uint64_t source_emitted = 0;
  uint64_t quota = 0;               // finite workload: packets to emit (0 = unbounded)
  uint64_t processed = 0;           // packets consumed at this instance (stages >= 1)
};

/// Credit window per (upstream instance, downstream stage): models the
/// bounded per-edge channel budget (NEPTUNE). Storm gets an effectively
/// unbounded window.
struct Edge {
  int credits = 0;
  std::vector<uint32_t> waiters;  // flat instance ids waiting for credit
};

struct JobRuntime {
  JobSpec spec;
  // instance ids (into SimState::instances) per stage.
  std::vector<std::vector<uint32_t>> stage_instances;
  // edge windows: per upstream instance, per downstream stage link:
  // edges[upstream_flat_local] one per (stage s -> s+1) upstream instance.
  std::vector<Edge> edges;  // indexed by upstream flat-local instance order
};

struct SimState {
  const ClusterSpec* cluster;
  const CostModel* costs;
  Engine engine;
  EventQueue q;
  NetModel net;
  std::vector<Node> nodes;
  std::vector<Instance> instances;
  std::vector<JobRuntime> jobs;
  LatencyHistogram latency;  // ns, weighted by packets
  uint64_t packets_delivered = 0;
  uint64_t packets_emitted = 0;
  double wire_bytes_total = 0;
  uint64_t ctx_switches = 0;
  SimTime end_time = 0;

  double chunk_packets(const JobSpec& job) const {
    double n = job.buffer_bytes / job.packet_bytes;
    return std::max(1.0, std::floor(n));
  }

  /// Application bytes -> wire bytes for one chunk, engine-dependent.
  double chunk_wire_bytes(const JobSpec& job, double packets) const {
    double payload = packets * job.packet_bytes;
    if (engine == Engine::kNeptune) {
      // One frame per flushed buffer: frame header + batch header.
      return NetModel::wire_bytes(payload + 23 + 12);
    }
    // Storm: every tuple framed and sent individually.
    return packets * NetModel::wire_bytes(job.packet_bytes + 23 + 4);
  }

  /// CPU ns to produce a chunk at a source instance.
  double source_cpu_ns(const JobSpec& job, double packets) const {
    double per = costs->ser_ns_per_packet;
    if (engine == Engine::kStorm) per += costs->storm_per_tuple_overhead_ns;
    return packets * per + costs->batch_overhead_ns + costs->ctx_switch_ns;
  }

  /// CPU ns to consume a chunk at stage `s`.
  double process_cpu_ns(const JobSpec& job, uint32_t s, double packets) const {
    double per = costs->deser_ns_per_packet + job.stages[s].proc_ns_per_packet;
    if (engine == Engine::kStorm) per += costs->storm_per_tuple_overhead_ns;
    return packets * per + costs->batch_overhead_ns + costs->ctx_switch_ns;
  }

  /// CPU ns for an intermediate stage to re-serialize and forward.
  double forward_cpu_ns(const JobSpec&, double packets) const {
    double per = costs->ser_ns_per_packet;
    if (engine == Engine::kStorm) per += costs->storm_per_tuple_overhead_ns;
    return packets * per + costs->batch_overhead_ns;
  }

  Edge& edge_for(JobRuntime& jr, uint32_t upstream_flat_local) {
    return jr.edges[upstream_flat_local];
  }

  // --- simulation logic -------------------------------------------------------

  void arm_source(uint32_t inst_id) {
    Instance& inst = instances[inst_id];
    if (inst.source_active) return;
    inst.source_active = true;
    q.schedule_in(0, [this, inst_id] { source_generate(inst_id); });
  }

  void source_generate(uint32_t inst_id) {
    Instance& inst = instances[inst_id];
    JobRuntime& jr = jobs[inst.job];
    const JobSpec& spec = jr.spec;
    if (q.now() >= end_time) {
      inst.source_active = false;
      return;
    }
    if (inst.quota > 0 && inst.source_emitted >= inst.quota) {
      inst.source_active = false;  // finite workload exhausted
      return;
    }
    // Credit check (per upstream-instance window over all of stage 1).
    Edge& edge = jr.edges[flat_local(jr, 0, inst.index)];
    if (edge.credits <= 0) {
      inst.source_active = false;
      inst.waiting_for_credit = true;
      edge.waiters.push_back(inst_id);
      return;
    }
    --edge.credits;

    double n = inst.gen_packets > 0 ? inst.gen_packets : chunk_packets(spec);
    if (inst.quota > 0)
      n = std::min(n, static_cast<double>(inst.quota - inst.source_emitted));
    Node& node = nodes[inst.node];
    double cpu = source_cpu_ns(spec, n) * node.contention_multiplier;
    SimTime done = node.cpu_acquire(std::max(q.now(), inst.busy_until), cpu);
    inst.busy_until = done;
    node.stats.ctx_switches += 1;
    ctx_switches += 1;
    if (q.now() <= end_time) {
      packets_emitted += static_cast<uint64_t>(n);
      inst.source_emitted += static_cast<uint64_t>(n);
    }

    // Pick the destination instance (shuffle round-robin).
    auto& dsts = jr.stage_instances[1];
    uint32_t dst = dsts[inst.rr_cursor++ % dsts.size()];

    Chunk c;
    c.job = inst.job;
    c.stage = 1;
    c.dst_instance = dst;
    c.packets = n;
    c.payload_bytes = n * spec.packet_bytes;
    c.emit_ns = q.now();
    c.src_instance = inst.index;
    q.schedule_at(done, [this, inst_id, c] { nic_send(inst_id, c); });
  }

  void nic_send(uint32_t src_inst_id, Chunk c) {
    Instance& src = instances[src_inst_id];
    JobRuntime& jr = jobs[src.job];
    Node& node = nodes[src.node];
    double wire = chunk_wire_bytes(jr.spec, c.packets);
    double tx_ns = wire * 8.0 / net.bandwidth_bps * 1e9;
    SimTime depart = std::max(q.now(), node.nic_free);
    node.nic_free = depart + static_cast<SimTime>(tx_ns);
    node.stats.nic_busy_ns += tx_ns;
    if (q.now() <= end_time) wire_bytes_total += wire;
    SimTime arrive = node.nic_free + kSwitchLatencyNs;
    q.schedule_at(arrive, [this, c] { chunk_arrive(c); });

    // The sender continues once the NIC accepted the frame (socket write
    // returned) — for sources, generate the next buffer. Offered-rate
    // sources additionally wait out their cadence.
    if (src.stage == 0) {
      SimTime next = node.nic_free;
      if (src.gen_interval_ns > 0) {
        src.next_gen_ns = std::max(src.next_gen_ns, q.now()) + src.gen_interval_ns;
        next = std::max(next, src.next_gen_ns);
      }
      q.schedule_at(next, [this, src_inst_id] {
        Instance& s = instances[src_inst_id];
        if (s.source_active) source_generate(src_inst_id);
      });
    }
  }

  void chunk_arrive(Chunk c) {
    Instance& inst = instances[c.dst_instance];
    Node& node = nodes[inst.node];
    node.stats.queued_bytes += c.payload_bytes;
    node.stats.peak_queued_bytes = std::max(node.stats.peak_queued_bytes, node.stats.queued_bytes);
    inst.pending.push_back(c);
    maybe_start_service(c.dst_instance);
  }

  void maybe_start_service(uint32_t inst_id) {
    Instance& inst = instances[inst_id];
    if (inst.in_service || inst.has_blocked_chunk || inst.pending.empty()) return;
    inst.in_service = true;
    Chunk c = inst.pending.front();
    inst.pending.pop_front();
    JobRuntime& jr = jobs[inst.job];
    Node& node = nodes[inst.node];
    double cpu = process_cpu_ns(jr.spec, c.stage, c.packets) * node.contention_multiplier;
    SimTime done = node.cpu_acquire(std::max(q.now(), inst.busy_until), cpu);
    inst.busy_until = done;
    node.stats.ctx_switches += 1;
    ctx_switches += 1;
    q.schedule_at(done, [this, inst_id, c] { service_complete(inst_id, c); });
  }

  void service_complete(uint32_t inst_id, Chunk c) {
    Instance& inst = instances[inst_id];
    if (q.now() <= end_time) inst.processed += static_cast<uint64_t>(c.packets);
    Node& node = nodes[inst.node];
    node.stats.queued_bytes = std::max(0.0, node.stats.queued_bytes - c.payload_bytes);
    JobRuntime& jr = jobs[inst.job];
    const JobSpec& spec = jr.spec;
    bool terminal = c.stage + 1 >= spec.stages.size();

    if (terminal) {
      if (q.now() <= end_time) {
        packets_delivered += static_cast<uint64_t>(c.packets);
        int64_t lat = q.now() - c.emit_ns;
        if (lat > 0)
          latency.record_n(static_cast<uint64_t>(lat), static_cast<uint64_t>(c.packets));
      }
      finish_chunk(inst_id, c);
      return;
    }

    // Intermediate stage: emit selectivity-scaled packets onward. For
    // simplicity a processed chunk forwards immediately as one chunk (the
    // accumulated remainder model below handles sub-unit selectivity).
    double out_packets = c.packets * spec.stages[c.stage].selectivity;
    inst.out_accum_packets += out_packets;
    double batch = engine == Engine::kNeptune
                       ? std::max(1.0, std::min(chunk_packets(spec), inst.out_accum_packets))
                       : inst.out_accum_packets;
    if (inst.out_accum_packets + 1e-9 < 1.0) {
      // Not even one packet to forward yet: complete, keep accumulating.
      finish_chunk(inst_id, c);
      return;
    }
    double send_packets = std::floor(std::min(batch, inst.out_accum_packets));
    inst.out_accum_packets -= send_packets;

    // Forward needs a credit on this instance's downstream window.
    Edge& edge = jr.edges[flat_local(jr, c.stage, inst.index)];
    if (edge.credits <= 0) {
      // Stall: hold the chunk (upstream credit stays consumed -> the
      // backpressure chain of §III-B4 propagates).
      inst.blocked_chunk = c;
      inst.blocked_chunk.packets = send_packets;  // reuse as forward size
      inst.has_blocked_chunk = true;
      edge.waiters.push_back(inst_id);
      return;
    }
    --edge.credits;
    forward_chunk(inst_id, c, send_packets);
  }

  void forward_chunk(uint32_t inst_id, const Chunk& c, double send_packets) {
    Instance& inst = instances[inst_id];
    JobRuntime& jr = jobs[inst.job];
    const JobSpec& spec = jr.spec;
    Node& node = nodes[inst.node];
    double cpu = forward_cpu_ns(spec, send_packets) * node.contention_multiplier;
    SimTime done = node.cpu_acquire(std::max(q.now(), inst.busy_until), cpu);
    inst.busy_until = done;

    auto& dsts = jr.stage_instances[c.stage + 1];
    uint32_t dst = dsts[inst.rr_cursor++ % dsts.size()];
    Chunk out;
    out.job = c.job;
    out.stage = c.stage + 1;
    out.dst_instance = dst;
    out.packets = send_packets;
    out.payload_bytes = send_packets * spec.packet_bytes;
    out.emit_ns = c.emit_ns;
    out.src_instance = inst.index;
    uint32_t self = inst_id;
    Chunk upstream_done = c;
    q.schedule_at(done, [this, self, out, upstream_done] {
      nic_send(self, out);
      finish_chunk(self, upstream_done);
    });
  }

  /// Chunk fully handled at this instance: release the upstream credit and
  /// pull the next pending chunk.
  void finish_chunk(uint32_t inst_id, const Chunk& c) {
    Instance& inst = instances[inst_id];
    JobRuntime& jr = jobs[inst.job];
    // Release the upstream window (stage c.stage-1, instance c.src_instance).
    Edge& edge = jr.edges[flat_local(jr, c.stage - 1, c.src_instance)];
    ++edge.credits;
    if (!edge.waiters.empty()) {
      uint32_t waiter = edge.waiters.back();
      edge.waiters.pop_back();
      Instance& w = instances[waiter];
      if (w.stage == 0) {
        w.waiting_for_credit = false;
        arm_source(waiter);
      } else if (w.has_blocked_chunk) {
        // Resume the stalled forward; its own finish_chunk continues the
        // waiter's chain.
        Chunk blocked = w.blocked_chunk;
        w.has_blocked_chunk = false;
        Edge& e2 = jr.edges[flat_local(jr, blocked.stage, w.index)];
        --e2.credits;
        forward_chunk(waiter, blocked, blocked.packets);
      }
    }
    inst.in_service = false;
    maybe_start_service(inst_id);
  }

  /// Flat index of (stage, instance) within a job, used to key windows.
  uint32_t flat_local(const JobRuntime& jr, uint32_t stage, uint32_t instance) const {
    uint32_t base = 0;
    for (uint32_t s = 0; s < stage; ++s)
      base += static_cast<uint32_t>(jr.stage_instances[s].size());
    return base + instance;
  }
};

}  // namespace

SimResult simulate_cluster(const ClusterSpec& cluster, const CostModel& costs, Engine engine,
                           const std::vector<JobSpec>& jobs, double duration_s) {
  SimState st;
  st.cluster = &cluster;
  st.costs = &costs;
  st.engine = engine;
  st.net.bandwidth_bps = cluster.nic_bps;
  st.end_time = static_cast<SimTime>(duration_s * 1e9);
  st.nodes.resize(cluster.nodes);
  for (auto& n : st.nodes) n.core_free.assign(static_cast<size_t>(cluster.cores_per_node), 0);

  // Deploy jobs: per job, stage instances round-robin over nodes with a
  // per-job offset (spreads hotspots like the real schedulers).
  size_t total_tasks = 0;
  std::vector<int> tasks_per_node(cluster.nodes, 0);
  for (size_t j = 0; j < jobs.size(); ++j) {
    JobRuntime jr;
    jr.spec = jobs[j];
    size_t cursor = j;  // placement offset per job
    bool colocate = engine == Engine::kStorm && jr.spec.storm_colocate;
    for (uint32_t s = 0; s < jr.spec.stages.size(); ++s) {
      std::vector<uint32_t> ids;
      for (uint32_t i = 0; i < jr.spec.stages[s].parallelism; ++i) {
        Instance inst;
        inst.job = static_cast<uint32_t>(j);
        inst.stage = s;
        inst.index = i;
        inst.node = colocate ? j % cluster.nodes : cursor++ % cluster.nodes;
        ++tasks_per_node[inst.node];
        ++total_tasks;
        ids.push_back(static_cast<uint32_t>(st.instances.size()));
        st.instances.push_back(inst);
      }
      jr.stage_instances.push_back(std::move(ids));
    }
    // Windows: one per upstream instance of every non-terminal stage.
    uint32_t upstreams = 0;
    for (uint32_t s = 0; s + 1 < jr.spec.stages.size(); ++s)
      upstreams += jr.spec.stages[s].parallelism;
    // Also allocate for the terminal stage (unused) so flat_local stays simple.
    upstreams += jr.spec.stages.back().parallelism;
    jr.edges.resize(upstreams);
    int window = engine == Engine::kNeptune ? std::max(1, jr.spec.credit_window) : 1 << 20;
    for (auto& e : jr.edges) e.credits = window;
    // Finite workload: split the job's packet budget over source instances
    // (first total%S instances take one extra, like workload::BytesSource).
    if (jr.spec.total_packets > 0) {
      uint64_t sources = jr.stage_instances[0].size();
      for (uint64_t i = 0; i < sources; ++i) {
        Instance& src = st.instances[jr.stage_instances[0][i]];
        src.quota = jr.spec.total_packets / sources + (i < jr.spec.total_packets % sources ? 1 : 0);
      }
    }
    st.jobs.push_back(std::move(jr));
  }

  // Scheduler contention grows with co-located runnable tasks.
  for (size_t n = 0; n < st.nodes.size(); ++n) {
    int extra = std::max(0, tasks_per_node[n] - 1);
    st.nodes[n].contention_multiplier = 1.0 + costs.contention_per_task * extra;
  }

  // Effective source batch sizes (NEPTUNE): a per-edge buffer fills at the
  // source's fair share of its NIC divided over its fan-out; if that is
  // slower than the flush timer, the timer flushes a partial buffer. This
  // is what erodes batching efficiency once the cluster is overprovisioned
  // (paper Figure 5's decline past ~1 job/node). Storm has no
  // application-level buffering, so its accounting chunk stays as-is.
  std::vector<int> sources_per_node(cluster.nodes, 0);
  for (const auto& inst : st.instances) {
    if (inst.stage == 0) ++sources_per_node[inst.node];
  }
  for (auto& inst : st.instances) {
    if (inst.stage != 0) continue;
    const JobSpec& spec = st.jobs[inst.job].spec;
    double full = st.chunk_packets(spec);
    double fanout = static_cast<double>(st.jobs[inst.job].stage_instances[1].size());

    if (spec.offered_pps > 0) {
      // Rate-limited source: each of its `fanout` per-edge buffers fills at
      // offered/fanout pps and flushes on the timer (or earlier at
      // capacity). Batch cadence follows.
      double per_flush = spec.offered_pps * (spec.flush_interval_ns * 1e-9) / fanout;
      if (engine != Engine::kNeptune) per_flush = std::max(per_flush, 64.0);  // accounting floor
      inst.gen_packets = std::max(1.0, std::min(full, std::floor(per_flush)));
      inst.gen_interval_ns =
          static_cast<SimTime>(inst.gen_packets / spec.offered_pps * 1e9);
      continue;
    }

    if (engine != Engine::kNeptune) {
      inst.gen_packets = full;
      continue;
    }
    // Saturating source: the per-edge buffer fills at the source's fair
    // share of the NIC split over its fan-out; the flush timer caps how
    // long a partial buffer may wait.
    double share_bps = cluster.nic_bps / std::max(1, sources_per_node[inst.node]);
    double per_edge_bytes_per_s = share_bps / 8.0 / fanout;
    double timer_packets =
        per_edge_bytes_per_s * (spec.flush_interval_ns * 1e-9) / spec.packet_bytes;
    inst.gen_packets = std::max(1.0, std::min(full, std::floor(timer_packets)));
  }

  // Kick sources, staggered to avoid a time-zero event storm.
  SimTime stagger = 0;
  for (size_t j = 0; j < st.jobs.size(); ++j) {
    for (uint32_t id : st.jobs[j].stage_instances[0]) {
      st.q.schedule_at(stagger, [&st, id] { st.arm_source(id); });
      stagger += 13'000;
    }
  }

  st.q.run_until(st.end_time);

  // Let in-flight chunks complete (drain) without counting new source work:
  // sources self-disarm past end_time.
  st.q.run_until(st.end_time + static_cast<SimTime>(2e8));

  SimResult r;
  r.duration_s = duration_s;
  r.packets_delivered = st.packets_delivered;
  r.packets_emitted = st.packets_emitted;
  r.throughput_pps = static_cast<double>(st.packets_delivered) / duration_s;
  r.source_throughput_pps = static_cast<double>(st.packets_emitted) / duration_s;
  r.bandwidth_bps = st.wire_bytes_total * 8.0 / duration_s;
  double cpu_sum = 0, mem_sum = 0;
  for (size_t n = 0; n < st.nodes.size(); ++n) {
    const Node& node = st.nodes[n];
    double util = node.stats.cpu_busy_ns / (duration_s * 1e9 * cluster.cores_per_node);
    util = std::min(util, 1.0);
    r.per_node_cpu.push_back(util);
    cpu_sum += util;
    // Node-to-node variation (OS caches, allocator fragmentation, JIT/heap
    // layout) dominates the small engine-to-engine differences — the paper
    // found no significant memory difference between the systems.
    uint64_t h = (static_cast<uint64_t>(n) + 1) * 0x9E3779B97F4A7C15ULL;
    double jitter = static_cast<double>((h >> 32) % 1000) / 1000.0;  // deterministic per node
    double resident_gb = 0.5 + 0.08 * tasks_per_node[n] +
                         node.stats.peak_queued_bytes / 1e9 + 0.8 * jitter;
    double frac = std::min(1.0, resident_gb / cluster.node_memory_gb);
    r.per_node_memory.push_back(frac);
    mem_sum += frac;
  }
  r.avg_cpu_utilization = cpu_sum / static_cast<double>(cluster.nodes);
  r.avg_memory_fraction = mem_sum / static_cast<double>(cluster.nodes);
  r.ctx_switches_per_node_per_5s = static_cast<uint64_t>(
      static_cast<double>(st.ctx_switches) / static_cast<double>(cluster.nodes) / duration_s * 5.0);
  r.latency_p50_ms = static_cast<double>(st.latency.percentile(50)) * 1e-6;
  r.latency_p99_ms = static_cast<double>(st.latency.percentile(99)) * 1e-6;
  r.latency_mean_ms = st.latency.mean() * 1e-6;
  // Integer packet accounting per (job, stage, instance) — the model-side
  // input to the runtime-vs-model differential harness.
  for (const auto& jr : st.jobs) {
    JobCounts jc;
    jc.name = jr.spec.name;
    for (uint32_t s = 0; s < jr.spec.stages.size(); ++s) {
      StageCount sc;
      sc.id = jr.spec.stages[s].id;
      for (uint32_t id : jr.stage_instances[s]) {
        const Instance& inst = st.instances[id];
        uint64_t n = s == 0 ? inst.source_emitted : inst.processed;
        sc.per_instance.push_back(n);
        sc.packets += n;
      }
      jc.stages.push_back(std::move(sc));
    }
    r.per_job.push_back(std::move(jc));
  }
  return r;
}

JobSpec scalability_job(const ClusterSpec& cluster, double packet_bytes) {
  JobSpec job;
  job.name = "all-pairs";
  job.packet_bytes = packet_bytes;
  // One source and one sink instance per node: shuffle partitioning gives
  // data flow between every pair of nodes (paper §IV-B). Each source
  // ingests an external stream at a fixed rate, so cumulative throughput
  // grows with the number of concurrent jobs until resources saturate —
  // the Figure 5 shape. A generous flush bound keeps batches efficient at
  // moderate fan-out rates.
  StageSpec src{"source", static_cast<uint32_t>(cluster.nodes), 0, 1.0};
  StageSpec sink{"sink", static_cast<uint32_t>(cluster.nodes), 350, 1.0};
  job.stages = {src, sink};
  job.offered_pps = 24'000;
  job.flush_interval_ns = 25e6;
  return job;
}

JobSpec manufacturing_job(const ClusterSpec& cluster) {
  JobSpec job;
  job.name = "manufacturing";
  job.packet_bytes = 120;  // 66 compact fields, varint-encoded
  uint32_t p = static_cast<uint32_t>(std::max<size_t>(1, cluster.nodes / 4));
  job.stages = {
      StageSpec{"readings", p, 0, 1.0},
      StageSpec{"extract", p, 35, 1.0},     // project 66 -> 7 fields
      StageSpec{"detect", p, 25, 0.02},     // emit only on state changes
      StageSpec{"monitor", p, 20, 0.0},     // windowed delay aggregation
  };
  // Sensors produce at a fixed rate: ~300 k readings/s per job, spread over
  // the parallel source instances (paper Figure 9: NEPTUNE reaches ~15
  // Mpkt/s cumulative at 50 jobs).
  job.offered_pps = 300'000.0 / p;
  job.flush_interval_ns = 25e6;
  job.storm_colocate = true;  // Storm dedicates one worker (node) per job
  return job;
}

JobSpec relay_job(double packet_bytes, double buffer_bytes) {
  JobSpec job;
  job.name = "relay";
  job.packet_bytes = packet_bytes;
  job.buffer_bytes = buffer_bytes;
  job.stages = {
      StageSpec{"sender", 1, 0, 1.0},
      StageSpec{"relay", 1, 5, 1.0},
      StageSpec{"receiver", 1, 5, 1.0},
  };
  return job;
}

}  // namespace neptune::sim
