// Storm-0.9.x-architecture baseline ("the dominant stream-processing
// framework", paper §IV). This is a faithful in-repo reimplementation of
// the architectural traits the paper attributes Storm's results to:
//
//   * Spouts emit a single tuple per nextTuple() invocation; bolts process
//     one tuple at a time. No application-level batching: every tuple is
//     framed and shipped individually.
//   * The documented 0.9.x threading model — "every message [goes] through
//     four different threads from the point of entry to exit" (§IV-C):
//     worker receive thread -> executor incoming queue -> executor thread
//     -> executor outgoing queue -> executor send thread -> worker transfer
//     queue -> worker transfer thread -> socket.
//   * No backpressure: intermediate queues are unbounded, so a slow bolt
//     manifests as queue build-up and latency blow-up rather than source
//     throttling (the Figure 7 latency result).
//   * Reliable-message acking disabled (as configured in the paper's
//     evaluation: "reliable message processing feature disabled").
//
// Tuples reuse NEPTUNE's StreamPacket for serde so the comparison isolates
// the engine architecture, not the serialization format.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "neptune/packet.hpp"
#include "net/channel.hpp"

namespace neptune::storm {

using Tuple = StreamPacket;

/// Collector handed to spouts and bolts; emit routes by the declared
/// grouping of each downstream bolt.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;
  virtual void emit(Tuple&& tuple) = 0;
};

class Spout {
 public:
  virtual ~Spout() = default;
  virtual void open(uint32_t task_index, uint32_t parallelism) {
    (void)task_index;
    (void)parallelism;
  }
  /// Emit at most one tuple (Storm semantics). Return false when the spout
  /// is permanently exhausted; returning true with no emit means "no tuple
  /// right now" and the executor sleeps 1 ms (Storm's idle strategy).
  virtual bool next_tuple(OutputCollector& out) = 0;
  virtual void close() {}
};

class Bolt {
 public:
  virtual ~Bolt() = default;
  virtual void prepare(uint32_t task_index, uint32_t parallelism) {
    (void)task_index;
    (void)parallelism;
  }
  virtual void execute(Tuple& tuple, OutputCollector& out) = 0;
  virtual void cleanup() {}
};

using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

enum class Grouping : uint8_t { kShuffle, kFields, kBroadcast, kGlobal };

struct GroupingDecl {
  std::string from;
  Grouping grouping = Grouping::kShuffle;
  size_t field_index = 0;
};

struct ComponentDecl {
  std::string id;
  bool is_spout = false;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  uint32_t parallelism = 1;
  std::vector<GroupingDecl> inputs;  // bolts only
};

/// Storm topology description (spouts + bolts + groupings).
class TopologyBuilder {
 public:
  TopologyBuilder& set_spout(const std::string& id, SpoutFactory factory,
                             uint32_t parallelism = 1);

  /// Returns a handle for declaring the bolt's input groupings.
  class BoltHandle {
   public:
    BoltHandle& shuffle_grouping(const std::string& from);
    BoltHandle& fields_grouping(const std::string& from, size_t field_index);
    BoltHandle& broadcast_grouping(const std::string& from);
    BoltHandle& global_grouping(const std::string& from);

   private:
    friend class TopologyBuilder;
    BoltHandle(TopologyBuilder* b, size_t idx) : builder_(b), index_(idx) {}
    TopologyBuilder* builder_;
    size_t index_;
  };
  BoltHandle set_bolt(const std::string& id, BoltFactory factory, uint32_t parallelism = 1);

  const std::vector<ComponentDecl>& components() const { return components_; }

 private:
  std::vector<ComponentDecl> components_;
};

struct StormConfig {
  /// Storm workers (≈ JVM worker processes). The paper notes Storm
  /// dedicates a worker to one topology; each submit spawns its own.
  size_t workers = 1;
  /// Per-pair channel budget. Deliberately large: Storm 0.9.x has no
  /// end-to-end backpressure, so queue build-up must be representable.
  size_t channel_capacity_bytes = 256u << 20;
  /// Spout idle sleep when next_tuple produced nothing.
  int64_t spout_idle_sleep_ns = 1'000'000;
  /// Reliable (at-least-once) processing via Storm's XOR acker. The paper
  /// ran with this DISABLED ("to ensure that the throughput of Storm is
  /// not adversely affected by the additional overhead introduced by
  /// acknowledgments"); bench/ablation_storm_acking measures that overhead.
  bool acking_enabled = false;
  /// With acking on: max spout tuples pending acknowledgment
  /// (Storm's topology.max.spout.pending).
  size_t max_spout_pending = 1024;
};

struct ComponentMetrics {
  std::atomic<uint64_t> tuples_in{0};
  std::atomic<uint64_t> tuples_out{0};
  std::atomic<uint64_t> bytes_out{0};
  LatencyHistogram sink_latency;  // recorded at bolts with no consumers
};

struct StormMetricsSnapshot {
  struct Component {
    std::string id;
    uint64_t tuples_in = 0;
    uint64_t tuples_out = 0;
    uint64_t bytes_out = 0;
  };
  std::vector<Component> components;
  int64_t wall_time_ns = 0;
  uint64_t thread_hops = 0;  ///< cumulative cross-thread handoffs

  uint64_t tuples_in(const std::string& id) const {
    uint64_t n = 0;
    for (auto& c : components) {
      if (c.id == id) n += c.tuples_in;
    }
    return n;
  }
  uint64_t tuples_out(const std::string& id) const {
    uint64_t n = 0;
    for (auto& c : components) {
      if (c.id == id) n += c.tuples_out;
    }
    return n;
  }
  double seconds() const { return static_cast<double>(wall_time_ns) * 1e-9; }
};

class LocalCluster;

/// A running topology.
class StormTopology {
 public:
  ~StormTopology();
  StormTopology(const StormTopology&) = delete;
  StormTopology& operator=(const StormTopology&) = delete;

  /// Wait until all spouts are exhausted and all in-flight tuples have been
  /// processed. False on timeout.
  bool wait_for_drain(std::chrono::nanoseconds timeout = std::chrono::hours(1));

  /// Hard-stop all threads (also called by the destructor).
  void kill();

  StormMetricsSnapshot metrics() const;

  /// p99 end-to-end latency observed at sink bolts, in nanoseconds.
  uint64_t sink_latency_p99_ns() const;
  uint64_t sink_latency_p50_ns() const;

  /// With acking enabled: tuple trees fully acknowledged so far.
  uint64_t tuples_completed() const;
  /// With acking enabled: tuple trees still pending acknowledgment.
  uint64_t tuples_pending() const;

 private:
  friend class LocalCluster;
  StormTopology() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// In-process Storm cluster (the LocalCluster of Storm's API).
class LocalCluster {
 public:
  explicit LocalCluster(StormConfig config = {});

  /// Deploy and start a topology. Tasks are assigned to workers
  /// round-robin, mirroring Storm's even scheduler.
  std::shared_ptr<StormTopology> submit(const TopologyBuilder& topology);

  const StormConfig& config() const { return config_; }

 private:
  StormConfig config_;
};

}  // namespace neptune::storm
