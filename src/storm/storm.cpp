#include "storm/storm.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_util.hpp"
#include "net/frame.hpp"
#include "net/inproc_transport.hpp"

namespace neptune::storm {

// --- TopologyBuilder ----------------------------------------------------------

TopologyBuilder& TopologyBuilder::set_spout(const std::string& id, SpoutFactory factory,
                                            uint32_t parallelism) {
  ComponentDecl d;
  d.id = id;
  d.is_spout = true;
  d.spout_factory = std::move(factory);
  d.parallelism = parallelism;
  components_.push_back(std::move(d));
  return *this;
}

TopologyBuilder::BoltHandle TopologyBuilder::set_bolt(const std::string& id, BoltFactory factory,
                                                      uint32_t parallelism) {
  ComponentDecl d;
  d.id = id;
  d.is_spout = false;
  d.bolt_factory = std::move(factory);
  d.parallelism = parallelism;
  components_.push_back(std::move(d));
  return BoltHandle(this, components_.size() - 1);
}

TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::shuffle_grouping(
    const std::string& from) {
  builder_->components_[index_].inputs.push_back({from, Grouping::kShuffle, 0});
  return *this;
}
TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::fields_grouping(const std::string& from,
                                                                          size_t field_index) {
  builder_->components_[index_].inputs.push_back({from, Grouping::kFields, field_index});
  return *this;
}
TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::broadcast_grouping(
    const std::string& from) {
  builder_->components_[index_].inputs.push_back({from, Grouping::kBroadcast, 0});
  return *this;
}
TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::global_grouping(
    const std::string& from) {
  builder_->components_[index_].inputs.push_back({from, Grouping::kGlobal, 0});
  return *this;
}

// --- runtime structures ----------------------------------------------------------

namespace {

/// An in-flight tuple plus its reliability lineage (Storm's anchoring):
/// `root` identifies the spout tuple tree, `id` this edge of the tree.
/// Zero ids mean acking is disabled.
struct Envelope {
  Tuple tuple;
  uint64_t root = 0;
  uint64_t id = 0;
};

/// Unbounded blocking queue — deliberately unbounded: Storm 0.9.x had no
/// end-to-end backpressure; overload shows up as queue growth and latency.
template <typename T>
class UnboundedQueue {
 public:
  void push(T&& t) {
    {
      std::lock_guard lk(mu_);
      q_.push_back(std::move(t));
    }
    cv_.notify_one();
  }

  /// Pop one element; returns nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T t = std::move(q_.front());
    q_.pop_front();
    return t;
  }

  size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

using TupleQueue = UnboundedQueue<Envelope>;

/// A routed tuple as it crosses worker boundaries.
struct TransferItem {
  uint32_t dest_task = 0;
  Envelope env;
};
using TransferQueue = UnboundedQueue<TransferItem>;

/// One message to the topology's acker task (Storm's XOR scheme): on init,
/// `value` is the spout tuple id; on ack, the XOR of the consumed input id
/// and all child ids anchored to it. A tuple tree is complete when the
/// accumulated XOR reaches zero.
struct AckMessage {
  uint64_t root = 0;
  uint64_t value = 0;
  bool init = false;
  uint32_t spout_task = 0;  // init only
};
using AckQueue = UnboundedQueue<AckMessage>;

struct TaskRuntime;
struct WorkerRuntime;

/// One downstream subscription: which tasks consume a component's output
/// and how the stream is partitioned among them.
struct Subscription {
  Grouping grouping = Grouping::kShuffle;
  size_t field_index = 0;
  std::vector<uint32_t> dest_tasks;    // global task ids
  std::atomic<uint32_t> rr_cursor{0};  // shared round-robin cursor (atomic: producers race)

  Subscription() = default;
  Subscription(Subscription&& o) noexcept
      : grouping(o.grouping),
        field_index(o.field_index),
        dest_tasks(std::move(o.dest_tasks)),
        rr_cursor(o.rr_cursor.load()) {}
};

}  // namespace

struct StormTopology::Impl {
  StormConfig config;
  std::atomic<bool> killed{false};
  std::atomic<uint64_t> thread_hops{0};
  int64_t start_ns = 0;

  struct Task;  // forward

  /// A Storm worker process analogue: hosts tasks, runs the worker-level
  /// receive thread and transfer thread (two of the four hops).
  struct Worker {
    size_t index = 0;
    Impl* owner = nullptr;
    TransferQueue transfer_queue;
    std::thread transfer_thread;
    std::thread receive_thread;
    // Channels to every other worker (by worker index).
    std::vector<std::shared_ptr<ChannelSender>> tx;
    std::vector<std::shared_ptr<ChannelReceiver>> rx;
    std::vector<Task*> tasks;
  };

  struct Task {
    uint32_t task_id = 0;
    uint32_t index_in_component = 0;
    size_t component = 0;  // index into components
    Worker* worker = nullptr;
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    TupleQueue incoming;        // executor incoming queue (hop 2)
    TupleQueue outgoing;        // executor outgoing queue (hop 3)
    std::thread executor_thread;
    std::thread send_thread;
    std::atomic<bool> spout_done{false};
    std::atomic<uint64_t> processing{0};  // tuples popped but not yet routed
    // Acking state (used only when acking is enabled):
    std::atomic<uint64_t> spout_pending{0};  // tuple trees awaiting full ack
    uint64_t cur_root = 0;                   // lineage of the tuple being executed
    uint64_t cur_xor = 0;                    // input id XOR emitted child ids
    Xoshiro256 id_rng{0x5EED};               // per-task tuple-id generator
  };

  struct Component {
    ComponentDecl decl;
    ComponentMetrics metrics;
    std::vector<Subscription> subs;  // consumers of this component's output
    std::vector<uint32_t> task_ids;
    bool is_sink = false;
  };

  std::vector<std::unique_ptr<Component>> components;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<Task>> tasks;  // indexed by task_id

  // --- acker (Storm's reliability bolt; runs only with acking enabled) ---
  AckQueue acker_queue;
  std::thread acker_thread;
  std::atomic<uint64_t> trees_completed{0};

  void acker_main() {
    set_thread_name("storm-acker");
    // root -> (accumulated XOR, owning spout task). The XOR reaches zero
    // exactly when every tuple in the tree has been acked (Storm's scheme).
    std::unordered_map<uint64_t, std::pair<uint64_t, uint32_t>> state;
    while (auto m = acker_queue.pop()) {
      if (m->init) {
        auto& entry = state[m->root];
        entry.first ^= m->value;
        entry.second = m->spout_task;
        continue;  // the init value is never zero
      }
      auto it = state.find(m->root);
      if (it == state.end()) continue;  // already completed / unknown
      it->second.first ^= m->value;
      if (it->second.first == 0) {
        tasks[it->second.second]->spout_pending.fetch_sub(1, std::memory_order_acq_rel);
        trees_completed.fetch_add(1, std::memory_order_relaxed);
        state.erase(it);
      }
    }
  }

  // --- routing ------------------------------------------------------------------

  class Collector : public OutputCollector {
   public:
    Collector(Impl* impl, Task* task) : impl_(impl), task_(task) {}
    void emit(Tuple&& tuple) override { impl_->route(task_, std::move(tuple)); }

   private:
    Impl* impl_;
    Task* task_;
  };

  void route(Task* from, Tuple&& tuple) {
    Component& comp = *components[from->component];
    comp.metrics.tuples_out.fetch_add(1, std::memory_order_relaxed);
    if (tuple.event_time_ns() == 0) tuple.set_event_time_ns(now_ns());

    Envelope env;
    env.tuple = std::move(tuple);
    if (config.acking_enabled) {
      env.id = from->id_rng.next_u64() | 1;  // never zero
      if (from->spout) {
        // New tuple tree rooted at this spout emission.
        env.root = env.id;
        from->spout_pending.fetch_add(1, std::memory_order_acq_rel);
        acker_queue.push(AckMessage{env.root, env.id, /*init=*/true, from->task_id});
      } else {
        // Anchor to the input currently being executed.
        env.root = from->cur_root;
        from->cur_xor ^= env.id;
      }
    }
    Tuple& routed = env.tuple;
    (void)routed;
    if (comp.subs.empty()) return;  // terminal emit
    // Per Storm semantics every subscription receives the stream.
    for (size_t s = 0; s < comp.subs.size(); ++s) {
      Subscription& sub = comp.subs[s];
      bool last_sub = s + 1 == comp.subs.size();
      switch (sub.grouping) {
        case Grouping::kBroadcast:
          for (uint32_t dest : sub.dest_tasks) deliver(from, dest, Envelope(env));
          break;
        case Grouping::kFields: {
          uint64_t h = env.tuple.field_hash(sub.field_index);
          uint32_t dest = sub.dest_tasks[h % sub.dest_tasks.size()];
          if (last_sub) {
            deliver(from, dest, std::move(env));
          } else {
            deliver(from, dest, Envelope(env));
          }
          break;
        }
        case Grouping::kGlobal: {
          uint32_t dest = sub.dest_tasks.front();
          if (last_sub) {
            deliver(from, dest, std::move(env));
          } else {
            deliver(from, dest, Envelope(env));
          }
          break;
        }
        case Grouping::kShuffle:
        default: {
          // Storm's shuffle: round-robin over destination tasks.
          uint32_t cursor = sub.rr_cursor.fetch_add(1, std::memory_order_relaxed);
          uint32_t dest = sub.dest_tasks[cursor % sub.dest_tasks.size()];
          if (last_sub) {
            deliver(from, dest, std::move(env));
          } else {
            deliver(from, dest, Envelope(env));
          }
          break;
        }
      }
    }
  }

  /// Enqueue a routed tuple on the executor outgoing queue (hop 3); the
  /// destination task id rides along as a trailing field until the send
  /// thread strips it.
  void deliver(Task* from, uint32_t dest_task, Envelope&& env) {
    env.tuple.add_i32(static_cast<int32_t>(dest_task));
    from->outgoing.push(std::move(env));
    thread_hops.fetch_add(1, std::memory_order_relaxed);
  }

  /// Destination task id is carried as a trailing i32 field while the tuple
  /// sits in the executor outgoing queue; stripped before delivery.
  static uint32_t strip_dest(Tuple& t) {
    uint32_t dest = static_cast<uint32_t>(t.i32(t.field_count() - 1));
    // Rebuild without the last field (packets have no pop_back; emulate).
    Tuple stripped;
    stripped.set_event_time_ns(t.event_time_ns());
    for (size_t i = 0; i + 1 < t.field_count(); ++i) stripped.add(Value(t.field(i)));
    t = std::move(stripped);
    return dest;
  }

  // --- threads --------------------------------------------------------------------

  void executor_main(Task* task) {
    set_thread_name("storm-exec-" + std::to_string(task->task_id));
    Component& comp = *components[task->component];
    Collector collector(this, task);
    if (task->spout) {
      task->spout->open(task->index_in_component, comp.decl.parallelism);
      while (!killed.load(std::memory_order_acquire)) {
        if (config.acking_enabled &&
            task->spout_pending.load(std::memory_order_acquire) >= config.max_spout_pending) {
          // topology.max.spout.pending throttle: the only flow control
          // Storm offers, and only with acking on.
          std::this_thread::sleep_for(std::chrono::nanoseconds(config.spout_idle_sleep_ns));
          continue;
        }
        uint64_t before = comp.metrics.tuples_out.load(std::memory_order_relaxed);
        bool alive = task->spout->next_tuple(collector);
        if (!alive) break;
        if (comp.metrics.tuples_out.load(std::memory_order_relaxed) == before) {
          // Idle spout: Storm sleeps 1 ms.
          std::this_thread::sleep_for(std::chrono::nanoseconds(config.spout_idle_sleep_ns));
        }
      }
      task->spout->close();
      task->spout_done.store(true, std::memory_order_release);
      return;
    }
    task->bolt->prepare(task->index_in_component, comp.decl.parallelism);
    while (true) {
      auto t = task->incoming.pop();
      if (!t) break;
      task->processing.fetch_add(1, std::memory_order_acq_rel);
      comp.metrics.tuples_in.fetch_add(1, std::memory_order_relaxed);
      if (comp.is_sink && t->tuple.event_time_ns() > 0) {
        int64_t lat = now_ns() - t->tuple.event_time_ns();
        if (lat > 0) comp.metrics.sink_latency.record(static_cast<uint64_t>(lat));
      }
      task->cur_root = t->root;
      task->cur_xor = t->id;  // children emitted during execute() XOR in here
      task->bolt->execute(t->tuple, collector);
      if (config.acking_enabled && t->root != 0) {
        acker_queue.push(AckMessage{t->root, task->cur_xor, /*init=*/false, 0});
      }
      task->cur_root = 0;
      task->processing.fetch_sub(1, std::memory_order_acq_rel);
    }
    task->bolt->cleanup();
  }

  /// Hop 3->4: executor send thread moves routed tuples to the worker
  /// transfer queue (per-tuple, no batching — the Storm contrast).
  void send_main(Task* task) {
    set_thread_name("storm-send-" + std::to_string(task->task_id));
    while (true) {
      auto t = task->outgoing.pop();
      if (!t) break;
      task->processing.fetch_add(1, std::memory_order_acq_rel);
      Envelope env = std::move(*t);
      uint32_t dest = strip_dest(env.tuple);
      task->worker->transfer_queue.push(TransferItem{dest, std::move(env)});
      thread_hops.fetch_add(1, std::memory_order_relaxed);
      task->processing.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Hop 4: worker transfer thread serializes each tuple into its own frame
  /// and ships it to the destination worker's channel.
  void transfer_main(Worker* worker) {
    set_thread_name("storm-xfer-" + std::to_string(worker->index));
    ByteBuffer scratch;
    while (true) {
      auto item = worker->transfer_queue.pop();
      if (!item) break;
      Task* dest_task = tasks[item->dest_task].get();
      Worker* dest_worker = dest_task->worker;
      if (dest_worker == worker) {
        // Local task: still a thread handoff (transfer -> executor).
        dest_task->incoming.push(std::move(item->env));
        thread_hops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Remote: serialize this single tuple as one frame (no batching —
      // the per-message overhead the paper contrasts against).
      scratch.clear();
      scratch.write_u32(item->dest_task);
      scratch.write_u64(item->env.root);
      scratch.write_u64(item->env.id);
      item->env.tuple.serialize(scratch);
      ByteBuffer framed;
      FrameHeader h;
      h.link_id = static_cast<uint32_t>(worker->index);
      h.batch_count = 1;
      h.raw_size = static_cast<uint32_t>(scratch.size());
      encode_frame(h, scratch.contents(), framed);
      components[dest_task->component]->metrics.bytes_out.fetch_add(framed.size(),
                                                                   std::memory_order_relaxed);
      // Spin until the channel accepts: Storm blocks on the socket.
      auto& tx = worker->tx[dest_worker->index];
      for (;;) {
        SendStatus s = tx->try_send(framed.contents());
        if (s == SendStatus::kOk) break;
        if (s == SendStatus::kClosed || killed.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
      }
      bytes_shipped.fetch_add(framed.size(), std::memory_order_relaxed);
    }
  }

  /// Hop 1: worker receive thread demuxes frames to executor queues.
  void receive_main(Worker* worker) {
    set_thread_name("storm-recv-" + std::to_string(worker->index));
    std::vector<FrameDecoder> decoders(workers.size());
    while (!killed.load(std::memory_order_acquire)) {
      bool any = false;
      for (size_t w = 0; w < workers.size(); ++w) {
        if (!worker->rx[w]) continue;
        auto chunk = worker->rx[w]->try_receive();
        if (!chunk) continue;
        any = true;
        decoders[w].feed(*chunk, [&](const FrameHeader&, std::span<const uint8_t> payload) {
          ByteReader r(payload);
          uint32_t dest = r.read_u32();
          Envelope env;
          env.root = r.read_u64();
          env.id = r.read_u64();
          env.tuple.deserialize(r);
          tasks[dest]->incoming.push(std::move(env));
          thread_hops.fetch_add(1, std::memory_order_relaxed);
        });
      }
      if (!any) {
        // Poll-sleep: the receive thread parks briefly when idle.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        if (all_upstream_closed(worker)) return;
      }
    }
  }

  bool all_upstream_closed(Worker* worker) const {
    for (size_t w = 0; w < workers.size(); ++w) {
      if (worker->rx[w] && !worker->rx[w]->closed()) return false;
    }
    return true;
  }

  std::atomic<uint64_t> bytes_shipped{0};

  // --- lifecycle ------------------------------------------------------------------

  void shutdown_threads() {
    killed.store(true, std::memory_order_release);
    for (auto& t : tasks) {
      t->incoming.close();
      t->outgoing.close();
    }
    for (auto& w : workers) w->transfer_queue.close();
    for (auto& w : workers) {
      for (auto& tx : w->tx) {
        if (tx) tx->close();
      }
    }
    for (auto& t : tasks) {
      if (t->executor_thread.joinable()) t->executor_thread.join();
      if (t->send_thread.joinable()) t->send_thread.join();
    }
    for (auto& w : workers) {
      if (w->transfer_thread.joinable()) w->transfer_thread.join();
      if (w->receive_thread.joinable()) w->receive_thread.join();
    }
    acker_queue.close();
    if (acker_thread.joinable()) acker_thread.join();
  }
};

// --- StormTopology -----------------------------------------------------------------

StormTopology::~StormTopology() { kill(); }

void StormTopology::kill() {
  if (impl_ && !impl_->killed.load()) impl_->shutdown_threads();
}

bool StormTopology::wait_for_drain(std::chrono::nanoseconds timeout) {
  int64_t deadline = now_ns() + timeout.count();
  int stable = 0;
  while (now_ns() < deadline) {
    bool spouts_done = true;
    for (const auto& t : impl_->tasks) {
      if (t->spout && !t->spout_done.load(std::memory_order_acquire)) spouts_done = false;
    }
    bool queues_empty = true;
    for (const auto& t : impl_->tasks) {
      if (t->incoming.size() || t->outgoing.size() ||
          t->processing.load(std::memory_order_acquire)) {
        queues_empty = false;
        break;
      }
    }
    for (const auto& w : impl_->workers) {
      if (w->transfer_queue.size()) queues_empty = false;
    }
    if (impl_->config.acking_enabled) {
      if (impl_->acker_queue.size() != 0) queues_empty = false;
      for (const auto& t : impl_->tasks) {
        if (t->spout && t->spout_pending.load(std::memory_order_acquire) != 0)
          queues_empty = false;
      }
    }
    // Bytes in flight inside inter-worker channels are invisible to the
    // queue checks; compare shipped vs. consumed byte counters.
    for (const auto& w : impl_->workers) {
      for (size_t b = 0; b < impl_->workers.size(); ++b) {
        if (w->tx[b] &&
            w->tx[b]->bytes_sent() != impl_->workers[b]->rx[w->index]->bytes_received()) {
          queues_empty = false;
        }
      }
    }
    if (spouts_done && queues_empty) {
      // Require several consecutive quiescent observations so tuples
      // in-flight between queues are not missed.
      if (++stable >= 5) return true;
    } else {
      stable = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

StormMetricsSnapshot StormTopology::metrics() const {
  StormMetricsSnapshot s;
  for (const auto& cp : impl_->components) {
    const auto& c = *cp;
    StormMetricsSnapshot::Component out;
    out.id = c.decl.id;
    out.tuples_in = c.metrics.tuples_in.load(std::memory_order_relaxed);
    out.tuples_out = c.metrics.tuples_out.load(std::memory_order_relaxed);
    out.bytes_out = c.metrics.bytes_out.load(std::memory_order_relaxed);
    s.components.push_back(std::move(out));
  }
  s.wall_time_ns = now_ns() - impl_->start_ns;
  s.thread_hops = impl_->thread_hops.load(std::memory_order_relaxed);
  return s;
}

uint64_t StormTopology::sink_latency_p99_ns() const {
  uint64_t worst = 0;
  for (const auto& c : impl_->components) {
    if (c->is_sink) worst = std::max(worst, c->metrics.sink_latency.percentile(99));
  }
  return worst;
}

uint64_t StormTopology::tuples_completed() const {
  return impl_->trees_completed.load(std::memory_order_relaxed);
}

uint64_t StormTopology::tuples_pending() const {
  uint64_t pending = 0;
  for (const auto& t : impl_->tasks) {
    if (t->spout) pending += t->spout_pending.load(std::memory_order_acquire);
  }
  return pending;
}

uint64_t StormTopology::sink_latency_p50_ns() const {
  uint64_t worst = 0;
  for (const auto& c : impl_->components) {
    if (c->is_sink) worst = std::max(worst, c->metrics.sink_latency.percentile(50));
  }
  return worst;
}

// --- LocalCluster --------------------------------------------------------------------

LocalCluster::LocalCluster(StormConfig config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
}

std::shared_ptr<StormTopology> LocalCluster::submit(const TopologyBuilder& topology) {
  auto topo = std::shared_ptr<StormTopology>(new StormTopology());
  topo->impl_ = std::make_unique<StormTopology::Impl>();
  auto* impl = topo->impl_.get();
  impl->config = config_;
  impl->start_ns = now_ns();

  // Components.
  for (const auto& decl : topology.components()) {
    auto c = std::make_unique<StormTopology::Impl::Component>();
    c->decl = decl;
    impl->components.push_back(std::move(c));
  }
  // Sink detection: a component nobody subscribes to.
  for (auto& c : impl->components) {
    bool has_consumer = false;
    for (const auto& other : impl->components) {
      for (const auto& in : other->decl.inputs) {
        if (in.from == c->decl.id) has_consumer = true;
      }
    }
    c->is_sink = !has_consumer && !c->decl.is_spout;
  }

  // Workers and all-pairs channels.
  for (size_t w = 0; w < config_.workers; ++w) {
    auto worker = std::make_unique<StormTopology::Impl::Worker>();
    worker->index = w;
    worker->owner = impl;
    worker->tx.resize(config_.workers);
    worker->rx.resize(config_.workers);
    impl->workers.push_back(std::move(worker));
  }
  ChannelConfig ch;
  ch.capacity_bytes = config_.channel_capacity_bytes;
  ch.low_watermark_bytes = config_.channel_capacity_bytes / 4;
  for (size_t a = 0; a < config_.workers; ++a) {
    for (size_t b = 0; b < config_.workers; ++b) {
      if (a == b) continue;
      InprocPipe pipe = make_inproc_pipe(ch);
      impl->workers[a]->tx[b] = pipe.sender;
      impl->workers[b]->rx[a] = pipe.receiver;
    }
  }

  // Tasks, assigned round-robin over workers (Storm's even scheduler).
  size_t cursor = 0;
  for (size_t ci = 0; ci < impl->components.size(); ++ci) {
    auto& comp = *impl->components[ci];
    for (uint32_t i = 0; i < comp.decl.parallelism; ++i) {
      auto task = std::make_unique<StormTopology::Impl::Task>();
      task->task_id = static_cast<uint32_t>(impl->tasks.size());
      task->index_in_component = i;
      task->component = ci;
      task->worker = impl->workers[cursor++ % impl->workers.size()].get();
      task->id_rng = Xoshiro256(0x5EED0000 ^ (static_cast<uint64_t>(task->task_id) *
                                              0x9E3779B97F4A7C15ULL));
      if (comp.decl.is_spout) {
        task->spout = comp.decl.spout_factory();
      } else {
        task->bolt = comp.decl.bolt_factory();
      }
      comp.task_ids.push_back(task->task_id);
      task->worker->tasks.push_back(task.get());
      impl->tasks.push_back(std::move(task));
    }
  }

  // Subscriptions: for each bolt input, the upstream component gains a
  // subscription pointing at the bolt's tasks.
  for (auto& comp : impl->components) {
    for (const auto& in : comp->decl.inputs) {
      for (auto& up : impl->components) {
        if (up->decl.id == in.from) {
          Subscription sub;
          sub.grouping = in.grouping;
          sub.field_index = in.field_index;
          sub.dest_tasks = comp->task_ids;
          up->subs.push_back(std::move(sub));
        }
      }
    }
  }

  if (config_.acking_enabled) {
    impl->acker_thread = std::thread([impl] { impl->acker_main(); });
  }

  // Launch the four thread tiers.
  for (auto& w : impl->workers) {
    auto* worker = w.get();
    w->transfer_thread = std::thread([impl, worker] { impl->transfer_main(worker); });
    w->receive_thread = std::thread([impl, worker] { impl->receive_main(worker); });
  }
  for (auto& t : impl->tasks) {
    auto* task = t.get();
    t->executor_thread = std::thread([impl, task] { impl->executor_main(task); });
    t->send_thread = std::thread([impl, task] { impl->send_main(task); });
  }
  return topo;
}

}  // namespace neptune::storm
