#include "scenarios/pred_ops.hpp"

#include <stdexcept>

#include "neptune/window.hpp"
#include "scenarios/emit.hpp"

namespace neptune::scenarios {

DecisionTree DecisionTree::from_json(const JsonValue& doc) {
  DecisionTree tree;
  const JsonArray& nodes = doc.at("nodes").as_array();
  if (nodes.empty()) throw std::runtime_error("decision tree: empty node list");
  tree.nodes_.reserve(nodes.size());
  for (const JsonValue& n : nodes) {
    Node node;
    if (n.contains("label")) {
      node.label = static_cast<int32_t>(n.at("label").as_int());
    } else {
      node.field = static_cast<size_t>(n.at("field").as_int());
      node.threshold = n.at("threshold").as_number();
      node.left = static_cast<int32_t>(n.at("left").as_int());
      node.right = static_cast<int32_t>(n.at("right").as_int());
      // Children must point strictly forward in the array: that rules out
      // cycles and bounds every score() walk by node_count.
      int32_t self = static_cast<int32_t>(tree.nodes_.size());
      if (node.left <= self || node.right <= self ||
          node.left >= static_cast<int32_t>(nodes.size()) ||
          node.right >= static_cast<int32_t>(nodes.size()))
        throw std::runtime_error("decision tree: child index must point forward");
    }
    tree.nodes_.push_back(node);
  }
  return tree;
}

int32_t DecisionTree::score(const StreamPacket& packet) const {
  size_t i = 0;
  while (nodes_[i].left >= 0) {
    const Node& n = nodes_[i];
    double v = 0;
    if (n.field < packet.field_count()) {
      try {
        v = window::numeric_field(packet, n.field);
      } catch (const PacketFormatError&) {
        v = n.threshold;  // non-numeric feature: route left
      }
    } else {
      v = n.threshold;
    }
    i = static_cast<size_t>(v <= n.threshold ? n.left : n.right);
  }
  return nodes_[i].label;
}

DecisionTreeScorer::DecisionTreeScorer(DecisionTree model, DecisionTree reference)
    : model_(std::move(model)), reference_(std::move(reference)) {}

void DecisionTreeScorer::process(StreamPacket& packet, Emitter& out) {
  int32_t pred = model_.score(packet);
  int32_t ref = reference_.score(packet);
  ++scored_;
  if (pred != ref) ++disagreements_;
  StreamPacket scored = packet;
  scored.add_i32(pred);
  scored.add_i32(ref);
  scored.add_bool(pred == ref);
  emit_all(out, std::move(scored));
}

// Air schema: [ts_ms, station_id, pm25, pm10, ozone_ppb, temp_c] — the
// trees below classify severity 0/1/2 from pm25 (field 2) and ozone
// (field 4).
JsonValue default_air_model_json() {
  return JsonValue::parse(R"({"nodes": [
    {"field": 2, "threshold": 35.0, "left": 1, "right": 2},
    {"field": 4, "threshold": 70.0, "left": 3, "right": 4},
    {"field": 2, "threshold": 55.0, "left": 5, "right": 6},
    {"label": 0},
    {"label": 1},
    {"label": 1},
    {"label": 2}
  ]})");
}

JsonValue default_air_reference_json() {
  // Coarser single-split reference: agrees away from the pm25 boundary,
  // disagrees in the 35..55 band and wherever ozone drives the decision.
  return JsonValue::parse(R"({"nodes": [
    {"field": 2, "threshold": 45.0, "left": 1, "right": 2},
    {"label": 0},
    {"label": 2}
  ]})");
}

}  // namespace neptune::scenarios
