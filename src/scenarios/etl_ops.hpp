// ETL-pipeline operators (the RIoTBench ETL dataflow, PAPERS.md): parse raw
// device rows into typed packets, repair missing readings, drop corrupt
// ones, and annotate with reference metadata. All per-key state is
// deterministic given per-key in-order delivery, which the scenario
// topologies guarantee by routing with fields-hash partitioning from a
// single upstream instance — that's what makes golden digests possible
// downstream of these stages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "neptune/operators.hpp"
#include "neptune/packet.hpp"
#include "neptune/state.hpp"

namespace neptune::scenarios {

/// Parses a one-string-field CSV packet into typed fields per `schema`.
/// Malformed rows are dropped and counted — an ETL stage must survive dirty
/// ingest, not poison the pipeline.
class CsvParseProcessor final : public StreamProcessor {
 public:
  explicit CsvParseProcessor(Schema schema) : schema_(std::move(schema)) {}

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t parse_errors() const { return parse_errors_; }

 private:
  Schema schema_;
  uint64_t parse_errors_ = 0;
};

/// One plausibility rule: numeric field must land in [lo, hi].
struct RangeRule {
  size_t field = 0;
  double lo = 0;
  double hi = 0;
};

/// Drops packets violating any range rule (counted). The sentinel for
/// missing readings passes through untouched — repairing those is the
/// interpolator's job, so filter placement relative to it is flexible.
class RangeFilterProcessor final : public StreamProcessor {
 public:
  RangeFilterProcessor(std::vector<RangeRule> rules, double missing_sentinel);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<RangeRule> rules_;
  double sentinel_;
  uint64_t dropped_ = 0;
};

/// Repairs missing readings (value_field == sentinel) with the device's
/// last good value. A missing reading with no history yet is dropped
/// (counted) — there is nothing to interpolate from.
///
/// Checkpointable: the per-device last-good map *is* the operator's output
/// function, so a restart that loses it would repair post-restart gaps with
/// the wrong values (or drop them) and break golden digests.
class InterpolateProcessor final : public StreamProcessor, public Checkpointable {
 public:
  InterpolateProcessor(size_t value_field, size_t key_field, double missing_sentinel);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t repaired() const { return repaired_; }
  uint64_t dropped() const { return dropped_; }

  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  const size_t value_field_;
  const size_t key_field_;
  const double sentinel_;
  std::map<std::string, double> last_good_;
  uint64_t repaired_ = 0;
  uint64_t dropped_ = 0;
};

/// Static-reference-table join: appends the device's zone (a string field)
/// looked up by key. Unknown devices annotate as "zone-unknown" (counted) —
/// a real fleet always has devices the metadata lags behind.
class AnnotateProcessor final : public StreamProcessor {
 public:
  AnnotateProcessor(size_t key_field, std::map<std::string, std::string> table);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t misses() const { return misses_; }

 private:
  const size_t key_field_;
  std::map<std::string, std::string> table_;
  uint64_t misses_ = 0;
};

/// Deterministic zone table for a synthetic fleet: device ids built like the
/// trace generator's ("<prefix>-0000" ..) map round-robin onto `zones`
/// zones. The annotate stage of every scenario uses this as its reference
/// metadata.
std::map<std::string, std::string> make_zone_table(const std::string& prefix, uint32_t devices,
                                                   uint32_t zones);

}  // namespace neptune::scenarios
