// Seeded synthetic IoT device traces for the RIoTBench-style scenario suite
// (Shukla & Simmhan, PAPERS.md): three sensing domains the paper's target
// deployments actually look like —
//
//   taxi  — fleet GPS probes: position random walk, speed, occupancy, fare
//   grid  — smart-meter readings: diurnal household load, voltage wobble,
//           cumulative energy counter
//   air   — city air-quality stations: PM2.5/PM10/ozone with weather drift
//
// All generation is a pure function of (TraceSpec, seed): no wall clock, no
// global state. The same spec replays byte-identical value streams forever,
// which is what makes golden scenario tests (exact sink digests) possible.
// Realism knobs model what production IoT ingest actually does to a stream
// processor: diurnal rate ramps, periodic arrival bursts, Zipf-skewed device
// activity (hot keys), bounded timestamp jitter, and dirty data (missing /
// out-of-range readings) for the ETL stages to repair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "neptune/operators.hpp"
#include "neptune/packet.hpp"
#include "neptune/state.hpp"

namespace neptune::scenarios {

enum class TraceKind { kTaxi, kGrid, kAir };

const char* trace_kind_name(TraceKind k);
TraceKind trace_kind_from_name(const std::string& name);

/// Everything that determines the event stream. Event time is synthetic
/// (milliseconds from start_ms) and carried in data field 0; the packet
/// header's event_time_ns is left to the runtime's ingest stamp so sink
/// latency percentiles stay meaningful.
struct TraceSpec {
  TraceKind kind = TraceKind::kTaxi;
  uint32_t devices = 100;
  uint64_t events = 10'000;  ///< total packets the generator produces
  uint64_t seed = 1;

  // --- arrival process (event time) ----------------------------------------
  int64_t start_ms = 0;
  int64_t tick_ms = 100;          ///< arrival bucket granularity
  double events_per_tick = 32.0;  ///< base arrival rate per tick
  /// Rate swings base*(1 ± amplitude) sinusoidally over the period — the
  /// diurnal ramp, compressed so a test run spans several "days".
  double diurnal_amplitude = 0.5;
  int64_t diurnal_period_ms = 60'000;
  /// Every burst_every_ms, the rate multiplies by burst_factor for
  /// burst_duration_ms (0 disables) — flash-crowd arrivals.
  double burst_factor = 3.0;
  int64_t burst_every_ms = 20'000;
  int64_t burst_duration_ms = 2'000;
  /// Zipf exponent for device activity; 0 = uniform. s in [0.8, 1.4] is the
  /// usual IoT hot-key regime.
  double zipf_s = 1.1;
  /// Per-event timestamp jitter within [0, jitter_ms] — bounded disorder, so
  /// event-time windows >= tick_ms + jitter_ms never see late drops.
  int64_t jitter_ms = 0;

  // --- data quality (ETL fodder) -------------------------------------------
  /// Fraction of readings whose primary value is missing (kMissingValue
  /// sentinel) — repaired by InterpolateProcessor.
  double missing_fraction = 0.0;
  /// Fraction of readings whose primary value is corrupt (far out of the
  /// plausible range) — dropped by RangeFilterProcessor.
  double corrupt_fraction = 0.0;

  /// Emit each reading as one CSV string field instead of typed fields, so
  /// an ETL pipeline pays a real parse stage.
  bool csv_payload = false;
};

/// Parse a spec from a scenario file's "trace" object. Unknown kinds and
/// out-of-range values throw JsonError.
TraceSpec trace_from_json(const JsonValue& doc);

/// Missing-reading sentinel in the primary value field.
inline constexpr double kMissingValue = -1.0;

/// Typed layout of one reading, by kind. Field 0 is always the event
/// timestamp (i64 ms), field 1 the device id (string). The "primary value"
/// (speed / power / pm25) is the field the quality knobs dirty.
Schema trace_schema(TraceKind kind);
/// Index of the primary value field within trace_schema(kind).
size_t trace_primary_field(TraceKind kind);

/// Zipf(s) sampler over ranks [0, n) via inverse-CDF binary search.
/// Deterministic given the caller's RNG; rank 0 is the hottest device.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s);
  uint32_t sample(Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Arrival-rate multiplier (diurnal * burst) at event time t_ms.
double rate_multiplier(const TraceSpec& spec, int64_t t_ms);

/// Deterministic event iterator: packets come out in nondecreasing tick
/// order (timestamps may be jittered within a tick). One generator produces
/// the whole stream; parallel sources each run their own generator and take
/// an index-striped share.
class TraceGenerator {
 public:
  explicit TraceGenerator(const TraceSpec& spec);

  /// Fill `out` (cleared first) with the next reading. Returns false once
  /// spec.events have been produced.
  bool next(StreamPacket& out);

  uint64_t emitted() const { return emitted_; }

 private:
  void fill_reading(StreamPacket& out, uint32_t device, int64_t ts_ms);
  void fill_taxi(StreamPacket& out, uint32_t device, int64_t ts_ms);
  void fill_grid(StreamPacket& out, uint32_t device, int64_t ts_ms);
  void fill_air(StreamPacket& out, uint32_t device, int64_t ts_ms);
  double apply_quality(double value, double plausible_hi);
  void encode_csv(StreamPacket& inout);

  TraceSpec spec_;
  Xoshiro256 rng_;
  ZipfSampler zipf_;
  uint64_t emitted_ = 0;
  int64_t tick_ = 0;        ///< current tick index
  double carry_ = 0;        ///< fractional events carried across ticks
  uint64_t due_this_tick_ = 0;
  uint64_t done_this_tick_ = 0;

  // per-device state, so consecutive readings of one device are correlated
  // (low-entropy streams, like real telemetry)
  struct DeviceState {
    double a = 0, b = 0, c = 0, d = 0;
  };
  std::vector<DeviceState> dev_;
  std::vector<std::string> ids_;
};

/// Stream source over a TraceGenerator. Parallel instances stripe the event
/// index space (event i belongs to instance i % parallelism), so the union
/// across the group is exactly the spec's stream and each instance emits an
/// in-order subsequence. Checkpointable: replay position only.
class TraceSource final : public StreamSource, public Checkpointable {
 public:
  explicit TraceSource(TraceSpec spec);

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

  uint64_t emitted() const { return emitted_; }

  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  TraceSpec spec_;
  std::unique_ptr<TraceGenerator> gen_;
  uint32_t instance_ = 0;
  uint32_t parallelism_ = 1;
  uint64_t cursor_ = 0;    ///< next global event index to generate
  uint64_t emitted_ = 0;   ///< events this instance has emitted
  uint64_t resume_from_ = 0;
};

/// Replays a fixed packet vector (instance-striped like TraceSource). The
/// property/DST tests use it to drive hand-built event sequences through
/// real topologies deterministically.
class ReplaySource final : public StreamSource, public Checkpointable {
 public:
  explicit ReplaySource(std::shared_ptr<const std::vector<StreamPacket>> packets);

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  std::shared_ptr<const std::vector<StreamPacket>> packets_;
  uint32_t instance_ = 0;
  uint32_t parallelism_ = 1;
  uint64_t cursor_ = 0;
};

}  // namespace neptune::scenarios
