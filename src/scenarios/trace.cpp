#include "scenarios/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "scenarios/emit.hpp"

namespace neptune::scenarios {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kTaxi: return "taxi";
    case TraceKind::kGrid: return "grid";
    case TraceKind::kAir: return "air";
  }
  return "?";
}

TraceKind trace_kind_from_name(const std::string& name) {
  if (name == "taxi") return TraceKind::kTaxi;
  if (name == "grid") return TraceKind::kGrid;
  if (name == "air") return TraceKind::kAir;
  throw JsonError("unknown trace kind '" + name + "' (expected taxi, grid or air)");
}

namespace {

double fraction_field(const JsonValue& doc, const char* key, double fallback) {
  double f = doc.number_or(key, fallback);
  if (!(f >= 0.0) || f > 1.0) throw JsonError(std::string(key) + " must be in [0, 1]");
  return f;
}

int64_t pos_int_field(const JsonValue& doc, const char* key, int64_t fallback, int64_t lo = 0) {
  double d = doc.number_or(key, static_cast<double>(fallback));
  if (!(d >= static_cast<double>(lo)) || d > 1e15)
    throw JsonError(std::string(key) + " out of range");
  return static_cast<int64_t>(d);
}

}  // namespace

TraceSpec trace_from_json(const JsonValue& doc) {
  TraceSpec s;
  s.kind = trace_kind_from_name(doc.string_or("kind", "taxi"));
  s.devices = static_cast<uint32_t>(pos_int_field(doc, "devices", s.devices, 1));
  s.events = static_cast<uint64_t>(pos_int_field(doc, "events", static_cast<int64_t>(s.events), 1));
  s.seed = static_cast<uint64_t>(pos_int_field(doc, "seed", static_cast<int64_t>(s.seed)));
  s.start_ms = pos_int_field(doc, "start_ms", s.start_ms);
  s.tick_ms = pos_int_field(doc, "tick_ms", s.tick_ms, 1);
  s.events_per_tick = doc.number_or("events_per_tick", s.events_per_tick);
  if (!(s.events_per_tick > 0)) throw JsonError("events_per_tick must be positive");
  s.diurnal_amplitude = fraction_field(doc, "diurnal_amplitude", s.diurnal_amplitude);
  s.diurnal_period_ms = pos_int_field(doc, "diurnal_period_ms", s.diurnal_period_ms, 1);
  s.burst_factor = doc.number_or("burst_factor", s.burst_factor);
  if (!(s.burst_factor >= 1.0)) throw JsonError("burst_factor must be >= 1");
  s.burst_every_ms = pos_int_field(doc, "burst_every_ms", s.burst_every_ms);
  s.burst_duration_ms = pos_int_field(doc, "burst_duration_ms", s.burst_duration_ms);
  s.zipf_s = doc.number_or("zipf_s", s.zipf_s);
  if (!(s.zipf_s >= 0.0) || s.zipf_s > 4.0) throw JsonError("zipf_s must be in [0, 4]");
  s.jitter_ms = pos_int_field(doc, "jitter_ms", s.jitter_ms);
  s.missing_fraction = fraction_field(doc, "missing_fraction", s.missing_fraction);
  s.corrupt_fraction = fraction_field(doc, "corrupt_fraction", s.corrupt_fraction);
  s.csv_payload = doc.bool_or("csv_payload", doc.bool_or("csv", s.csv_payload));
  return s;
}

Schema trace_schema(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTaxi:
      return Schema{{"ts_ms", FieldType::kI64},   {"taxi_id", FieldType::kString},
                    {"lat", FieldType::kF64},     {"lon", FieldType::kF64},
                    {"speed_kmh", FieldType::kF64}, {"occupied", FieldType::kBool},
                    {"fare_cents", FieldType::kI32}};
    case TraceKind::kGrid:
      return Schema{{"ts_ms", FieldType::kI64},     {"meter_id", FieldType::kString},
                    {"power_kw", FieldType::kF64},  {"voltage", FieldType::kF64},
                    {"cum_kwh", FieldType::kF64}};
    case TraceKind::kAir:
      return Schema{{"ts_ms", FieldType::kI64},  {"station_id", FieldType::kString},
                    {"pm25", FieldType::kF64},   {"pm10", FieldType::kF64},
                    {"ozone_ppb", FieldType::kF64}, {"temp_c", FieldType::kF64}};
  }
  throw std::invalid_argument("bad TraceKind");
}

size_t trace_primary_field(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTaxi: return 4;  // speed_kmh
    case TraceKind::kGrid: return 2;  // power_kw
    case TraceKind::kAir: return 2;   // pm25
  }
  return 2;
}

// --- ZipfSampler -----------------------------------------------------------

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  cdf_.resize(n == 0 ? 1 : n);
  double acc = 0;
  for (uint32_t r = 0; r < cdf_.size(); ++r) {
    acc += s == 0.0 ? 1.0 : std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

uint32_t ZipfSampler::sample(Xoshiro256& rng) const {
  double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

// --- rate profile ----------------------------------------------------------

double rate_multiplier(const TraceSpec& spec, int64_t t_ms) {
  constexpr double kPi = 3.14159265358979323846;
  double m = 1.0;
  if (spec.diurnal_amplitude > 0) {
    double phase = static_cast<double>(t_ms % spec.diurnal_period_ms) /
                   static_cast<double>(spec.diurnal_period_ms);
    m *= 1.0 + spec.diurnal_amplitude * std::sin(2.0 * kPi * phase);
  }
  if (spec.burst_every_ms > 0 && spec.burst_duration_ms > 0 && spec.burst_factor > 1.0) {
    if (t_ms % spec.burst_every_ms < spec.burst_duration_ms) m *= spec.burst_factor;
  }
  return m;
}

// --- TraceGenerator --------------------------------------------------------

TraceGenerator::TraceGenerator(const TraceSpec& spec)
    : spec_(spec), rng_(spec.seed), zipf_(spec.devices, spec.zipf_s) {
  dev_.resize(spec_.devices);
  ids_.reserve(spec_.devices);
  const char* prefix = spec_.kind == TraceKind::kTaxi  ? "taxi"
                       : spec_.kind == TraceKind::kGrid ? "meter"
                                                        : "station";
  char buf[32];
  for (uint32_t i = 0; i < spec_.devices; ++i) {
    std::snprintf(buf, sizeof buf, "%s-%04u", prefix, i);
    ids_.emplace_back(buf);
    DeviceState& d = dev_[i];
    switch (spec_.kind) {
      case TraceKind::kTaxi:
        d.a = 40.0 + rng_.next_range(0.0, 0.4);    // lat
        d.b = -74.2 + rng_.next_range(0.0, 0.4);   // lon
        d.c = rng_.next_range(10.0, 60.0);         // speed
        d.d = 0;                                   // fare accumulator
        break;
      case TraceKind::kGrid:
        d.a = rng_.next_range(0.2, 2.0);   // baseline household load, kW
        d.b = 230.0 + rng_.next_range(-2.0, 2.0);  // voltage
        d.c = rng_.next_range(0.0, 100.0);         // cumulative kWh
        break;
      case TraceKind::kAir:
        d.a = rng_.next_range(5.0, 35.0);   // pm2.5 baseline
        d.b = rng_.next_range(10.0, 60.0);  // pm10 baseline
        d.c = rng_.next_range(10.0, 50.0);  // ozone baseline
        d.d = rng_.next_range(-5.0, 25.0);  // temperature
        break;
    }
  }
}

double TraceGenerator::apply_quality(double value, double plausible_hi) {
  double u = rng_.next_double();
  if (u < spec_.missing_fraction) return kMissingValue;
  if (u < spec_.missing_fraction + spec_.corrupt_fraction)
    // Far out of range: a stuck ADC / unit bug, the RangeFilter's prey.
    return plausible_hi * rng_.next_range(10.0, 100.0);
  return value;
}

void TraceGenerator::fill_taxi(StreamPacket& out, uint32_t device, int64_t ts_ms) {
  DeviceState& d = dev_[device];
  d.a += rng_.next_range(-0.0005, 0.0005);
  d.b += rng_.next_range(-0.0005, 0.0005);
  d.c = std::clamp(d.c + rng_.next_range(-8.0, 8.0), 0.0, 110.0);
  bool occupied = rng_.next_bool(0.6);
  if (occupied) d.d += d.c * 0.02;
  out.add_i64(ts_ms);
  out.add_string(ids_[device]);
  out.add_f64(d.a);
  out.add_f64(d.b);
  out.add_f64(apply_quality(d.c, 110.0));
  out.add_bool(occupied);
  out.add_i32(static_cast<int32_t>(d.d));
}

void TraceGenerator::fill_grid(StreamPacket& out, uint32_t device, int64_t ts_ms) {
  DeviceState& d = dev_[device];
  // Demand follows the same diurnal profile as arrivals plus noise.
  double load = d.a * rate_multiplier(spec_, ts_ms) + rng_.next_range(0.0, 0.3);
  d.b = std::clamp(d.b + rng_.next_range(-0.2, 0.2), 220.0, 240.0);
  d.c += load * static_cast<double>(spec_.tick_ms) / 3'600'000.0;
  out.add_i64(ts_ms);
  out.add_string(ids_[device]);
  out.add_f64(apply_quality(load, 20.0));
  out.add_f64(d.b);
  out.add_f64(d.c);
}

void TraceGenerator::fill_air(StreamPacket& out, uint32_t device, int64_t ts_ms) {
  DeviceState& d = dev_[device];
  d.a = std::clamp(d.a + rng_.next_range(-1.5, 1.5), 0.0, 400.0);
  d.b = std::clamp(d.b + rng_.next_range(-2.0, 2.0), 0.0, 600.0);
  d.c = std::clamp(d.c + rng_.next_range(-1.0, 1.0), 0.0, 200.0);
  d.d += rng_.next_range(-0.1, 0.1);
  out.add_i64(ts_ms);
  out.add_string(ids_[device]);
  out.add_f64(apply_quality(d.a, 400.0));
  out.add_f64(d.b);
  out.add_f64(d.c);
  out.add_f64(d.d);
}

void TraceGenerator::fill_reading(StreamPacket& out, uint32_t device, int64_t ts_ms) {
  switch (spec_.kind) {
    case TraceKind::kTaxi: fill_taxi(out, device, ts_ms); break;
    case TraceKind::kGrid: fill_grid(out, device, ts_ms); break;
    case TraceKind::kAir: fill_air(out, device, ts_ms); break;
  }
}

void TraceGenerator::encode_csv(StreamPacket& inout) {
  std::string row;
  row.reserve(96);
  char buf[48];
  for (size_t i = 0; i < inout.field_count(); ++i) {
    if (i > 0) row.push_back(',');
    const Value& v = inout.field(i);
    switch (value_type(v)) {
      case FieldType::kI32:
        std::snprintf(buf, sizeof buf, "%d", std::get<int32_t>(v));
        row += buf;
        break;
      case FieldType::kI64:
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(std::get<int64_t>(v)));
        row += buf;
        break;
      case FieldType::kF64:
        std::snprintf(buf, sizeof buf, "%.4f", std::get<double>(v));
        row += buf;
        break;
      case FieldType::kBool: row += std::get<bool>(v) ? '1' : '0'; break;
      case FieldType::kString: row += std::get<std::string>(v); break;
      default: break;  // no f32/bytes fields in trace schemas
    }
  }
  inout.clear();
  inout.add_string(std::move(row));
}

bool TraceGenerator::next(StreamPacket& out) {
  if (emitted_ >= spec_.events) return false;
  while (done_this_tick_ >= due_this_tick_) {
    // Advance to the next tick with arrivals due. The deterministic
    // fractional carry turns the continuous rate profile into integer
    // per-tick counts with no long-run rounding bias.
    if (done_this_tick_ > 0 || due_this_tick_ > 0) ++tick_;
    int64_t t = spec_.start_ms + tick_ * spec_.tick_ms;
    carry_ += spec_.events_per_tick * rate_multiplier(spec_, t);
    due_this_tick_ = static_cast<uint64_t>(carry_);
    carry_ -= static_cast<double>(due_this_tick_);
    done_this_tick_ = 0;
    if (due_this_tick_ == 0 && tick_ > static_cast<int64_t>(spec_.events) * 4 + 16) {
      // Degenerate spec (rate rounds to zero forever); force one event per
      // tick rather than spinning.
      due_this_tick_ = 1;
    }
  }
  ++done_this_tick_;
  ++emitted_;

  int64_t ts = spec_.start_ms + tick_ * spec_.tick_ms;
  if (spec_.jitter_ms > 0)
    ts += static_cast<int64_t>(rng_.next_below(static_cast<uint64_t>(spec_.jitter_ms) + 1));
  uint32_t device = zipf_.sample(rng_);

  out.clear();
  fill_reading(out, device, ts);
  if (spec_.csv_payload) encode_csv(out);
  return true;
}

// --- TraceSource -----------------------------------------------------------

TraceSource::TraceSource(TraceSpec spec) : spec_(spec) {}

void TraceSource::open(uint32_t instance, uint32_t parallelism) {
  instance_ = instance;
  parallelism_ = parallelism == 0 ? 1 : parallelism;
  gen_ = std::make_unique<TraceGenerator>(spec_);
  cursor_ = 0;
}

bool TraceSource::next(Emitter& out, size_t budget) {
  if (!gen_) open(0, 1);
  StreamPacket p;
  size_t produced = 0;
  while (produced < budget) {
    if (!gen_->next(p)) return false;
    uint64_t index = cursor_++;
    if (index % parallelism_ != instance_) continue;
    if (emitted_ < resume_from_) {
      // restored from a checkpoint: regenerate and skip already-delivered
      // events so recovery neither loses nor duplicates
      ++emitted_;
      continue;
    }
    ++emitted_;
    ++produced;
    if (emit_all(out, std::move(p)) == EmitStatus::kBackpressured) break;
    p = StreamPacket();
  }
  return true;
}

void TraceSource::snapshot_state(ByteBuffer& out) const { out.write_varint(emitted_); }

void TraceSource::restore_state(ByteReader& in) {
  resume_from_ = in.read_varint();
  emitted_ = 0;
  gen_.reset();  // re-open regenerates from the start and skips
  cursor_ = 0;
}

// --- ReplaySource ----------------------------------------------------------

ReplaySource::ReplaySource(std::shared_ptr<const std::vector<StreamPacket>> packets)
    : packets_(std::move(packets)) {}

void ReplaySource::open(uint32_t instance, uint32_t parallelism) {
  instance_ = instance;
  parallelism_ = parallelism == 0 ? 1 : parallelism;
  cursor_ = 0;
}

bool ReplaySource::next(Emitter& out, size_t budget) {
  size_t produced = 0;
  while (produced < budget) {
    if (cursor_ >= packets_->size()) return false;
    uint64_t index = cursor_++;
    if (index % parallelism_ != instance_) continue;
    StreamPacket copy = (*packets_)[index];
    ++produced;
    if (emit_all(out, std::move(copy)) == EmitStatus::kBackpressured) break;
  }
  return cursor_ < packets_->size();
}

void ReplaySource::snapshot_state(ByteBuffer& out) const { out.write_varint(cursor_); }

void ReplaySource::restore_state(ByteReader& in) { cursor_ = in.read_varint(); }

}  // namespace neptune::scenarios
