#pragma once

#include "neptune/operators.hpp"
#include "neptune/packet.hpp"

namespace neptune::scenarios {

/// Broadcast a packet to every output link (copy to links 1.., move to 0).
/// The scenario sources and the scorer use this so a fan-out declared in
/// the topology JSON ("src" -> two aggregators) behaves as a reader would
/// expect: each downstream branch sees the whole stream.
inline EmitStatus emit_all(Emitter& out, StreamPacket&& packet) {
  EmitStatus status = EmitStatus::kOk;
  for (size_t link = 1; link < out.output_link_count(); ++link) {
    StreamPacket copy = packet;
    if (out.emit(link, std::move(copy)) == EmitStatus::kBackpressured)
      status = EmitStatus::kBackpressured;
  }
  if (out.emit(0, std::move(packet)) == EmitStatus::kBackpressured)
    status = EmitStatus::kBackpressured;
  return status;
}

}  // namespace neptune::scenarios
