// Scenario = trace spec + JSON topology + expected sink digests, in one
// file. The same scenario runs three ways — golden correctness test (fixed
// seed, exact digests), bench (throughput + latency percentiles), CLI tool —
// and over three transports (single-resource fast lane, cross-resource
// inproc channels, loopback TCP). The digests must agree everywhere: that IS
// the test.
//
// Scenario file shape (docs/TESTING.md has the full reference):
// {
//   "name": "etl_taxi",
//   "trace": { "kind": "taxi", "devices": 50, "events": 20000, ... },
//   "topology": { "operators": [...], "links": [...] },
//   "expect": { "sinks": { "sink": { "packets": 19000,
//                                    "digest": "n19000-s...-x..." } } }
// }
//
// Operator entries carry their per-operator config inline (extra keys are
// ignored by the core descriptor parser); build_scenario_graph() pre-binds
// each entry's config into a per-operator factory registered under a
// synthesized "type@id" name, then hands the rewritten descriptor to
// graph_from_json. The type vocabulary:
//
//   trace-source   the scenario's TraceSource (golden runs pin parallelism 1)
//   csv-parse      CsvParseProcessor over trace_schema(kind)
//   interpolate    InterpolateProcessor    {"value_field":., "key_field":.}
//   range-filter   RangeFilterProcessor    {"rules":[{"field","lo","hi"}]}
//   annotate       AnnotateProcessor       {"zones": 8}
//   tumbling-agg   window::TumblingAggregator {"window_ms","value_field","key_field"}
//   sliding-agg    window::SlidingAggregator  {"window_ms","value_field"}
//   count-window   window::CountWindowAggregator {"count","value_field","key_field"}
//   dtree-score    DecisionTreeScorer      {"model":{...},"reference":{...}}
//   digest-sink    DigestSink into the scenario's per-sink accumulator
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "common/json.hpp"
#include "neptune/json_topology.hpp"
#include "neptune/metrics.hpp"
#include "neptune/runtime.hpp"
#include "scenarios/digest.hpp"
#include "scenarios/trace.hpp"

namespace neptune::scenarios {

/// What a scenario expects of one sink after a full golden run.
struct SinkExpect {
  uint64_t packets = 0;
  std::string digest;
};

struct ScenarioSpec {
  std::string name;
  TraceSpec trace;
  JsonValue topology;  ///< the core descriptor doc (operators/links/config)
  std::map<std::string, SinkExpect> expect;  ///< sink op id -> expectation
};

/// Parse a scenario document. Throws JsonError on malformed input.
ScenarioSpec scenario_from_json(const JsonValue& doc);

/// Read + parse a scenario file. Throws std::runtime_error when unreadable.
ScenarioSpec load_scenario(const std::string& path);

/// How to deploy the scenario.
enum class Transport {
  kFastlane,  ///< one resource: every edge takes the same-resource SPSC lane
  kInproc,    ///< two resources, cross-resource edges on inproc channels
  kTcp,       ///< two resources, cross-resource edges on loopback TCP
};
const char* transport_name(Transport t);

struct RunOptions {
  Transport transport = Transport::kInproc;
  /// > 0 caps the trace's event count (bench --short); 0 keeps the spec's.
  uint64_t events_override = 0;
  /// Worker threads per resource (0 = library default).
  size_t worker_threads = 0;
  std::chrono::seconds timeout{180};
};

/// Per-sink observed outcome.
struct SinkResult {
  uint64_t packets = 0;
  std::string digest;
};

struct ScenarioResult {
  std::map<std::string, SinkResult> sinks;
  JobMetricsSnapshot metrics;  ///< full per-operator counters + latency
  double seconds = 0;          ///< wall-clock job time
  uint64_t events = 0;         ///< trace events this run generated
  bool timed_out = false;
  std::string failure;         ///< permanent-failure reason, empty if none

  /// Digest mismatch / missing sink / timeout check against `spec.expect`.
  /// Returns an empty string when everything matches.
  std::string check(const ScenarioSpec& spec) const;
};

/// Digest accumulators for one run, keyed by sink operator id. A fresh
/// context is created per run; accumulators are shared with the sink
/// instances so results survive job teardown.
struct ScenarioContext {
  std::map<std::string, std::shared_ptr<DigestAccumulator>> sinks;
};

/// Build the graph for one run: binds per-operator configs, registers
/// "type@id" factories, rewrites the descriptor and defers to
/// graph_from_json. `fastlane` pins every operator to resource 0.
StreamGraph build_scenario_graph(const ScenarioSpec& spec, const TraceSpec& trace,
                                 ScenarioContext& ctx, bool fastlane);

/// Deploy and drain the scenario on a fresh Runtime. Throws on graph or
/// runtime errors; timeouts are reported via ScenarioResult::timed_out.
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts);

}  // namespace neptune::scenarios
