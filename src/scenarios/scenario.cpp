#include "scenarios/scenario.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "neptune/window.hpp"
#include "scenarios/etl_ops.hpp"
#include "scenarios/pred_ops.hpp"

namespace neptune::scenarios {

namespace {

const char* device_prefix(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTaxi: return "taxi";
    case TraceKind::kGrid: return "meter";
    case TraceKind::kAir: return "station";
  }
  return "device";
}

window::WindowConfig window_config_of(const JsonValue& op, const TraceSpec& trace) {
  window::WindowConfig w;
  w.window_ms = static_cast<int64_t>(op.number_or("window_ms", 1000));
  w.time_field = static_cast<size_t>(op.number_or("time_field", 0));
  w.value_field =
      static_cast<size_t>(op.number_or("value_field", double(trace_primary_field(trace.kind))));
  w.key_field = static_cast<int>(op.number_or("key_field", -1));
  return w;
}

}  // namespace

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kFastlane: return "fastlane";
    case Transport::kInproc: return "inproc";
    case Transport::kTcp: return "tcp";
  }
  return "?";
}

ScenarioSpec scenario_from_json(const JsonValue& doc) {
  ScenarioSpec spec;
  spec.name = doc.at("name").as_string();
  spec.trace = trace_from_json(doc.at("trace"));
  spec.topology = doc.at("topology");
  if (doc.contains("expect")) {
    for (const auto& [id, e] : doc.at("expect").at("sinks").as_object()) {
      SinkExpect x;
      x.packets = static_cast<uint64_t>(e.number_or("packets", 0));
      x.digest = e.string_or("digest", "");
      spec.expect.emplace(id, std::move(x));
    }
  }
  return spec;
}

ScenarioSpec load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return scenario_from_json(JsonValue::parse(buf.str()));
}

StreamGraph build_scenario_graph(const ScenarioSpec& spec, const TraceSpec& trace,
                                 ScenarioContext& ctx, bool fastlane) {
  JsonValue doc = spec.topology;
  if (!doc.contains("name")) doc.as_object()["name"] = JsonValue(spec.name);

  OperatorRegistry registry;
  for (JsonValue& entry : doc.as_object().at("operators").as_array()) {
    const std::string id = entry.at("id").as_string();
    const std::string type = entry.at("type").as_string();
    const std::string bound = type + "@" + id;

    if (type == "trace-source") {
      registry.register_source(bound,
                               [trace]() { return std::make_unique<TraceSource>(trace); });
    } else if (type == "csv-parse") {
      Schema schema = trace_schema(trace.kind);
      registry.register_processor(
          bound, [schema]() { return std::make_unique<CsvParseProcessor>(schema); });
    } else if (type == "interpolate") {
      size_t value_field =
          static_cast<size_t>(entry.number_or("value_field", double(trace_primary_field(trace.kind))));
      size_t key_field = static_cast<size_t>(entry.number_or("key_field", 1));
      registry.register_processor(bound, [value_field, key_field]() {
        return std::make_unique<InterpolateProcessor>(value_field, key_field, kMissingValue);
      });
    } else if (type == "range-filter") {
      std::vector<RangeRule> rules;
      if (entry.contains("rules")) {
        for (const JsonValue& r : entry.at("rules").as_array()) {
          RangeRule rule;
          rule.field = static_cast<size_t>(r.at("field").as_int());
          rule.lo = r.at("lo").as_number();
          rule.hi = r.at("hi").as_number();
          rules.push_back(rule);
        }
      }
      registry.register_processor(bound, [rules]() {
        return std::make_unique<RangeFilterProcessor>(rules, kMissingValue);
      });
    } else if (type == "annotate") {
      size_t key_field = static_cast<size_t>(entry.number_or("key_field", 1));
      uint32_t zones = static_cast<uint32_t>(entry.number_or("zones", 8));
      auto table = make_zone_table(device_prefix(trace.kind), trace.devices, zones);
      registry.register_processor(bound, [key_field, table]() {
        return std::make_unique<AnnotateProcessor>(key_field, table);
      });
    } else if (type == "tumbling-agg") {
      window::WindowConfig w = window_config_of(entry, trace);
      registry.register_processor(
          bound, [w]() { return std::make_unique<window::TumblingAggregator>(w); });
    } else if (type == "sliding-agg") {
      window::WindowConfig w = window_config_of(entry, trace);
      registry.register_processor(
          bound, [w]() { return std::make_unique<window::SlidingAggregator>(w); });
    } else if (type == "count-window") {
      uint64_t count = static_cast<uint64_t>(entry.number_or("count", 100));
      size_t value_field =
          static_cast<size_t>(entry.number_or("value_field", double(trace_primary_field(trace.kind))));
      int key_field = static_cast<int>(entry.number_or("key_field", -1));
      registry.register_processor(bound, [count, value_field, key_field]() {
        return std::make_unique<window::CountWindowAggregator>(count, value_field, key_field);
      });
    } else if (type == "dtree-score") {
      DecisionTree model = DecisionTree::from_json(
          entry.contains("model") ? entry.at("model") : default_air_model_json());
      DecisionTree reference = DecisionTree::from_json(
          entry.contains("reference") ? entry.at("reference") : default_air_reference_json());
      registry.register_processor(bound, [model, reference]() {
        return std::make_unique<DecisionTreeScorer>(model, reference);
      });
    } else if (type == "digest-sink") {
      auto acc = std::make_shared<DigestAccumulator>();
      ctx.sinks[id] = acc;
      registry.register_processor(bound, [acc]() { return std::make_unique<DigestSink>(acc); });
    } else {
      throw JsonError("scenario: unknown operator type '" + type + "' (operator '" + id + "')");
    }

    entry.as_object()["type"] = JsonValue(bound);
    if (fastlane) entry.as_object()["resource"] = JsonValue(0);
  }

  return graph_from_json(doc, registry);
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts) {
  TraceSpec trace = spec.trace;
  if (opts.events_override > 0) trace.events = opts.events_override;

  const bool fastlane = opts.transport == Transport::kFastlane;
  ScenarioContext ctx;
  StreamGraph graph = build_scenario_graph(spec, trace, ctx, fastlane);

  granules::ResourceConfig base;
  base.worker_threads = opts.worker_threads;
  RuntimeOptions ro;
  ro.cross_resource_transport =
      opts.transport == Transport::kTcp ? EdgeTransport::kTcp : EdgeTransport::kInproc;

  Runtime runtime(fastlane ? 1 : 2, base, ro);
  auto job = runtime.submit(graph);

  auto t0 = std::chrono::steady_clock::now();
  job->start();
  ScenarioResult result;
  if (!job->wait(std::chrono::duration_cast<std::chrono::nanoseconds>(opts.timeout))) {
    result.timed_out = true;
    job->stop();
  }
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.failure = job->failure_reason();
  result.metrics = job->metrics();
  result.events = trace.events;
  for (const auto& [id, acc] : ctx.sinks)
    result.sinks.emplace(id, SinkResult{acc->count(), acc->digest()});
  runtime.shutdown();
  return result;
}

std::string ScenarioResult::check(const ScenarioSpec& spec) const {
  if (timed_out) return "scenario '" + spec.name + "' timed out";
  if (!failure.empty()) return "scenario '" + spec.name + "' failed: " + failure;
  uint64_t violations = metrics.total(&OperatorMetricsSnapshot::seq_violations);
  if (violations != 0)
    return "scenario '" + spec.name + "': " + std::to_string(violations) + " seq violations";
  for (const auto& [id, want] : spec.expect) {
    auto it = sinks.find(id);
    if (it == sinks.end()) return "scenario '" + spec.name + "': no sink '" + id + "'";
    if (want.packets != 0 && it->second.packets != want.packets)
      return "scenario '" + spec.name + "' sink '" + id + "': got " +
             std::to_string(it->second.packets) + " packets, want " +
             std::to_string(want.packets);
    if (!want.digest.empty() && it->second.digest != want.digest)
      return "scenario '" + spec.name + "' sink '" + id + "': digest " + it->second.digest +
             " != expected " + want.digest;
  }
  return "";
}

}  // namespace neptune::scenarios
