// Predictive-analytics operators (the RIoTBench PRED dataflow, PAPERS.md):
// score each reading against a decision-tree model and compare against a
// reference model, emitting per-packet agreement so a downstream window can
// aggregate model-drift statistics. Trees are loaded from the scenario's
// JSON descriptor — models are data, not code, so scenario files can swap
// them without recompiling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "neptune/operators.hpp"
#include "neptune/packet.hpp"

namespace neptune::scenarios {

/// Binary decision tree over numeric packet fields. Nodes are stored in a
/// flat array; internal nodes route on `field <= threshold` (left) else
/// right, leaves carry an i32 class label.
class DecisionTree {
 public:
  struct Node {
    size_t field = 0;    ///< feature field index (internal nodes)
    double threshold = 0;
    int32_t left = -1;   ///< node index, or -1 when leaf
    int32_t right = -1;
    int32_t label = 0;   ///< class label (leaves)
  };

  /// Parses `{"nodes": [{"field":..,"threshold":..,"left":..,"right":..} |
  /// {"label":..}, ...]}`; node 0 is the root. Throws std::runtime_error on
  /// malformed trees (bad child index, cycle-prone layout, empty).
  static DecisionTree from_json(const JsonValue& doc);

  /// Classifies a packet; non-numeric/missing features route left, so a
  /// malformed packet still yields a deterministic label.
  int32_t score(const StreamPacket& packet) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  std::vector<Node> nodes_;
};

/// Scores each packet with a primary and a reference model and appends
/// three fields: pred (i32), ref_pred (i32), agree (bool). The agreement
/// stream is what PRED scenarios window downstream.
class DecisionTreeScorer final : public StreamProcessor {
 public:
  DecisionTreeScorer(DecisionTree model, DecisionTree reference);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t scored() const { return scored_; }
  uint64_t disagreements() const { return disagreements_; }

 private:
  DecisionTree model_;
  DecisionTree reference_;
  uint64_t scored_ = 0;
  uint64_t disagreements_ = 0;
};

/// Built-in air-quality models used when a scenario doesn't embed its own:
/// a 7-node PM2.5/ozone severity tree, and a deliberately coarser reference
/// tree that disagrees near the class boundaries.
JsonValue default_air_model_json();
JsonValue default_air_reference_json();

}  // namespace neptune::scenarios
