#include "scenarios/digest.hpp"

#include <bit>
#include <cstdio>

namespace neptune::scenarios {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void mix(uint64_t& h, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

inline void mix_u64(uint64_t& h, uint64_t v) { mix(h, &v, sizeof v); }

}  // namespace

uint64_t packet_content_hash(const StreamPacket& packet) {
  uint64_t h = kFnvOffset;
  mix_u64(h, packet.field_count());
  for (size_t i = 0; i < packet.field_count(); ++i) {
    const Value& v = packet.field(i);
    FieldType t = value_type(v);
    uint8_t tag = static_cast<uint8_t>(t);
    mix(h, &tag, 1);
    switch (t) {
      case FieldType::kI32:
        mix_u64(h, static_cast<uint64_t>(static_cast<int64_t>(std::get<int32_t>(v))));
        break;
      case FieldType::kI64:
        mix_u64(h, static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case FieldType::kF32:
        mix_u64(h, std::bit_cast<uint32_t>(std::get<float>(v)));
        break;
      case FieldType::kF64:
        mix_u64(h, std::bit_cast<uint64_t>(std::get<double>(v)));
        break;
      case FieldType::kBool:
        mix_u64(h, std::get<bool>(v) ? 1 : 0);
        break;
      case FieldType::kString: {
        const std::string& s = std::get<std::string>(v);
        mix_u64(h, s.size());
        mix(h, s.data(), s.size());
        break;
      }
      case FieldType::kBytes: {
        const auto& b = std::get<std::vector<uint8_t>>(v);
        mix_u64(h, b.size());
        mix(h, b.data(), b.size());
        break;
      }
    }
  }
  return h;
}

std::string DigestAccumulator::digest() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "n%llu-s%016llx-x%016llx",
                static_cast<unsigned long long>(count_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(sum_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(xor_.load(std::memory_order_relaxed)));
  return std::string(buf);
}

}  // namespace neptune::scenarios
