#include "scenarios/etl_ops.hpp"

#include <cstdio>

#include "neptune/window.hpp"
#include "neptune/workload.hpp"

namespace neptune::scenarios {

// --- CsvParseProcessor -----------------------------------------------------

void CsvParseProcessor::process(StreamPacket& packet, Emitter& out) {
  if (packet.field_count() != 1 || value_type(packet.field(0)) != FieldType::kString) {
    ++parse_errors_;
    return;
  }
  StreamPacket parsed;
  try {
    parsed = workload::parse_csv_row(packet.str(0), schema_);
  } catch (const PacketFormatError&) {
    ++parse_errors_;
    return;
  }
  parsed.set_event_time_ns(packet.event_time_ns());
  out.emit(std::move(parsed));
}

// --- RangeFilterProcessor --------------------------------------------------

RangeFilterProcessor::RangeFilterProcessor(std::vector<RangeRule> rules, double missing_sentinel)
    : rules_(std::move(rules)), sentinel_(missing_sentinel) {}

void RangeFilterProcessor::process(StreamPacket& packet, Emitter& out) {
  for (const RangeRule& r : rules_) {
    if (r.field >= packet.field_count()) {
      ++dropped_;
      return;
    }
    double v = window::numeric_field(packet, r.field);
    if (v == sentinel_) continue;  // missing, not corrupt
    if (v < r.lo || v > r.hi) {
      ++dropped_;
      return;
    }
  }
  StreamPacket copy = packet;
  out.emit(std::move(copy));
}

// --- InterpolateProcessor --------------------------------------------------

InterpolateProcessor::InterpolateProcessor(size_t value_field, size_t key_field,
                                           double missing_sentinel)
    : value_field_(value_field), key_field_(key_field), sentinel_(missing_sentinel) {}

void InterpolateProcessor::process(StreamPacket& packet, Emitter& out) {
  if (value_field_ >= packet.field_count() || key_field_ >= packet.field_count()) {
    ++dropped_;
    return;
  }
  const std::string& key = packet.str(key_field_);
  double v = window::numeric_field(packet, value_field_);
  if (v == sentinel_) {
    auto it = last_good_.find(key);
    if (it == last_good_.end()) {
      ++dropped_;
      return;
    }
    packet.field(value_field_) = Value(it->second);
    ++repaired_;
  } else {
    last_good_[key] = v;
  }
  StreamPacket copy = packet;
  out.emit(std::move(copy));
}

void InterpolateProcessor::snapshot_state(ByteBuffer& out) const {
  out.write_varint(repaired_);
  out.write_varint(dropped_);
  out.write_varint(last_good_.size());
  for (const auto& [key, v] : last_good_) {
    out.write_string(key);
    out.write_f64(v);
  }
}

void InterpolateProcessor::restore_state(ByteReader& in) {
  last_good_.clear();
  repaired_ = in.read_varint();
  dropped_ = in.read_varint();
  uint64_t n = in.read_varint();
  for (uint64_t i = 0; i < n; ++i) {
    std::string key = in.read_string();
    last_good_[key] = in.read_f64();
  }
}

// --- AnnotateProcessor -----------------------------------------------------

AnnotateProcessor::AnnotateProcessor(size_t key_field, std::map<std::string, std::string> table)
    : key_field_(key_field), table_(std::move(table)) {}

void AnnotateProcessor::process(StreamPacket& packet, Emitter& out) {
  StreamPacket annotated = packet;
  std::string zone = "zone-unknown";
  if (key_field_ < packet.field_count() &&
      value_type(packet.field(key_field_)) == FieldType::kString) {
    auto it = table_.find(packet.str(key_field_));
    if (it != table_.end())
      zone = it->second;
    else
      ++misses_;
  } else {
    ++misses_;
  }
  annotated.add_string(std::move(zone));
  out.emit(std::move(annotated));
}

std::map<std::string, std::string> make_zone_table(const std::string& prefix, uint32_t devices,
                                                   uint32_t zones) {
  if (zones == 0) zones = 1;
  std::map<std::string, std::string> table;
  char id[48], zone[32];
  for (uint32_t i = 0; i < devices; ++i) {
    std::snprintf(id, sizeof id, "%s-%04u", prefix.c_str(), i);
    std::snprintf(zone, sizeof zone, "zone-%02u", i % zones);
    table.emplace(id, zone);
  }
  return table;
}

}  // namespace neptune::scenarios
