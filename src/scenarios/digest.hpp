// Order-insensitive stream digests — the golden-test currency of the
// scenario suite. A sink's digest must be byte-identical across runs,
// transports (inproc / fast lane / TCP) and parallel sink instances, while
// packet *arrival order* across instances is not deterministic. So the
// per-packet hash covers only the packet's typed data fields (never the
// header ingest timestamp, which is wall clock), and packets combine
// commutatively (modular sum + xor + count): any arrival order of the same
// multiset yields the same digest, and any loss, duplication or value
// corruption changes it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "neptune/operators.hpp"
#include "neptune/packet.hpp"
#include "neptune/state.hpp"

namespace neptune::scenarios {

/// FNV-1a over the typed field contents (type tag + canonical bytes per
/// field). Excludes event_time_ns. Floats hash by bit pattern.
uint64_t packet_content_hash(const StreamPacket& packet);

/// Commutative digest accumulator, shared across the parallel instances of
/// one sink operator (relaxed atomics: instances never need to agree until
/// the job has drained).
class DigestAccumulator {
 public:
  void add(uint64_t packet_hash) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(packet_hash, std::memory_order_relaxed);
    xor_.fetch_xor(packet_hash, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t xor_value() const { return xor_.load(std::memory_order_relaxed); }

  /// "n<count>-s<sum16hex>-x<xor16hex>" — stable, grep-friendly.
  std::string digest() const;

  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    xor_.store(0, std::memory_order_relaxed);
  }

  /// Overwrite the totals with absolute values (checkpoint restore). Unlike
  /// add(), this is idempotent: parallel sink instances restoring the same
  /// quiesced snapshot all store identical totals, so order and repetition
  /// don't matter.
  void store(uint64_t count, uint64_t sum, uint64_t xor_value) {
    count_.store(count, std::memory_order_relaxed);
    sum_.store(sum, std::memory_order_relaxed);
    xor_.store(xor_value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> xor_{0};
};

/// Terminal stage folding every packet into a shared DigestAccumulator.
/// Having no output links, the framework records end-to-end sink latency
/// here — the scenario benches read their percentiles off this operator.
///
/// Checkpointable so exactly-once digests survive a full-deployment restart
/// (chaos recovery): the snapshot captures the accumulator's absolute totals
/// at the quiesced cut, and restore *stores* them back rather than adding —
/// idempotent across parallel instances sharing one accumulator, and correct
/// under re-submit into the same process (the stale contribution of the old
/// incarnation is overwritten, not doubled).
class DigestSink final : public StreamProcessor, public Checkpointable {
 public:
  explicit DigestSink(std::shared_ptr<DigestAccumulator> acc) : acc_(std::move(acc)) {}

  void process(StreamPacket& packet, Emitter&) override {
    acc_->add(packet_content_hash(packet));
  }

  void snapshot_state(ByteBuffer& out) const override {
    out.write_varint(acc_->count());
    out.write_u64(acc_->sum());
    out.write_u64(acc_->xor_value());
  }
  void restore_state(ByteReader& in) override {
    uint64_t count = in.read_varint();
    uint64_t sum = in.read_u64();
    uint64_t x = in.read_u64();
    acc_->store(count, sum, x);
  }

 private:
  std::shared_ptr<DigestAccumulator> acc_;
};

}  // namespace neptune::scenarios
