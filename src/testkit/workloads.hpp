// Deterministic operators for DST and differential topologies. Unlike the
// demo workloads in neptune/workload.hpp these stamp event times and payloads
// purely from (instance, sequence) — no wall clock, no hidden RNG state — so
// replaying a packet after crash recovery reproduces it byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "neptune/operators.hpp"
#include "neptune/state.hpp"

namespace neptune::testkit {

/// Finite source emitting globally unique int64 ids. The total is split
/// across instances like the cluster model's per-source quota (first
/// `total % parallelism` instances get one extra), and instance i emits ids
/// i, i+P, i+2P, ... — the union over instances is exactly [0, total).
/// Checkpointable: replay position only, so recovery resumes without loss
/// or duplication.
class SeqSource final : public StreamSource, public Checkpointable {
 public:
  explicit SeqSource(uint64_t total, size_t payload_bytes = 0,
                     int64_t event_time_step_ns = 1'000)
      : total_(total), payload_bytes_(payload_bytes), step_ns_(event_time_step_ns) {}

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

  void snapshot_state(ByteBuffer& out) const override { out.write_u64(emitted_); }
  void restore_state(ByteReader& in) override { emitted_ = in.read_u64(); }

  uint64_t quota() const { return quota_; }
  uint64_t emitted() const { return emitted_; }

 private:
  uint64_t total_;
  size_t payload_bytes_;
  int64_t step_ns_;
  uint32_t instance_ = 0;
  uint32_t parallelism_ = 1;
  uint64_t quota_ = 0;
  uint64_t emitted_ = 0;
};

/// Forwards every n-th input packet (integer analogue of the cluster
/// model's selectivity 1/n). n == 1 relays everything. Checkpointable.
class EveryNthProcessor final : public StreamProcessor, public Checkpointable {
 public:
  explicit EveryNthProcessor(uint64_t n) : n_(n == 0 ? 1 : n) {}

  void process(StreamPacket& packet, Emitter& out) override {
    ++count_;
    if (count_ % n_ == 0) {
      StreamPacket copy = packet;
      out.emit(std::move(copy));
    }
  }

  void snapshot_state(ByteBuffer& out) const override { out.write_u64(count_); }
  void restore_state(ByteReader& in) override { count_ = in.read_u64(); }

 private:
  uint64_t n_;
  uint64_t count_ = 0;
};

/// Terminal sink recording every id (field 0, int64) it consumes into a
/// shared bin. Only the count is checkpointed: the id log is a test-side
/// observation channel, valid for crash-free runs (a recovery replays into
/// the same bin, so ids would double up — use the count for those).
struct Collected {
  std::vector<int64_t> ids;
  uint64_t count = 0;
};

class CollectorSink final : public StreamProcessor, public Checkpointable {
 public:
  explicit CollectorSink(std::shared_ptr<Collected> bin) : bin_(std::move(bin)) {}

  void process(StreamPacket& packet, Emitter&) override {
    if (packet.field_count() > 0) bin_->ids.push_back(packet.i64(0));
    ++bin_->count;
    ++count_;
  }

  void snapshot_state(ByteBuffer& out) const override { out.write_u64(count_); }
  void restore_state(ByteReader& in) override { count_ = in.read_u64(); }

  uint64_t count() const { return count_; }

 private:
  std::shared_ptr<Collected> bin_;
  uint64_t count_ = 0;
};

}  // namespace neptune::testkit
