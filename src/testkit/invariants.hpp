// Invariant checkers for the DST harness — the safety properties NEPTUNE's
// dataflow layer promises, written as predicates over DstView and evaluated
// after every simulated step:
//
//   sequence     — no loss, no duplication: per-edge receiver position never
//                  passes the sender position, no seq violations or dup
//                  drops, and positions meet exactly at completion.
//   conservation — packets are conserved end to end: at completion every
//                  processor consumed exactly what its input edges carried.
//   capacity     — buffers and channels respect their configured byte
//                  budgets (with the documented oversized-frame exception).
//   backpressure — a flow-controlled sender always has a wakeup path: an
//                  execute event pending, or the channel's writable wakeup
//                  still armed. Catches lost-wakeup bugs that deadlock the
//                  threaded runtime non-deterministically.
//   overload     — critical edges never shed; best-effort edges bound their
//                  buffered bytes under the shed hard cap; receivers never
//                  observe more missing packets than senders shed.
//   exactly-once — Checkpointable state at completion equals a reference
//                  snapshot (used by crash/recovery tests).
#pragma once

#include <memory>
#include <vector>

#include "neptune/state.hpp"
#include "testkit/dst.hpp"

namespace neptune::testkit {

/// Workload-dependent bounds the capacity checker cannot infer from configs.
struct CapacityLimits {
  /// Largest serialized packet the workload emits.
  size_t max_packet_bytes = 256;
  /// GraphConfig::source_batch_budget of the graph under test (an
  /// uncooperative source may emit a full budget into a blocked edge).
  size_t source_batch_budget = 512;
};

std::unique_ptr<InvariantChecker> make_sequence_checker(bool allow_duplicates = false);
std::unique_ptr<InvariantChecker> make_conservation_checker();
std::unique_ptr<InvariantChecker> make_capacity_checker(CapacityLimits limits = {});
std::unique_ptr<InvariantChecker> make_backpressure_checker();
/// Overload resilience: critical edges never shed, best-effort edges keep
/// buffered bytes under the shed hard cap, shed accounting is conservative.
std::unique_ptr<InvariantChecker> make_overload_checker(CapacityLimits limits = {});
/// Asserts the job's Checkpointable state at completion equals `expected`
/// (e.g. the state of a fault-free reference run of the same workload).
std::unique_ptr<InvariantChecker> make_exactly_once_checker(JobSnapshot expected);

/// The four workload-independent checkers above, ready for add_checkers().
std::vector<std::unique_ptr<InvariantChecker>> default_checkers(CapacityLimits limits = {});

}  // namespace neptune::testkit
