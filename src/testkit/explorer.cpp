#include "testkit/explorer.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace neptune::testkit {

std::string ExplorerResult::summary() const {
  std::ostringstream os;
  os << runs << " interleavings, " << failures.size() << " failed, determinism "
     << (determinism_ok ? "ok" : "BROKEN");
  for (const auto& f : failures) {
    os << "\n  seed=" << f.seed << (f.completed ? "" : " (incomplete)");
    for (const auto& v : f.violations) os << "\n    " << v;
  }
  return os.str();
}

DstReport run_seed(const GraphFactory& graph, uint64_t seed, const ExplorerOptions& opts,
                   const CheckerSetFactory& checkers) {
  DstOptions dst = opts.dst;
  dst.seed = seed;
  DstJob job(graph(), dst);
  if (checkers) job.add_checkers(checkers());
  return job.run();
}

ExplorerResult explore(const GraphFactory& graph, const ExplorerOptions& opts,
                       const CheckerSetFactory& checkers) {
  ExplorerResult result;
  result.runs = opts.runs;
  for (uint64_t i = 0; i < opts.runs; ++i) {
    uint64_t seed = opts.base_seed + i;
    DstReport r = run_seed(graph, seed, opts, checkers);
    result.trace_hashes.push_back(r.trace_hash);
    if (!r.ok()) {
      std::fprintf(stderr,
                   "[testkit] DST failure — replay with seed=%llu (%s, %zu violations)\n",
                   static_cast<unsigned long long>(seed), r.completed ? "completed" : "incomplete",
                   r.violations.size());
      for (const auto& v : r.violations) std::fprintf(stderr, "[testkit]   %s\n", v.c_str());
      result.failures.push_back(ExplorerFailure{seed, r.completed, r.violations});
    }
  }
  if (opts.check_determinism && opts.runs > 0) {
    DstReport replay = run_seed(graph, opts.base_seed, opts, checkers);
    if (replay.trace_hash != result.trace_hashes[0]) {
      result.determinism_ok = false;
      std::fprintf(stderr,
                   "[testkit] DETERMINISM BROKEN: seed=%llu trace hash %llx != %llx on replay\n",
                   static_cast<unsigned long long>(opts.base_seed),
                   static_cast<unsigned long long>(result.trace_hashes[0]),
                   static_cast<unsigned long long>(replay.trace_hash));
    }
  }
  return result;
}

uint64_t env_runs(uint64_t fallback) {
  const char* env = std::getenv("NEPTUNE_DST_RUNS");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  return (end && *end == '\0' && v > 0) ? static_cast<uint64_t>(v) : fallback;
}

}  // namespace neptune::testkit
