// Runtime-vs-model differential validation: run one seeded finite workload
// through (a) the real dataflow code under the DST harness and (b) the
// flow-level cluster model (src/sim), then diff the integer packet accounting
// — total and per-instance counts for every stage.
//
// Alignment contract (why zero divergence is achievable, not just likely):
//   * chunk size — the model moves data in chunks of
//     floor(buffer_bytes / packet_bytes) packets; the harness pins
//     buffer_bytes = packet_bytes so one model chunk == one packet, making
//     the model's per-chunk round-robin equal to per-packet shuffle.
//   * distribution — both sides round-robin per *sender* with cursors
//     starting at 0 (ShufflePartitioning vs the model's rr_cursor).
//   * selectivity — stage filters must be every-nth with n a power of two:
//     the model accumulates emissions in floating point (consumed * 1/n) and
//     dyadic fractions are exact, so floor-accumulation equals the integer
//     count % n == 0 rule of EveryNthProcessor.
//   * quota — both sides split total_packets across source instances as
//     total/P with the first total%P instances emitting one extra.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "testkit/dst.hpp"

namespace neptune::testkit {

struct DiffStage {
  std::string id;
  uint32_t parallelism = 1;
  /// Forward every n-th packet; must be a power of two. 1 = relay. Ignored
  /// for the last stage (terminal sink, consume-only).
  uint64_t every_nth = 1;
  /// Model-side per-packet processing cost (does not affect counts).
  double proc_ns = 30;
};

struct DiffWorkload {
  std::string name;
  std::vector<DiffStage> stages;  ///< stages[0] is the source stage
  uint64_t total_packets = 4096;
  double packet_bytes = 100;
};

/// The paper's Figure 5 shape: source stage → sink stage, shuffle, all-pairs.
DiffWorkload fig5_diff_workload(uint32_t parallelism = 4, uint64_t total_packets = 4096);
/// The paper's Figure 9 shape: 4-stage monitoring pipeline with an
/// every-32nd detector stage.
DiffWorkload fig9_diff_workload(uint64_t total_packets = 8192);

/// Real-runtime half: SeqSource → EveryNthProcessor chain → CollectorSink,
/// all links shuffle-partitioned.
StreamGraph build_dst_graph(const DiffWorkload& w);
/// Model half: the same workload as a sim::JobSpec with the alignment
/// contract applied (buffer_bytes = packet_bytes, dyadic selectivity).
/// Throws std::invalid_argument if a stage's every_nth is not a power of two.
sim::JobSpec build_model_job(const DiffWorkload& w);

struct StageDiff {
  std::string id;
  uint64_t model_packets = 0;
  uint64_t dst_packets = 0;
  std::vector<uint64_t> model_per_instance;
  std::vector<uint64_t> dst_per_instance;
};

struct DifferentialReport {
  bool dst_completed = false;
  std::vector<StageDiff> stages;
  std::vector<std::string> divergences;
  bool ok() const { return dst_completed && divergences.empty(); }
  std::string summary() const;
};

/// Run the workload through both halves and diff the counts. `seed` permutes
/// the DST schedule — counts must be schedule-independent, so every seed
/// must produce zero divergence.
DifferentialReport run_differential(const DiffWorkload& w, uint64_t seed);

}  // namespace neptune::testkit
