// Seeded schedule exploration: run the same topology through DstJob under N
// derived seeds, each seed permuting every task-wakeup delay, with invariant
// checkers active on every step. Any failure is reported with the exact seed
// that reproduces it — plug that seed into run_seed() (or DstOptions::seed)
// to replay the failing interleaving deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testkit/dst.hpp"

namespace neptune::testkit {

/// Builds a fresh graph per run — operator instances are stateful, so each
/// interleaving needs its own.
using GraphFactory = std::function<StreamGraph()>;
using CheckerSetFactory = std::function<std::vector<std::unique_ptr<InvariantChecker>>()>;

struct ExplorerOptions {
  uint64_t base_seed = 1;
  /// Number of interleavings: seeds base_seed .. base_seed + runs - 1.
  uint64_t runs = 50;
  /// Per-run DST options (seed is overwritten per run).
  DstOptions dst;
  /// Re-run the first seed and require a byte-identical event trace.
  bool check_determinism = true;
};

struct ExplorerFailure {
  uint64_t seed = 0;
  bool completed = false;
  std::vector<std::string> violations;
};

struct ExplorerResult {
  uint64_t runs = 0;
  std::vector<ExplorerFailure> failures;
  std::vector<uint64_t> trace_hashes;  ///< one per run, in seed order
  bool determinism_ok = true;
  bool ok() const { return failures.empty() && determinism_ok; }
  std::string summary() const;
};

/// One fully-checked DST run at an explicit seed (the replay entry point).
DstReport run_seed(const GraphFactory& graph, uint64_t seed, const ExplorerOptions& opts,
                   const CheckerSetFactory& checkers);

/// Sweep `opts.runs` interleavings. Failures print their reproducing seed
/// to stderr as they happen.
ExplorerResult explore(const GraphFactory& graph, const ExplorerOptions& opts,
                       const CheckerSetFactory& checkers);

/// Run count override from NEPTUNE_DST_RUNS (nightly CI sets 200), else
/// `fallback`.
uint64_t env_runs(uint64_t fallback);

}  // namespace neptune::testkit
