// Deterministic simulation testing (DST) for the NEPTUNE dataflow layer.
//
// DstJob runs a *real* topology — real StreamBuffer batching/flow control,
// real InprocChannel transport, real FrameDecoder/SelectiveCodec, real
// partitioning, window and checkpoint code — single-threaded on the
// sim::EventQueue virtual clock. The only substitutions are the scheduler
// (granules worker/IO threads become virtual-time events) and the clock
// (StreamBuffer timers read the EventQueue). Execution mirrors
// detail::InstanceRuntime step for step: source budgets, per-execution
// batch limits, blocked-output descheduling, writable/data wakeups, flush
// timers, finalize/close ordering, and the checkpoint pause → quiesce →
// snapshot protocol.
//
// Why: schedule-sensitive defects (lost wakeups, backpressure leaks,
// replay off-by-ones) hide behind races on the threaded runtime. Here the
// whole schedule derives from one seed — a seeded jitter term permutes
// task wakeup order — so every interleaving is exactly replayable, and
// pluggable invariant checkers run after *every* simulated step.
//
// Determinism contract: two DstJob runs of the same graph with the same
// DstOptions::seed produce byte-identical event traces (DstReport::trace /
// trace_hash), even within one process. The harness disables the global
// TraceSampler for the duration of run() — its process-wide counters would
// otherwise leak real-run state into batch headers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/inproc_transport.hpp"
#include "neptune/graph.hpp"
#include "neptune/metrics.hpp"
#include "neptune/state.hpp"
#include "neptune/stream_buffer.hpp"
#include "sim/des.hpp"

namespace neptune::testkit {

/// Clock that reads the DST event queue's virtual time, so StreamBuffer
/// flush timers and latency stamps are schedule-deterministic.
class SimClock final : public Clock {
 public:
  explicit SimClock(const sim::EventQueue* q) : q_(q) {}
  int64_t now_ns() const override { return q_->now(); }

 private:
  const sim::EventQueue* q_;
};

struct DstOptions {
  uint64_t seed = 1;
  /// Uniform random delay added to every task wakeup; this is the schedule
  /// permutation knob. 0 gives the fixed canonical schedule.
  int64_t schedule_jitter_ns = 20'000;
  /// Virtual CPU cost charged per packet moved during an execution slice.
  int64_t packet_cost_ns = 50;
  /// Virtual cost of one scheduled execution (wakeup + dispatch).
  int64_t execute_overhead_ns = 2'000;
  /// Abort guards: virtual-time and step ceilings for one run.
  int64_t max_virtual_ns = 300'000'000'000;  // 300 s virtual
  uint64_t max_steps = 5'000'000;
  /// Steps without any packet/flush progress before declaring a livelock.
  uint64_t livelock_steps = 50'000;
  /// Periodic checkpoint interval (virtual ns); 0 disables checkpoints.
  int64_t checkpoint_interval_ns = 0;
  /// Keep the full event trace in DstReport::trace (the hash is always
  /// computed). Turn off for big schedule sweeps to save memory.
  bool record_trace = true;
};

/// Per-instance probe exposed to invariant checkers.
struct InstanceProbe {
  std::string op_id;
  uint32_t instance = 0;
  size_t global_index = 0;
  bool is_source = false;
  bool done = false;
  bool scheduled = false;  ///< an execute event is pending
  bool paused = false;
  size_t ready_batches = 0;
  const OperatorMetrics* metrics = nullptr;
};

/// Per-edge probe: one (link, src-instance, dst-instance) StreamBuffer +
/// channel pair, with both endpoints' sequence positions.
struct EdgeProbe {
  uint32_t link_id = 0;
  std::string src_op;
  uint32_t src_instance = 0;
  size_t src_index = 0;  ///< global instance index of the sender
  std::string dst_op;
  uint32_t dst_instance = 0;
  size_t dst_index = 0;
  const StreamBuffer* buffer = nullptr;
  const InprocChannel* channel = nullptr;
  StreamBufferConfig buffer_config;
  ChannelConfig channel_config;
  bool lossy = false;  ///< link declares a shed policy (best-effort)
  ShedConfig shed_config;
  uint64_t sent_seq = 0;      ///< sender-side next_seq (packets buffered so far)
  uint64_t received_seq = 0;  ///< receiver-side expected_seq (packets accepted)
  uint64_t shed_gap_packets = 0;  ///< receiver: seq positions skipped (shed upstream)
  uint64_t shed_packets = 0;      ///< sender: packets the buffer shed
  bool receiver_drained = false;
  bool sender_scheduled = false;
  bool sender_done = false;
  bool receiver_done = false;
};

class DstJob;

/// Snapshot of the simulated job handed to checkers after every step.
struct DstView {
  sim::SimTime now = 0;
  uint64_t step = 0;
  uint64_t seed = 0;
  bool completed = false;  ///< set before on_finish when all instances finished
  std::vector<InstanceProbe> instances;
  std::vector<EdgeProbe> edges;
  const DstJob* job = nullptr;
};

/// A safety property evaluated after every simulated step. Checkers append
/// human-readable violation strings; the harness prefixes step/seed context.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual const char* name() const = 0;
  virtual void on_step(const DstView& view, std::vector<std::string>& violations) = 0;
  /// Called once after the run (completion, guard trip, or queue drain).
  virtual void on_finish(const DstView& view, std::vector<std::string>& violations) {
    (void)view;
    (void)violations;
  }
};

struct DstReport {
  bool completed = false;  ///< every instance reached done
  uint64_t steps = 0;
  int64_t virtual_ns = 0;
  uint64_t checkpoints = 0;
  uint64_t recoveries = 0;
  std::vector<std::string> violations;
  std::vector<std::string> trace;  ///< one line per event (when record_trace)
  uint64_t trace_hash = 0;         ///< FNV-1a over all trace lines
  bool ok() const { return completed && violations.empty(); }
  std::string summary() const;
};

namespace detail {
class DstInstance;
}

/// One deterministic run of a real StreamGraph. Construct, optionally add
/// checkers / schedule crashes, then run() once.
class DstJob {
 public:
  explicit DstJob(const StreamGraph& graph, DstOptions opts = {});
  ~DstJob();
  DstJob(const DstJob&) = delete;
  DstJob& operator=(const DstJob&) = delete;

  void add_checker(std::unique_ptr<InvariantChecker> checker);
  void add_checkers(std::vector<std::unique_ptr<InvariantChecker>> checkers);

  /// Kill-and-recover at a virtual time: the whole job is torn down and
  /// redeployed (the DST analogue of the RecoveryCoordinator's resubmit),
  /// then restored from the latest periodic checkpoint, if any.
  void schedule_crash(int64_t at_virtual_ns);

  /// White-box fault hook: run an arbitrary mutation (e.g. steal a frame
  /// from a channel) at a virtual time, between steps.
  void schedule_fault(int64_t at_virtual_ns, std::function<void()> fn);

  DstReport run();

  // --- introspection ---------------------------------------------------------
  const DstView& view() const { return view_; }
  sim::EventQueue& queue() { return q_; }
  /// Serialize every Checkpointable operator's current state.
  JobSnapshot state_snapshot() const;
  std::vector<OperatorMetricsSnapshot> metrics() const;
  uint64_t checkpoints_taken() const { return checkpoints_; }
  uint64_t recoveries() const { return recoveries_; }
  /// Channel of view().edges[i] — non-const, for schedule_fault mutations.
  std::shared_ptr<InprocChannel> edge_channel(size_t edge_index);

 private:
  friend class detail::DstInstance;

  void deploy();  ///< (re)build instances + wiring under the current epoch
  void start_epoch();
  void notify(size_t inst_index);
  void schedule_execute(size_t inst_index, int64_t delay_ns);
  void schedule_timer(size_t inst_index, int64_t period_ns);
  int64_t wakeup_jitter();
  bool step_once();  ///< run one event + bookkeeping + checkers
  bool all_done() const;
  bool quiescent() const;
  void do_checkpoint();
  void do_recover();
  void refresh_view();
  void trace_line(std::string line);
  void violation(const std::string& checker, const std::string& what);
  uint64_t progress_signature() const;

  StreamGraph graph_;  // owned copy: recovery redeploys from it
  DstOptions opts_;
  sim::EventQueue q_;
  SimClock clock_;
  Xoshiro256 rng_;

  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<detail::DstInstance>> instances_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  DstView view_;
  DstReport report_;

  std::optional<JobSnapshot> snapshot_;
  uint64_t checkpoints_ = 0;
  uint64_t recoveries_ = 0;
  bool checkpoint_pending_ = false;
  bool crash_pending_ = false;
  bool in_checkpoint_ = false;
  bool ran_ = false;

  uint64_t last_progress_sig_ = ~0ULL;
  uint64_t last_progress_step_ = 0;

  /// Where view_.edges[i] lives inside instances_ (rebuilt on redeploy).
  struct EdgeLoc {
    size_t src = 0;     ///< sender global index
    size_t link = 0;    ///< output link index on the sender
    size_t pos = 0;     ///< buffer position within that link
    size_t dst = 0;     ///< receiver global index
    size_t in_pos = 0;  ///< input-edge position on the receiver
  };
  std::vector<EdgeLoc> edge_locs_;
  std::vector<std::string> scratch_violations_;
};

}  // namespace neptune::testkit
