#include "testkit/differential.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "testkit/invariants.hpp"
#include "testkit/workloads.hpp"

namespace neptune::testkit {

namespace {

bool power_of_two(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

DiffWorkload fig5_diff_workload(uint32_t parallelism, uint64_t total_packets) {
  DiffWorkload w;
  w.name = "fig5-scalability";
  w.total_packets = total_packets;
  w.stages.push_back(DiffStage{"ingest", parallelism, 1, 30});
  w.stages.push_back(DiffStage{"deliver", parallelism, 1, 30});
  return w;
}

DiffWorkload fig9_diff_workload(uint64_t total_packets) {
  DiffWorkload w;
  w.name = "fig9-monitoring";
  w.total_packets = total_packets;
  w.stages.push_back(DiffStage{"sensors", 2, 1, 30});
  w.stages.push_back(DiffStage{"parse", 2, 1, 60});
  w.stages.push_back(DiffStage{"detect", 2, 32, 120});
  w.stages.push_back(DiffStage{"monitor", 1, 1, 30});
  return w;
}

StreamGraph build_dst_graph(const DiffWorkload& w) {
  if (w.stages.size() < 2) throw std::invalid_argument("differential workload needs >= 2 stages");
  GraphConfig cfg;
  cfg.buffer.capacity_bytes = 16 << 10;  // several flushes per run
  StreamGraph g("diff-" + w.name, cfg);
  uint64_t total = w.total_packets;
  g.add_source(w.stages[0].id, [total] { return std::make_unique<SeqSource>(total); },
               w.stages[0].parallelism);
  for (size_t s = 1; s + 1 < w.stages.size(); ++s) {
    uint64_t n = w.stages[s].every_nth;
    g.add_processor(w.stages[s].id, [n] { return std::make_unique<EveryNthProcessor>(n); },
                    w.stages[s].parallelism);
  }
  auto bin = std::make_shared<Collected>();
  g.add_processor(w.stages.back().id, [bin] { return std::make_unique<CollectorSink>(bin); },
                  w.stages.back().parallelism);
  for (size_t s = 0; s + 1 < w.stages.size(); ++s)
    g.connect(w.stages[s].id, w.stages[s + 1].id, std::make_shared<ShufflePartitioning>());
  return g;
}

sim::JobSpec build_model_job(const DiffWorkload& w) {
  sim::JobSpec job;
  job.name = "diff-" + w.name;
  job.packet_bytes = w.packet_bytes;
  // One model chunk == one packet: per-chunk round-robin becomes per-packet
  // shuffle, the alignment the per-instance diff depends on.
  job.buffer_bytes = w.packet_bytes;
  job.credit_window = 1024;  // wide window: flow control can't starve drain
  job.total_packets = w.total_packets;
  for (size_t s = 0; s < w.stages.size(); ++s) {
    const DiffStage& d = w.stages[s];
    bool terminal = s + 1 == w.stages.size();
    if (!terminal && !power_of_two(d.every_nth))
      throw std::invalid_argument("differential stage '" + d.id + "': every_nth " +
                                  std::to_string(d.every_nth) +
                                  " is not a power of two (model float accumulation would "
                                  "diverge from integer counting)");
    sim::StageSpec stage;
    stage.id = d.id;
    stage.parallelism = d.parallelism;
    stage.proc_ns_per_packet = d.proc_ns;
    stage.selectivity = terminal ? 1.0 : 1.0 / static_cast<double>(d.every_nth);
    job.stages.push_back(stage);
  }
  return job;
}

std::string DifferentialReport::summary() const {
  std::ostringstream os;
  os << (dst_completed ? "dst completed" : "dst INCOMPLETE") << ", " << divergences.size()
     << " divergences";
  for (const auto& s : stages) {
    os << "\n  " << s.id << ": model=" << s.model_packets << " dst=" << s.dst_packets
       << " per-instance model=[";
    for (size_t i = 0; i < s.model_per_instance.size(); ++i)
      os << (i ? "," : "") << s.model_per_instance[i];
    os << "] dst=[";
    for (size_t i = 0; i < s.dst_per_instance.size(); ++i)
      os << (i ? "," : "") << s.dst_per_instance[i];
    os << "]";
  }
  for (const auto& d : divergences) os << "\n  DIVERGENCE: " << d;
  return os.str();
}

DifferentialReport run_differential(const DiffWorkload& w, uint64_t seed) {
  DifferentialReport report;

  // --- real-runtime half under DST -----------------------------------------
  DstOptions opts;
  opts.seed = seed;
  opts.record_trace = false;
  DstJob job(build_dst_graph(w), opts);
  job.add_checkers(default_checkers());
  DstReport dst = job.run();
  report.dst_completed = dst.completed;
  for (const auto& v : dst.violations) report.divergences.push_back("dst invariant: " + v);

  std::vector<StageDiff> stages(w.stages.size());
  for (size_t s = 0; s < w.stages.size(); ++s) {
    stages[s].id = w.stages[s].id;
    stages[s].dst_per_instance.resize(w.stages[s].parallelism, 0);
    stages[s].model_per_instance.resize(w.stages[s].parallelism, 0);
  }
  for (const auto& m : job.metrics()) {
    for (size_t s = 0; s < w.stages.size(); ++s) {
      if (m.operator_id != w.stages[s].id) continue;
      // Stage 0 counts emissions; downstream stages count consumption —
      // matching the model's StageCount semantics.
      uint64_t count = s == 0 ? m.packets_out : m.packets_in;
      stages[s].dst_packets += count;
      if (m.instance < stages[s].dst_per_instance.size())
        stages[s].dst_per_instance[m.instance] = count;
    }
  }

  // --- model half ------------------------------------------------------------
  sim::ClusterSpec cluster;
  cluster.nodes = 4;
  sim::SimResult model = sim::simulate_cluster(cluster, sim::CostModel{}, sim::Engine::kNeptune,
                                               {build_model_job(w)}, /*duration_s=*/60);
  if (model.per_job.empty()) {
    report.divergences.push_back("model produced no per-job counts");
    report.stages = std::move(stages);
    return report;
  }
  const sim::JobCounts& counts = model.per_job[0];
  for (size_t s = 0; s < stages.size() && s < counts.stages.size(); ++s) {
    stages[s].model_packets = counts.stages[s].packets;
    stages[s].model_per_instance = counts.stages[s].per_instance;
  }

  // --- diff ------------------------------------------------------------------
  for (const auto& s : stages) {
    if (s.model_packets != s.dst_packets) {
      report.divergences.push_back("stage '" + s.id + "': model total " +
                                   std::to_string(s.model_packets) + " != dst total " +
                                   std::to_string(s.dst_packets));
    }
    size_t n = std::max(s.model_per_instance.size(), s.dst_per_instance.size());
    for (size_t i = 0; i < n; ++i) {
      uint64_t mv = i < s.model_per_instance.size() ? s.model_per_instance[i] : 0;
      uint64_t dv = i < s.dst_per_instance.size() ? s.dst_per_instance[i] : 0;
      if (mv != dv) {
        report.divergences.push_back("stage '" + s.id + "' instance " + std::to_string(i) +
                                     ": model " + std::to_string(mv) + " != dst " +
                                     std::to_string(dv));
      }
    }
  }
  report.stages = std::move(stages);
  return report;
}

}  // namespace neptune::testkit
