#include "testkit/dst.hpp"

#include <algorithm>
#include <sstream>

#include "common/bytes.hpp"
#include "compress/lz4.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"

namespace neptune::testkit {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  h ^= '\n';
  h *= kFnvPrime;
  return h;
}

}  // namespace

namespace detail {

/// A decoded inbound batch (the DST analogue of detail::Batch — no object
/// pool: single-threaded test scale doesn't need recycling).
struct DstBatch {
  std::vector<StreamPacket> packets;
  size_t count = 0;
  size_t cursor = 0;
};

/// Receiving half of one (link, src-instance) edge.
struct DstInEdge {
  std::shared_ptr<InprocChannel> channel;
  FrameDecoder decoder;
  uint64_t expected_seq = 0;
  uint32_t link_id = 0;
  uint32_t src_instance = 0;
  size_t src_index = 0;  ///< global index of the sending instance
  bool drained = false;
  bool lossy = false;               ///< edge declares a shed policy
  uint64_t shed_gap_packets = 0;    ///< seq positions skipped over (shed upstream)
};

struct DstOutBuffer {
  std::unique_ptr<StreamBuffer> buffer;
  std::shared_ptr<InprocChannel> channel;
  size_t dst_index = 0;
  uint32_t dst_instance = 0;
};

struct DstOutLink {
  const LinkDecl* decl = nullptr;
  std::shared_ptr<PartitioningScheme> partitioning;
  std::vector<DstOutBuffer> dst;
};

/// One operator instance run on the virtual clock. The execution logic is a
/// line-for-line mirror of detail::InstanceRuntime with the granules
/// TaskContext replaced by the `resched` flag and wakeup callbacks replaced
/// by DstJob::notify events.
class DstInstance : public Emitter {
 public:
  DstJob* job = nullptr;
  size_t index = 0;  ///< global instance index
  std::string op_id;
  uint32_t inst = 0;
  uint32_t parallelism = 1;
  OperatorKind kind = OperatorKind::kSource;
  const GraphConfig* cfg = nullptr;

  std::unique_ptr<StreamSource> source;
  std::unique_ptr<StreamProcessor> processor;
  std::vector<DstOutLink> outputs;
  std::vector<DstInEdge> inputs;
  OperatorMetrics metrics;

  uint64_t emitted = 0;
  uint64_t slice_work = 0;  ///< packets moved this execution slice (virtual cost)
  bool done = false;
  bool paused = false;
  bool scheduled = false;
  bool output_blocked = false;
  bool source_exhausted = false;
  bool close_called = false;
  bool resched = false;
  size_t next_edge = 0;
  std::deque<DstBatch> ready;
  std::vector<uint8_t> decompress_scratch;

  // --- Emitter ---------------------------------------------------------------
  EmitStatus emit(StreamPacket&& packet) override { return emit(0, std::move(packet)); }

  EmitStatus emit(size_t link, StreamPacket&& packet) override {
    if (link >= outputs.size())
      throw GraphError(op_id + "[" + std::to_string(inst) + "]: emit on unknown output link " +
                       std::to_string(link));
    if (packet.event_time_ns() == 0) packet.set_event_time_ns(job->clock_.now_ns());
    DstOutLink& out = outputs[link];
    uint32_t n = static_cast<uint32_t>(out.dst.size());
    uint32_t pick = out.partitioning->select(packet, inst, n);
    auto deliver = [&](DstOutBuffer& b) {
      if (!b.buffer->add(packet)) output_blocked = true;
      ++emitted;
      ++slice_work;
      metrics.packets_out.fetch_add(1, std::memory_order_relaxed);
    };
    if (pick == kBroadcastInstance) {
      for (auto& b : out.dst) deliver(b);
    } else {
      deliver(out.dst[pick % n]);
    }
    return output_blocked ? EmitStatus::kBackpressured : EmitStatus::kOk;
  }

  size_t output_link_count() const override { return outputs.size(); }
  uint32_t instance() const override { return inst; }
  uint64_t packets_emitted() const override { return emitted; }

  // --- lifecycle -------------------------------------------------------------
  void open() {
    if (kind == OperatorKind::kSource) {
      source->open(inst, parallelism);
    } else {
      processor->open(inst, parallelism);
    }
  }

  void execute() {
    if (done) return;
    metrics.executions.fetch_add(1, std::memory_order_relaxed);
    resched = false;
    slice_work = 0;
    if (!retry_blocked_outputs()) return;  // writable callback will re-notify
    if (kind == OperatorKind::kSource) {
      run_source();
    } else {
      run_processor();
    }
  }

  void on_flush_timer() {
    bool was_blocked = output_blocked;
    for (auto& out : outputs) {
      for (auto& b : out.dst) b.buffer->on_timer();
    }
    if (was_blocked) job->notify(index);  // a parked frame may have gone out
  }

 private:
  void run_source() {
    if (source_exhausted) {
      finalize(false);
      return;
    }
    if (paused) return;  // resume re-notifies
    bool more = source->next(*this, cfg->source_batch_budget);
    if (!more) {
      source_exhausted = true;
      finalize(false);
      return;
    }
    if (output_blocked) return;  // throttled (§III-B4)
    resched = true;
  }

  void run_processor() {
    if (!drain_ready_batches()) return;  // output blocked mid-batch
    size_t rounds = 0;
    while (rounds < cfg->max_batches_per_execution) {
      if (!fetch_some_frames()) break;
      ++rounds;
      if (!drain_ready_batches()) return;
    }
    if (all_inputs_drained() && ready.empty()) {
      finalize(false);
      return;
    }
    if (rounds == cfg->max_batches_per_execution) resched = true;
  }

  bool fetch_some_frames() {
    size_t n = inputs.size();
    for (size_t step = 0; step < n; ++step) {
      DstInEdge& e = inputs[(next_edge + step) % n];
      if (e.drained) continue;
      auto chunk = e.channel->try_receive();
      if (!chunk) {
        if (e.channel->closed() && e.decoder.pending_bytes() == 0) e.drained = true;
        continue;
      }
      next_edge = (next_edge + step + 1) % n;
      metrics.bytes_in.fetch_add(chunk->size(), std::memory_order_relaxed);
      FrameDecodeStatus s = e.decoder.feed(
          *chunk, [&](const FrameHeader& h, std::span<const uint8_t> payload) {
            ingest_frame(e, h, payload);
          });
      if (s == FrameDecodeStatus::kBadMagic || s == FrameDecodeStatus::kBadChecksum ||
          s == FrameDecodeStatus::kBadLength) {
        metrics.corrupt_frames_dropped.fetch_add(1, std::memory_order_relaxed);
        e.decoder.reset();
        job->violation("runtime", op_id + "[" + std::to_string(inst) + "]: corrupt frame on link " +
                                      std::to_string(e.link_id));
      }
      return true;
    }
    return false;
  }

  void ingest_frame(DstInEdge& e, const FrameHeader& h, std::span<const uint8_t> payload) {
    std::span<const uint8_t> raw = payload;
    if (h.compressed()) {
      decompress_scratch.resize(h.raw_size);
      ptrdiff_t dn = lz4::decompress(payload, decompress_scratch.data(), h.raw_size);
      if (dn < 0 || static_cast<uint32_t>(dn) != h.raw_size) {
        metrics.seq_violations.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      raw = {decompress_scratch.data(), h.raw_size};
    }
    if (h.control()) return;
    ByteReader r(raw);
    uint32_t src_inst = r.read_u32();
    uint64_t base_seq = r.read_u64();
    r.read_u64();  // trace_id (untraced: sampler disabled under DST)
    r.read_i64();  // trace_origin_ns
    r.read_i64();  // batch_start_ns
    r.read_i64();  // flush_ns
    if (h.link_id != e.link_id || src_inst != e.src_instance) {
      metrics.seq_violations.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (base_seq + h.batch_count <= e.expected_seq) {
      metrics.dup_frames_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (base_seq > e.expected_seq) {
      // Mirrors InstanceRuntime::ingest_frame: a gap on a lossy edge is the
      // sender shedding (accounted, legal); on a lossless edge it is a
      // contract violation.
      if (e.lossy) {
        uint64_t gap = base_seq - e.expected_seq;
        e.shed_gap_packets += gap;
        metrics.shed_gaps.fetch_add(gap, std::memory_order_relaxed);
      } else {
        metrics.seq_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    uint32_t skip =
        base_seq < e.expected_seq ? static_cast<uint32_t>(e.expected_seq - base_seq) : 0;
    if (skip > 0) metrics.dup_frames_dropped.fetch_add(1, std::memory_order_relaxed);
    e.expected_seq = base_seq + h.batch_count;

    DstBatch batch;
    batch.packets.resize(h.batch_count);
    for (uint32_t i = 0; i < h.batch_count; ++i) batch.packets[i].deserialize(r);
    batch.count = h.batch_count;
    batch.cursor = skip;
    metrics.batches_in.fetch_add(1, std::memory_order_relaxed);
    ready.push_back(std::move(batch));
    metrics.inbound_ready_batches.store(static_cast<int64_t>(ready.size()),
                                        std::memory_order_relaxed);
  }

  bool drain_ready_batches() {
    bool is_sink = outputs.empty();
    while (!ready.empty()) {
      DstBatch& b = ready.front();
      while (b.cursor < b.count) {
        StreamPacket& p = b.packets[b.cursor];
        metrics.packets_in.fetch_add(1, std::memory_order_relaxed);
        ++slice_work;
        processor->process(p, *this);
        if (is_sink && p.event_time_ns() > 0) {
          int64_t lat = job->clock_.now_ns() - p.event_time_ns();
          if (lat > 0) metrics.sink_latency.record(static_cast<uint64_t>(lat));
        }
        ++b.cursor;
        if (output_blocked) return false;
      }
      ready.pop_front();
      metrics.inbound_ready_batches.store(static_cast<int64_t>(ready.size()),
                                          std::memory_order_relaxed);
    }
    return true;
  }

  bool all_inputs_drained() {
    for (auto& e : inputs) {
      if (!e.drained) {
        if (e.channel->closed() && e.decoder.pending_bytes() == 0) {
          e.drained = true;
        } else {
          return false;
        }
      }
    }
    return true;
  }

  bool retry_blocked_outputs() {
    if (!output_blocked) return true;
    bool all_ok = true;
    for (auto& out : outputs) {
      for (auto& b : out.dst) {
        if (b.buffer->blocked()) all_ok &= b.buffer->drain(false);
      }
    }
    if (all_ok) output_blocked = false;
    return all_ok;
  }

  void finalize(bool discard) {
    if (done) return;
    if (kind == OperatorKind::kProcessor && !close_called && !discard) {
      close_called = true;
      processor->close(*this);  // may emit final window aggregates
    }
    if (!discard) {
      bool all_flushed = true;
      for (auto& out : outputs) {
        for (auto& b : out.dst) all_flushed &= b.buffer->drain(/*force=*/true);
      }
      if (!all_flushed) {
        output_blocked = true;
        return;  // finalize resumes when the writable callback fires
      }
    }
    for (auto& out : outputs) {
      for (auto& b : out.dst) b.buffer->close_channel();
    }
    if (kind == OperatorKind::kSource && source) source->close();
    done = true;
  }
};

}  // namespace detail

using detail::DstInstance;

// --- DstReport ---------------------------------------------------------------

std::string DstReport::summary() const {
  std::ostringstream os;
  os << (completed ? "completed" : "INCOMPLETE") << " steps=" << steps
     << " virtual_ns=" << virtual_ns << " checkpoints=" << checkpoints
     << " recoveries=" << recoveries << " trace_hash=" << trace_hash
     << " violations=" << violations.size();
  for (const auto& v : violations) os << "\n  " << v;
  return os.str();
}

// --- DstJob ------------------------------------------------------------------

DstJob::DstJob(const StreamGraph& graph, DstOptions opts)
    : graph_(graph), opts_(opts), clock_(&q_), rng_(opts.seed) {
  graph_.validate();
  view_.seed = opts_.seed;
  view_.job = this;
  deploy();
  start_epoch();
}

DstJob::~DstJob() = default;

void DstJob::add_checker(std::unique_ptr<InvariantChecker> checker) {
  checkers_.push_back(std::move(checker));
}

void DstJob::add_checkers(std::vector<std::unique_ptr<InvariantChecker>> checkers) {
  for (auto& c : checkers) checkers_.push_back(std::move(c));
}

void DstJob::schedule_crash(int64_t at_virtual_ns) {
  q_.schedule_at(at_virtual_ns, [this] { crash_pending_ = true; });
}

void DstJob::schedule_fault(int64_t at_virtual_ns, std::function<void()> fn) {
  q_.schedule_at(at_virtual_ns, [this, fn = std::move(fn)] {
    trace_line("fault injected");
    fn();
  });
}

void DstJob::deploy() {
  instances_.clear();
  view_.instances.clear();
  view_.edges.clear();
  edge_locs_.clear();

  const auto& ops = graph_.operators();
  std::vector<size_t> first_instance(ops.size(), 0);
  size_t total = 0;
  for (size_t op = 0; op < ops.size(); ++op) {
    first_instance[op] = total;
    total += ops[op].parallelism;
  }
  instances_.reserve(total);
  for (size_t op = 0; op < ops.size(); ++op) {
    const OperatorDecl& decl = ops[op];
    for (uint32_t i = 0; i < decl.parallelism; ++i) {
      auto inst = std::make_unique<DstInstance>();
      inst->job = this;
      inst->index = instances_.size();
      inst->op_id = decl.id;
      inst->inst = i;
      inst->parallelism = decl.parallelism;
      inst->kind = decl.kind;
      inst->cfg = &graph_.config();
      if (decl.kind == OperatorKind::kSource) {
        inst->source = decl.source_factory();
      } else {
        inst->processor = decl.processor_factory();
      }
      instances_.push_back(std::move(inst));
    }
  }

  // Wire every link: per (src, dst) instance pair one real StreamBuffer over
  // one real InprocChannel. Wakeup callbacks become virtual-time events,
  // epoch-guarded so stale events from before a crash are inert.
  uint64_t ep = epoch_;
  for (const LinkDecl& l : graph_.links()) {
    const OperatorDecl& src_decl = ops[l.from_op];
    const OperatorDecl& dst_decl = ops[l.to_op];
    StreamBufferConfig buf_cfg = l.buffer_override.value_or(graph_.config().buffer);
    auto codec = std::make_shared<SelectiveCodec>(l.compression);
    l.partitioning->prepare(src_decl.parallelism);
    for (uint32_t s = 0; s < src_decl.parallelism; ++s) {
      DstInstance& src = *instances_[first_instance[l.from_op] + s];
      if (src.outputs.size() <= l.output_index) src.outputs.resize(l.output_index + 1);
      detail::DstOutLink& out = src.outputs[l.output_index];
      out.decl = &l;
      out.partitioning = l.partitioning;
      for (uint32_t d = 0; d < dst_decl.parallelism; ++d) {
        size_t dst_index = first_instance[l.to_op] + d;
        DstInstance& dst = *instances_[dst_index];
        auto channel = std::make_shared<InprocChannel>(graph_.config().channel);
        auto buffer = std::make_unique<StreamBuffer>(l.link_id, s, channel, codec, buf_cfg,
                                                     &src.metrics, &clock_, l.shed);
        size_t src_index = src.index;
        channel->set_data_callback([this, dst_index, ep] {
          if (ep == epoch_) notify(dst_index);
        });
        channel->set_writable_callback([this, src_index, ep] {
          if (ep == epoch_) notify(src_index);
        });
        dst.inputs.push_back(detail::DstInEdge{channel, FrameDecoder{}, 0, l.link_id, s,
                                               src_index, false,
                                               l.shed.policy != ShedPolicy::kNone, 0});
        out.dst.push_back(detail::DstOutBuffer{std::move(buffer), channel, dst_index, d});

        EdgeProbe probe;
        probe.link_id = l.link_id;
        probe.src_op = src.op_id;
        probe.src_instance = s;
        probe.src_index = src_index;
        probe.dst_op = dst.op_id;
        probe.dst_instance = d;
        probe.dst_index = dst_index;
        probe.buffer = out.dst.back().buffer.get();
        probe.channel = channel.get();
        probe.buffer_config = buf_cfg;
        probe.channel_config = graph_.config().channel;
        probe.lossy = l.shed.policy != ShedPolicy::kNone;
        probe.shed_config = l.shed;
        view_.edges.push_back(std::move(probe));
        edge_locs_.push_back(
            EdgeLoc{src_index, l.output_index, out.dst.size() - 1, dst_index,
                    dst.inputs.size() - 1});
      }
    }
  }

  for (auto& inst : instances_) {
    inst->open();
    InstanceProbe probe;
    probe.op_id = inst->op_id;
    probe.instance = inst->inst;
    probe.global_index = inst->index;
    probe.is_source = inst->kind == OperatorKind::kSource;
    probe.metrics = &inst->metrics;
    view_.instances.push_back(std::move(probe));
  }
  refresh_view();
}

void DstJob::start_epoch() {
  // Kick every instance once (mirrors Job::start); they self-reschedule or
  // sleep until a data/writable wakeup from then on.
  for (size_t i = 0; i < instances_.size(); ++i) notify(i);
  // Per-instance flush timer, mirroring the runtime's IO-thread cadence of
  // max(interval / 2, 500 µs) over the smallest configured interval.
  for (size_t i = 0; i < instances_.size(); ++i) {
    int64_t interval = 0;
    for (auto& out : instances_[i]->outputs) {
      for (auto& b : out.dst) {
        (void)b;
        int64_t fi = out.decl->buffer_override.value_or(graph_.config().buffer).flush_interval_ns;
        if (fi > 0 && (interval == 0 || fi < interval)) interval = fi;
      }
    }
    if (interval > 0) schedule_timer(i, std::max<int64_t>(interval / 2, 500'000));
  }
  if (opts_.checkpoint_interval_ns > 0) {
    uint64_t ep = epoch_;
    q_.schedule_in(opts_.checkpoint_interval_ns, [this, ep] {
      if (ep == epoch_) checkpoint_pending_ = true;
    });
  }
}

int64_t DstJob::wakeup_jitter() {
  return opts_.schedule_jitter_ns > 0
             ? static_cast<int64_t>(rng_.next_below(static_cast<uint64_t>(opts_.schedule_jitter_ns)))
             : 0;
}

void DstJob::notify(size_t inst_index) {
  schedule_execute(inst_index, 1 + wakeup_jitter());
}

void DstJob::schedule_execute(size_t inst_index, int64_t delay_ns) {
  DstInstance& inst = *instances_[inst_index];
  if (inst.done || inst.scheduled) return;
  inst.scheduled = true;
  uint64_t ep = epoch_;
  q_.schedule_in(delay_ns, [this, inst_index, ep] {
    if (ep != epoch_) return;
    DstInstance& i = *instances_[inst_index];
    i.scheduled = false;
    if (i.done) return;
    i.execute();
    {
      std::ostringstream os;
      os << "exec " << i.op_id << "[" << i.inst << "] work=" << i.slice_work
         << " in=" << i.metrics.packets_in.load(std::memory_order_relaxed)
         << " out=" << i.metrics.packets_out.load(std::memory_order_relaxed)
         << " blocked=" << (i.output_blocked ? 1 : 0) << " done=" << (i.done ? 1 : 0);
      trace_line(os.str());
    }
    if (i.resched && !i.done) {
      schedule_execute(inst_index,
                       opts_.execute_overhead_ns +
                           static_cast<int64_t>(i.slice_work) * opts_.packet_cost_ns +
                           wakeup_jitter());
    }
  });
}

void DstJob::schedule_timer(size_t inst_index, int64_t period_ns) {
  uint64_t ep = epoch_;
  q_.schedule_in(period_ns, [this, inst_index, ep, period_ns] {
    if (ep != epoch_) return;
    DstInstance& i = *instances_[inst_index];
    if (i.done) return;  // timer dies with the instance
    i.on_flush_timer();
    trace_line("timer " + i.op_id + "[" + std::to_string(i.inst) + "]");
    schedule_timer(inst_index, period_ns);
  });
}

bool DstJob::all_done() const {
  for (const auto& inst : instances_) {
    if (!inst->done) return false;
  }
  return true;
}

bool DstJob::quiescent() const {
  for (const auto& inst : instances_) {
    if (!inst->done && !inst->ready.empty()) return false;
    for (const auto& e : inst->inputs) {
      if (e.decoder.pending_bytes() > 0) return false;
      if (e.channel->in_flight_bytes() > 0) return false;
    }
    for (const auto& out : inst->outputs) {
      for (const auto& b : out.dst) {
        if (b.buffer->has_unflushed()) return false;
      }
    }
  }
  return true;
}

uint64_t DstJob::progress_signature() const {
  uint64_t sig = checkpoints_ * 31 + recoveries_ * 131;
  for (const auto& inst : instances_) {
    sig = sig * 1315423911u + inst->metrics.packets_in.load(std::memory_order_relaxed);
    sig = sig * 2654435761u + inst->metrics.packets_out.load(std::memory_order_relaxed);
    sig = sig * 97u + inst->metrics.flushes.load(std::memory_order_relaxed);
    sig = sig * 7u + (inst->done ? 1 : 0);
  }
  return sig;
}

void DstJob::refresh_view() {
  view_.now = q_.now();
  for (size_t i = 0; i < instances_.size(); ++i) {
    DstInstance& inst = *instances_[i];
    InstanceProbe& p = view_.instances[i];
    p.done = inst.done;
    p.scheduled = inst.scheduled;
    p.paused = inst.paused;
    p.ready_batches = inst.ready.size();
  }
  for (size_t i = 0; i < edge_locs_.size(); ++i) {
    const EdgeLoc& loc = edge_locs_[i];
    EdgeProbe& e = view_.edges[i];
    DstInstance& src = *instances_[loc.src];
    DstInstance& dst = *instances_[loc.dst];
    e.sent_seq = src.outputs[loc.link].dst[loc.pos].buffer->next_seq();
    e.received_seq = dst.inputs[loc.in_pos].expected_seq;
    e.shed_gap_packets = dst.inputs[loc.in_pos].shed_gap_packets;
    e.shed_packets = src.outputs[loc.link].dst[loc.pos].buffer->shed_packets();
    e.receiver_drained = dst.inputs[loc.in_pos].drained;
    e.sender_scheduled = src.scheduled;
    e.sender_done = src.done;
    e.receiver_done = dst.done;
  }
}

void DstJob::trace_line(std::string line) {
  std::string full = "@" + std::to_string(q_.now()) + " " + std::move(line);
  report_.trace_hash = fnv1a(report_.trace_hash == 0 ? kFnvOffset : report_.trace_hash, full);
  if (opts_.record_trace) report_.trace.push_back(std::move(full));
}

void DstJob::violation(const std::string& checker, const std::string& what) {
  report_.violations.push_back("[" + checker + "] seed=" + std::to_string(opts_.seed) +
                               " step=" + std::to_string(report_.steps) + " @" +
                               std::to_string(q_.now()) + ": " + what);
}

bool DstJob::step_once() {
  if (!q_.run_one()) return false;
  ++report_.steps;
  view_.step = report_.steps;
  refresh_view();
  for (auto& c : checkers_) {
    scratch_violations_.clear();
    c->on_step(view_, scratch_violations_);
    for (auto& v : scratch_violations_) violation(c->name(), v);
  }
  if (report_.violations.size() > 100) {
    violation("harness", "too many violations; aborting run");
    return false;
  }
  uint64_t sig = progress_signature();
  if (sig != last_progress_sig_) {
    last_progress_sig_ = sig;
    last_progress_step_ = report_.steps;
  } else if (report_.steps - last_progress_step_ > opts_.livelock_steps) {
    violation("harness", "livelock: no packet/flush progress for " +
                             std::to_string(opts_.livelock_steps) + " steps");
    return false;
  }
  return true;
}

void DstJob::do_checkpoint() {
  in_checkpoint_ = true;
  trace_line("checkpoint begin");
  for (auto& inst : instances_) {
    if (inst->kind == OperatorKind::kSource) inst->paused = true;
  }
  // Drain to a quiescent barrier: with sources paused the flush timers push
  // residual buffers out and processors finish in-flight batches — exactly
  // the real pause → quiesce protocol, but in bounded virtual time.
  uint64_t guard = 0;
  bool aborted = false;
  while (!quiescent() && !all_done()) {
    if (q_.empty() || guard++ > opts_.livelock_steps) {
      violation("harness", "checkpoint failed to quiesce");
      aborted = true;
      break;
    }
    if (!step_once()) {
      aborted = true;
      break;
    }
  }
  if (!aborted) {
    // Serialize → deserialize round trip: the snapshot used for recovery is
    // the one that went through the real wire format (magic/version/CRC).
    JobSnapshot snap = state_snapshot();
    ByteBuffer buf;
    snap.serialize(buf);
    snapshot_ = JobSnapshot::deserialize(buf.contents());
    ++checkpoints_;
    trace_line("checkpoint taken entries=" + std::to_string(snapshot_->size()));
  }
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i]->kind == OperatorKind::kSource) {
      instances_[i]->paused = false;
      notify(i);
    }
  }
  if (opts_.checkpoint_interval_ns > 0) {
    uint64_t ep = epoch_;
    q_.schedule_in(opts_.checkpoint_interval_ns, [this, ep] {
      if (ep == epoch_) checkpoint_pending_ = true;
    });
  }
  in_checkpoint_ = false;
}

void DstJob::do_recover() {
  trace_line("crash: killing epoch " + std::to_string(epoch_));
  ++epoch_;  // every pending execute/timer/checkpoint event is now inert
  edge_locs_.clear();
  deploy();
  if (snapshot_) {
    for (auto& inst : instances_) {
      Checkpointable* c = inst->source ? dynamic_cast<Checkpointable*>(inst->source.get())
                                       : dynamic_cast<Checkpointable*>(inst->processor.get());
      if (!c) continue;
      if (const std::vector<uint8_t>* state = snapshot_->find(inst->op_id, inst->inst)) {
        ByteReader r(*state);
        c->restore_state(r);
      }
    }
  }
  start_epoch();
  ++recoveries_;
  trace_line("recovered epoch=" + std::to_string(epoch_) +
             (snapshot_ ? " from checkpoint" : " from scratch"));
}

DstReport DstJob::run() {
  if (ran_) return report_;
  ran_ = true;
  // The process-global trace sampler holds a shared counter; two same-seed
  // runs in one process would otherwise stamp different trace ids into batch
  // headers. DST runs untraced.
  auto& sampler = obs::TraceSampler::global();
  uint32_t saved_period = sampler.period();
  sampler.set_period(0);
  report_.trace_hash = kFnvOffset;

  while (true) {
    if (report_.steps >= opts_.max_steps) {
      violation("harness", "step budget exhausted");
      break;
    }
    if (q_.now() > opts_.max_virtual_ns) {
      violation("harness", "virtual-time budget exhausted");
      break;
    }
    if (crash_pending_) {
      crash_pending_ = false;
      checkpoint_pending_ = false;
      do_recover();
    }
    if (checkpoint_pending_) {
      checkpoint_pending_ = false;
      do_checkpoint();
    }
    if (all_done()) break;
    if (q_.empty()) {
      violation("harness", "deadlock: event queue drained before all instances finished");
      break;
    }
    if (!step_once()) break;
  }

  report_.completed = all_done();
  report_.virtual_ns = q_.now();
  report_.checkpoints = checkpoints_;
  report_.recoveries = recoveries_;
  refresh_view();
  view_.completed = report_.completed;
  for (auto& c : checkers_) {
    scratch_violations_.clear();
    c->on_finish(view_, scratch_violations_);
    for (auto& v : scratch_violations_) violation(c->name(), v);
  }
  sampler.set_period(saved_period);
  return report_;
}

JobSnapshot DstJob::state_snapshot() const {
  JobSnapshot snap;
  for (const auto& inst : instances_) {
    const Checkpointable* c =
        inst->source ? dynamic_cast<const Checkpointable*>(inst->source.get())
                     : dynamic_cast<const Checkpointable*>(inst->processor.get());
    if (!c) continue;
    ByteBuffer buf;
    c->snapshot_state(buf);
    snap.put(inst->op_id, inst->inst,
             std::vector<uint8_t>(buf.contents().begin(), buf.contents().end()));
  }
  return snap;
}

std::vector<OperatorMetricsSnapshot> DstJob::metrics() const {
  std::vector<OperatorMetricsSnapshot> out;
  for (const auto& inst : instances_) {
    OperatorMetricsSnapshot m = snapshot_of(inst->metrics);
    m.operator_id = inst->op_id;
    m.instance = inst->inst;
    out.push_back(std::move(m));
  }
  return out;
}

std::shared_ptr<InprocChannel> DstJob::edge_channel(size_t edge_index) {
  const EdgeLoc& loc = edge_locs_.at(edge_index);
  return instances_[loc.src]->outputs[loc.link].dst[loc.pos].channel;
}

}  // namespace neptune::testkit
