#include "testkit/invariants.hpp"

#include <sstream>

#include "net/frame.hpp"

namespace neptune::testkit {

namespace {

std::string edge_name(const EdgeProbe& e) {
  std::ostringstream os;
  os << e.src_op << "[" << e.src_instance << "]->" << e.dst_op << "[" << e.dst_instance
     << "] link=" << e.link_id;
  return os.str();
}

class SequenceChecker final : public InvariantChecker {
 public:
  explicit SequenceChecker(bool allow_duplicates) : allow_duplicates_(allow_duplicates) {}
  const char* name() const override { return "sequence"; }

  void on_step(const DstView& view, std::vector<std::string>& out) override {
    for (const auto& e : view.edges) {
      if (e.received_seq > e.sent_seq) {
        out.push_back(edge_name(e) + ": receiver position " + std::to_string(e.received_seq) +
                      " passed sender position " + std::to_string(e.sent_seq) +
                      " (phantom packets)");
      }
    }
    for (const auto& i : view.instances) {
      uint64_t sv = i.metrics->seq_violations.load(std::memory_order_relaxed);
      if (sv > 0) {
        out.push_back(i.op_id + "[" + std::to_string(i.instance) +
                      "]: seq_violations=" + std::to_string(sv) + " (gap or reorder)");
      }
      if (!allow_duplicates_) {
        uint64_t dup = i.metrics->dup_frames_dropped.load(std::memory_order_relaxed);
        if (dup > 0) {
          out.push_back(i.op_id + "[" + std::to_string(i.instance) +
                        "]: dup_frames_dropped=" + std::to_string(dup));
        }
      }
    }
  }

  void on_finish(const DstView& view, std::vector<std::string>& out) override {
    if (!view.completed) return;
    for (const auto& e : view.edges) {
      if (e.lossy) {
        // A best-effort edge may end short of the sender position, but only
        // by packets the sender actually shed. (Admission drops never get a
        // sequence number; drop-oldest sheds after assignment, so the
        // deficit is bounded by the buffer's shed count.)
        uint64_t deficit = e.sent_seq - e.received_seq;
        if (e.received_seq > e.sent_seq || deficit > e.shed_packets) {
          out.push_back(edge_name(e) + ": completed with receiver at " +
                        std::to_string(e.received_seq) + " of " + std::to_string(e.sent_seq) +
                        " sent but only " + std::to_string(e.shed_packets) +
                        " shed (unaccounted loss)");
        }
      } else if (e.received_seq != e.sent_seq) {
        out.push_back(edge_name(e) + ": completed with receiver at " +
                      std::to_string(e.received_seq) + " of " + std::to_string(e.sent_seq) +
                      " sent (lost packets)");
      }
    }
  }

 private:
  bool allow_duplicates_;
};

class ConservationChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "conservation"; }

  void on_step(const DstView&, std::vector<std::string>&) override {}

  void on_finish(const DstView& view, std::vector<std::string>& out) override {
    if (!view.completed) return;
    // At completion every ready queue is empty and every edge is drained, so
    // each processor must have consumed exactly the packets its input edges
    // accepted.
    std::vector<uint64_t> inbound(view.instances.size(), 0);
    // received_seq is a *position*: on a lossy edge it advances over shed
    // gaps, which carried no packets — subtract them to get delivered count.
    for (const auto& e : view.edges) inbound[e.dst_index] += e.received_seq - e.shed_gap_packets;
    for (const auto& i : view.instances) {
      if (i.is_source) continue;
      uint64_t consumed = i.metrics->packets_in.load(std::memory_order_relaxed);
      if (consumed != inbound[i.global_index]) {
        out.push_back(i.op_id + "[" + std::to_string(i.instance) + "]: consumed " +
                      std::to_string(consumed) + " packets but input edges carried " +
                      std::to_string(inbound[i.global_index]));
      }
    }
  }
};

class CapacityChecker final : public InvariantChecker {
 public:
  explicit CapacityChecker(CapacityLimits limits) : limits_(limits) {}
  const char* name() const override { return "capacity"; }

  void on_step(const DstView& view, std::vector<std::string>& out) override {
    for (const auto& e : view.edges) {
      // Channel budget: in-flight bytes may exceed capacity only while a
      // single oversized frame (admitted into an empty pipe) is queued.
      size_t in_flight = e.channel->in_flight_bytes();
      if (in_flight > e.channel_config.capacity_bytes && e.channel->queued_frames() != 1) {
        out.push_back(edge_name(e) + ": channel holds " + std::to_string(in_flight) +
                      " bytes > capacity " + std::to_string(e.channel_config.capacity_bytes) +
                      " across " + std::to_string(e.channel->queued_frames()) + " frames");
      }
      // StreamBuffer bound: the accumulation side may overshoot the flush
      // threshold by one execution slice of packets (a blocked edge stops
      // the producer only at slice granularity), and one fully framed flush
      // may sit parked awaiting flow control.
      size_t slice = limits_.source_batch_budget * limits_.max_packet_bytes;
      size_t accum_bound = e.buffer_config.capacity_bytes + BatchHeader::kSize + slice;
      size_t pending_bound = e.buffer_config.capacity_bytes + BatchHeader::kSize +
                             limits_.max_packet_bytes + FrameHeader::kSize + 64;
      size_t buffered = e.buffer->buffered_bytes();
      if (buffered > accum_bound + pending_bound) {
        out.push_back(edge_name(e) + ": stream buffer holds " + std::to_string(buffered) +
                      " bytes > bound " + std::to_string(accum_bound + pending_bound) +
                      " (capacity " + std::to_string(e.buffer_config.capacity_bytes) + ")");
      }
    }
  }

 private:
  CapacityLimits limits_;
};

class BackpressureChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "backpressure"; }

  void on_step(const DstView& view, std::vector<std::string>& out) override {
    for (const auto& e : view.edges) {
      if (!e.buffer->blocked()) continue;
      if (e.sender_done || e.sender_scheduled) continue;  // wakeup in hand
      if (e.channel->closed()) continue;                  // next retry observes kClosed
      // Otherwise the channel must still owe the sender a writable wakeup,
      // and there must be queued frames whose consumption will trigger it.
      if (!e.channel->writable_wakeup_armed() || e.channel->queued_frames() == 0) {
        out.push_back(edge_name(e) +
                      ": sender flow-controlled with no wakeup path (armed=" +
                      std::to_string(e.channel->writable_wakeup_armed() ? 1 : 0) +
                      " queued=" + std::to_string(e.channel->queued_frames()) +
                      ") — lost wakeup");
      }
    }
  }
};

/// Overload-resilience properties: critical (lossless) edges never shed a
/// packet no matter the pressure, best-effort edges keep their buffered
/// bytes under the shed hard cap (bounded memory under overload), and shed
/// accounting is conservative — a receiver can never observe more missing
/// sequence positions than its sender actually shed.
class OverloadChecker final : public InvariantChecker {
 public:
  explicit OverloadChecker(CapacityLimits limits) : limits_(limits) {}
  const char* name() const override { return "overload"; }

  void on_step(const DstView& view, std::vector<std::string>& out) override {
    for (const auto& e : view.edges) {
      if (!e.lossy) {
        if (e.shed_packets > 0 || e.shed_gap_packets > 0) {
          out.push_back(edge_name(e) + ": critical edge shed packets (shed=" +
                        std::to_string(e.shed_packets) +
                        " gaps=" + std::to_string(e.shed_gap_packets) + ")");
        }
        continue;
      }
      if (e.shed_gap_packets > e.shed_packets) {
        out.push_back(edge_name(e) + ": receiver observed " +
                      std::to_string(e.shed_gap_packets) +
                      " shed packets but sender only shed " + std::to_string(e.shed_packets));
      }
      // Bounded memory: admission control must hold the accumulating batch
      // under the hard cap, modulo one execution slice of overshoot (the
      // producer is stopped at slice granularity) plus the parked frame.
      size_t cap = e.shed_config.max_buffered_bytes != 0
                       ? e.shed_config.max_buffered_bytes
                       : 2 * e.buffer_config.capacity_bytes;
      size_t slice = limits_.source_batch_budget * limits_.max_packet_bytes;
      size_t parked = e.buffer_config.capacity_bytes + BatchHeader::kSize +
                      limits_.max_packet_bytes + FrameHeader::kSize + 64;
      if (e.buffer->buffered_bytes() > cap + slice + parked) {
        out.push_back(edge_name(e) + ": best-effort edge holds " +
                      std::to_string(e.buffer->buffered_bytes()) + " bytes > shed cap " +
                      std::to_string(cap) + " + slack " + std::to_string(slice + parked) +
                      " (shedding failed to bound memory)");
      }
    }
  }

 private:
  CapacityLimits limits_;
};

class ExactlyOnceChecker final : public InvariantChecker {
 public:
  explicit ExactlyOnceChecker(JobSnapshot expected) : expected_(std::move(expected)) {}
  const char* name() const override { return "exactly-once"; }

  void on_step(const DstView&, std::vector<std::string>&) override {}

  void on_finish(const DstView& view, std::vector<std::string>& out) override {
    if (!view.completed) {
      out.push_back("job did not complete; final state not comparable");
      return;
    }
    JobSnapshot actual = view.job->state_snapshot();
    for (const auto& [key, bytes] : expected_) {
      const std::vector<uint8_t>* got = actual.find(key.first, key.second);
      if (!got) {
        out.push_back(key.first + "[" + std::to_string(key.second) +
                      "]: state missing from final snapshot");
      } else if (*got != bytes) {
        out.push_back(key.first + "[" + std::to_string(key.second) + "]: final state (" +
                      std::to_string(got->size()) + " bytes) differs from reference (" +
                      std::to_string(bytes.size()) + " bytes)");
      }
    }
    for (const auto& [key, bytes] : actual) {
      (void)bytes;
      if (!expected_.find(key.first, key.second)) {
        out.push_back(key.first + "[" + std::to_string(key.second) +
                      "]: unexpected state entry in final snapshot");
      }
    }
  }

 private:
  JobSnapshot expected_;
};

}  // namespace

std::unique_ptr<InvariantChecker> make_sequence_checker(bool allow_duplicates) {
  return std::make_unique<SequenceChecker>(allow_duplicates);
}

std::unique_ptr<InvariantChecker> make_conservation_checker() {
  return std::make_unique<ConservationChecker>();
}

std::unique_ptr<InvariantChecker> make_capacity_checker(CapacityLimits limits) {
  return std::make_unique<CapacityChecker>(limits);
}

std::unique_ptr<InvariantChecker> make_backpressure_checker() {
  return std::make_unique<BackpressureChecker>();
}

std::unique_ptr<InvariantChecker> make_overload_checker(CapacityLimits limits) {
  return std::make_unique<OverloadChecker>(limits);
}

std::unique_ptr<InvariantChecker> make_exactly_once_checker(JobSnapshot expected) {
  return std::make_unique<ExactlyOnceChecker>(std::move(expected));
}

std::vector<std::unique_ptr<InvariantChecker>> default_checkers(CapacityLimits limits) {
  std::vector<std::unique_ptr<InvariantChecker>> v;
  v.push_back(make_sequence_checker());
  v.push_back(make_conservation_checker());
  v.push_back(make_capacity_checker(limits));
  v.push_back(make_backpressure_checker());
  return v;
}

}  // namespace neptune::testkit
