#include "testkit/workloads.hpp"

namespace neptune::testkit {

void SeqSource::open(uint32_t instance, uint32_t parallelism) {
  instance_ = instance;
  parallelism_ = parallelism == 0 ? 1 : parallelism;
  quota_ = total_ / parallelism_ + (instance < total_ % parallelism_ ? 1 : 0);
}

bool SeqSource::next(Emitter& out, size_t budget) {
  if (emitted_ >= quota_) return false;
  for (size_t i = 0; i < budget && emitted_ < quota_; ++i) {
    int64_t id = static_cast<int64_t>(instance_ + emitted_ * parallelism_);
    StreamPacket p;
    p.add_i64(id);
    if (payload_bytes_ > 0) {
      std::vector<uint8_t> payload(payload_bytes_);
      for (size_t b = 0; b < payload.size(); ++b)
        payload[b] = static_cast<uint8_t>((id * 131 + static_cast<int64_t>(b)) & 0xFF);
      p.add_bytes(std::move(payload));
    }
    // Deterministic event time: replayed packets must be byte-identical so
    // windowed state converges after recovery. Never 0 (0 would make the
    // emitter stamp the current virtual time, which differs across replays).
    p.set_event_time_ns(1 + id * step_ns_);
    ++emitted_;
    if (out.emit(std::move(p)) == EmitStatus::kBackpressured) break;
  }
  return true;
}

}  // namespace neptune::testkit
