// Offline decoding + latency attribution for flight-recorder journals
// (observability layer, part 4). Consumed by tools/flightdump.cpp and the
// obs tests; lives in the library so both share one parser.
//
// Two input formats:
//  - JSONL incident bundles (IncidentReporter) — full fidelity: header,
//    topology descriptors, telemetry snapshot, spans, actors, events.
//  - Raw binary crash dumps ("NEPFR01\n", FlightRecorder::raw_dump) —
//    events + actors only, written from a signal handler.
//
// Attribution reconstructs, from the merged timeline alone, what the PR 2
// tracer could only sample: per-operator execute intervals (dispatch
// begin→end), per-edge blocked intervals (block→unblock, joined via the
// blocked-ns payload so cross-thread pairs still match), per-edge
// queue-wait (flush → next dispatch of the destination operator, mapped
// through the topology descriptor), and the bottleneck operator per time
// slice — the operator with the largest execute share of the slice.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/flight_recorder.hpp"

namespace neptune::obs {

struct JournalEvent {
  int64_t ts_ns = 0;
  uint32_t ring = 0;
  uint32_t tid = 0;
  uint32_t actor = 0;
  FlightEventType type = FlightEventType::kNone;
  uint64_t a = 0;
  uint64_t b = 0;
};

struct Journal {
  JsonValue header;                 ///< bundle header line; synthesized for raw dumps
  JsonArray topologies;             ///< "topology" lines (empty for raw dumps)
  JsonValue telemetry;              ///< "telemetry" line snapshot (null when absent)
  std::vector<JsonValue> spans;     ///< "span" lines
  std::vector<std::string> actors;  ///< index == actor id
  std::vector<JournalEvent> events; ///< sorted by ts_ns ascending
  int signal = 0;                   ///< raw dumps: the signal that fired (0 = explicit)

  const std::string& actor_name(uint32_t id) const;

  /// Parse a JSONL incident bundle. Throws std::runtime_error on malformed
  /// input (missing header, unparseable line).
  static Journal from_bundle(const std::string& path);
  /// Parse a raw binary crash dump. Tolerates a truncated tail (the
  /// process died mid-write): everything fully written is returned.
  static Journal from_raw(const std::string& path);
  /// Sniff the magic and dispatch to from_bundle / from_raw.
  static Journal from_file(const std::string& path);
};

/// Per-actor accounting within one time slice.
struct ActorSliceStats {
  double execute_s = 0;  ///< dispatch begin→end overlap with the slice
  double blocked_s = 0;  ///< block→unblock overlap (edge actors)
  uint64_t dispatches = 0;
  uint64_t flushes = 0;
  uint64_t sheds = 0;
};

struct SliceAttribution {
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  std::string bottleneck;              ///< operator actor name, or "idle"
  double bottleneck_busy_fraction = 0; ///< its execute_s / slice length
  std::map<std::string, ActorSliceStats> actors;
};

/// Cut the journal into `slice_ns` slices and name the bottleneck operator
/// of each: the actor with the largest execute share (edge actors — names
/// starting "edge " — never win; they report blocked time instead). Slices
/// where no operator reaches 1% busy are "idle".
std::vector<SliceAttribution> attribute_latency(const Journal& journal, int64_t slice_ns);

/// Per-edge roll-up over the whole journal. Queue-wait samples need a
/// topology descriptor (link id → destination operator) to join flushes to
/// downstream dispatches; without one only flush/shed/blocked accounting
/// is filled in.
struct EdgeLatency {
  uint64_t link = 0;
  std::string dst_op;      ///< from topology; "" when unknown
  uint64_t flushes = 0;
  uint64_t sheds = 0;
  uint64_t blocks = 0;
  double blocked_s = 0;
  uint64_t queue_wait_samples = 0;
  double queue_wait_mean_s = 0;
  double queue_wait_max_s = 0;
};
std::vector<EdgeLatency> edge_latency(const Journal& journal);

/// The single worst actor across the whole journal (most total execute
/// time); "" when the journal has no dispatch events. flightdump's
/// headline verdict and the fig4 acceptance check.
std::string overall_bottleneck(const Journal& journal, int64_t slice_ns = 100'000'000);

}  // namespace neptune::obs
