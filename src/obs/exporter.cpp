#include "obs/exporter.hpp"

#include <cstdio>

namespace neptune::obs {

JsonValue snapshot_to_json(const TelemetryRegistry& registry, const TelemetrySnapshot& snapshot) {
  JsonObject series;
  for (const SeriesSample& s : snapshot.values) {
    auto desc = registry.descriptor(s.series);
    if (!desc) continue;
    series[desc->key()] = JsonValue(s.value);
  }
  JsonObject o;
  o["ts_ns"] = JsonValue(snapshot.ts_ns);
  o["series"] = JsonValue(std::move(series));
  return JsonValue(std::move(o));
}

bool write_timeline_jsonl(const std::string& path, const TelemetryRegistry& registry,
                          const std::vector<TelemetrySnapshot>& snapshots) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const TelemetrySnapshot& snap : snapshots) {
    std::string line = snapshot_to_json(registry, snap).dump();
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

JsonValue timeline_to_json(const TelemetryRegistry& registry,
                           const std::vector<TelemetrySnapshot>& snapshots) {
  JsonArray arr;
  arr.reserve(snapshots.size());
  for (const TelemetrySnapshot& snap : snapshots) {
    arr.push_back(snapshot_to_json(registry, snap));
  }
  return JsonValue(std::move(arr));
}

}  // namespace neptune::obs
