// Always-on flight recorder (observability layer, part 4).
//
// A black box for the data path: every thread that touches a packet gets a
// fixed-size ring of compact 32-byte events (dispatch begin/end, flush,
// block/unblock, shed, quarantine, reconnect, checkpoint, watermark
// crossings). The hot path is one TLS pointer load, four relaxed atomic
// stores into the ring slot, and a single release cursor bump — no locks,
// no allocation, cheap enough to leave enabled in production. The PR 2
// tracer samples 1-in-N batches; the recorder keeps the *last N events of
// every thread*, so transient incidents (a 200 ms stall, a shed burst) are
// reconstructable after the fact.
//
// Rings are never freed: each ring is published into a fixed atomic slot
// array so a crash handler can walk them with async-signal-safe code only.
// Exiting threads retire their ring to a free list and the next new thread
// re-stamps it, which bounds memory by peak thread count, not by the total
// number of threads ever started.
//
// Concurrency notes:
//  - Ring slots are stored as 4 relaxed atomic u64 words (not a struct
//    memcpy) so concurrent merge/dump reads are data-race-free under TSan.
//  - A reader that races a wrap can observe torn *oldest* slots; the merge
//    path re-reads the cursor after copying and drops exactly the slots
//    that may have been overwritten. The crash dump path accepts the race
//    (the process is dying; the decoder tolerates a torn oldest record).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace neptune::obs {

enum class FlightEventType : uint8_t {
  kNone = 0,
  kDispatchBegin = 1,   ///< operator actor; a = batch packet count
  kDispatchEnd = 2,     ///< operator actor; a = batch packet count
  kFlush = 3,           ///< edge actor; a = frame bytes, b = link id
  kBlock = 4,           ///< edge actor; a = pending bytes, b = link id
  kUnblock = 5,         ///< edge actor; a = blocked ns, b = link id
  kShed = 6,            ///< edge actor; a = sheds so far, b = link id
  kQuarantine = 7,      ///< operator actor; a = packets quarantined, b = link id
  kReconnect = 8,       ///< edge actor; a = reconnects so far
  kCheckpoint = 9,      ///< job actor; a = checkpoints so far
  kRecovery = 10,       ///< job actor; a = recoveries so far
  kWatchdogStall = 11,  ///< operator actor; a = stalled ms
  kWatermarkLow = 12,   ///< operator actor; channel drained, producer resumed
  kIncident = 13,       ///< reporter actor; an incident bundle was written
  kMark = 14,           ///< free-form annotation (tests, benches)
};

/// Stable lowercase name ("dispatch_begin", "flush", ...) for bundles and
/// the flightdump CLI. Unknown values render as "unknown".
const char* flight_event_name(FlightEventType type);
/// Inverse of flight_event_name; kNone when the name is unknown.
FlightEventType flight_event_from_name(std::string_view name);

/// One decoded ring record. `a` and `b` are event-type-specific payloads
/// (see the enum comments); ts_ns is the steady clock (common/clock.hpp).
struct FlightEvent {
  int64_t ts_ns = 0;
  uint32_t actor = 0;
  FlightEventType type = FlightEventType::kNone;
  uint64_t a = 0;
  uint64_t b = 0;
};

/// A merged-timeline record: FlightEvent plus which ring (and OS thread)
/// produced it.
struct MergedFlightEvent {
  FlightEvent event;
  uint32_t ring = 0;
  uint32_t tid = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kMaxRings = 512;
  static constexpr size_t kMaxActors = 2048;
  static constexpr size_t kActorNameBytes = 64;  ///< incl. NUL, fixed slot
  static constexpr size_t kDefaultRingEvents = 8192;

  /// Process-wide instance (never destroyed; rings must outlive any crash
  /// handler invocation).
  static FlightRecorder& global();

  /// Recording master switch. Defaults to on; NEPTUNE_FLIGHT_RECORDER=0
  /// (or "off"/"false") disables it at startup. Toggling is safe at any
  /// time; record() becomes a single relaxed load + branch when off.
  static bool enabled();
  static void set_enabled(bool on);

  /// Intern `name` (truncated to 63 bytes) and return its actor id.
  /// Dedupes: the same name always maps to the same id. Cold path (mutex).
  /// Returns 0 ("?") once the fixed actor table is full.
  static uint32_t register_actor(std::string_view name);

  /// Hot path: append one event to the calling thread's ring. Lazily
  /// acquires a ring on first use per thread (cold). No-op when disabled
  /// or when the ring table is exhausted.
  static void record(uint32_t actor, FlightEventType type, uint64_t a = 0, uint64_t b = 0);

  /// Cold: copy every ring and merge by timestamp (non-decreasing ts_ns).
  /// Safe against concurrent writers; slots that may have been overwritten
  /// mid-copy are dropped rather than returned torn.
  std::vector<MergedFlightEvent> snapshot_merged() const;

  /// Registered actor names, index == actor id (index 0 is "?").
  std::vector<std::string> actor_names() const;
  const char* actor_name(uint32_t id) const;  ///< AS-safe, never nullptr

  /// Ring size (in events, rounded up to a power of two) for rings created
  /// *after* this call; existing rings keep their size. Test knob.
  void set_ring_capacity(size_t events);

  // ---- health / stats (relaxed; for /healthz.json) -----------------------
  size_t rings_created() const;
  size_t rings_free() const;       ///< retired by exited threads, reusable
  uint64_t events_recorded() const;  ///< sum of ring cursors (approximate)
  uint64_t ring_table_overflows() const;
  size_t actors_registered() const;

  /// Async-signal-safe: write the raw binary journal (magic "NEPFR01\n",
  /// actor table, every ring verbatim) to `fd` using only write(2).
  /// `signal` is stamped into the header (0 = explicit dump).
  void raw_dump(int fd, int signal) const;
  /// Cold convenience wrapper: open/trunc `path` and raw_dump into it.
  bool raw_dump_to_file(const char* path, int signal = 0) const;

  /// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that raw_dump
  /// the rings to "<dir>/crash-<pid>-sig<n>.nfr" and then re-raise with the
  /// default disposition. `dir` is copied into static storage (truncated to
  /// 512 bytes) and must exist. Async-signal-safe by construction: the
  /// handler uses only open/write/close and pre-published fixed tables.
  static void install_crash_handler(const char* dir);

  // Internal (used by the TLS ring lease on thread exit).
  struct ThreadRing;
  void retire_ring(ThreadRing* ring);

 private:
  FlightRecorder();
  ThreadRing* acquire_ring();
  void record_impl(uint32_t actor, FlightEventType type, uint64_t a, uint64_t b);

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> ring_capacity_{kDefaultRingEvents};

  std::atomic<ThreadRing*> rings_[kMaxRings] = {};
  std::atomic<uint32_t> ring_count_{0};
  std::atomic<uint64_t> ring_overflows_{0};

  char actor_names_[kMaxActors][kActorNameBytes] = {};
  std::atomic<uint32_t> actor_count_{0};

  friend struct FlightRecorderTestPeer;
};

}  // namespace neptune::obs
