#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/clock.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace neptune::obs {

namespace {

constexpr char kRawMagic[8] = {'N', 'E', 'P', 'F', 'R', '0', '1', '\n'};
constexpr uint64_t kRingMarker = 0x474E4952;  // "RING"

uint32_t current_tid() {
#if defined(__linux__)
  return static_cast<uint32_t>(::syscall(SYS_gettid));
#else
  return static_cast<uint32_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
}

size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// AS-safe write loop (EINTR-tolerant). Returns false on any other error.
bool write_all_fd(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool write_u64(int fd, uint64_t v) { return write_all_fd(fd, &v, sizeof v); }

// AS-safe unsigned decimal formatter; returns chars written.
size_t format_u64(char* out, uint64_t v) {
  char tmp[24];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

}  // namespace

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kDispatchBegin: return "dispatch_begin";
    case FlightEventType::kDispatchEnd: return "dispatch_end";
    case FlightEventType::kFlush: return "flush";
    case FlightEventType::kBlock: return "block";
    case FlightEventType::kUnblock: return "unblock";
    case FlightEventType::kShed: return "shed";
    case FlightEventType::kQuarantine: return "quarantine";
    case FlightEventType::kReconnect: return "reconnect";
    case FlightEventType::kCheckpoint: return "checkpoint";
    case FlightEventType::kRecovery: return "recovery";
    case FlightEventType::kWatchdogStall: return "watchdog_stall";
    case FlightEventType::kWatermarkLow: return "watermark_low";
    case FlightEventType::kIncident: return "incident";
    case FlightEventType::kMark: return "mark";
  }
  return "unknown";
}

FlightEventType flight_event_from_name(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(FlightEventType::kMark); ++i) {
    auto t = static_cast<FlightEventType>(i);
    if (name == flight_event_name(t)) return t;
  }
  return FlightEventType::kNone;
}

// One per-thread ring: `capacity * 4` relaxed atomic words (ts, actor|type,
// a, b per slot) plus a single monotonically increasing cursor. The writer
// owns head exclusively; readers use acquire loads on it.
struct FlightRecorder::ThreadRing {
  uint32_t index = 0;
  std::atomic<uint32_t> tid{0};
  size_t capacity = 0;  // power of two, immutable after creation
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t>* words = nullptr;  // never freed

  void push(int64_t ts_ns, uint32_t actor, FlightEventType type, uint64_t a, uint64_t b) {
    uint64_t h = head.load(std::memory_order_relaxed);
    std::atomic<uint64_t>* slot = words + (h & (capacity - 1)) * 4;
    slot[0].store(static_cast<uint64_t>(ts_ns), std::memory_order_relaxed);
    slot[1].store(static_cast<uint64_t>(actor) |
                      (static_cast<uint64_t>(static_cast<uint8_t>(type)) << 32),
                  std::memory_order_relaxed);
    slot[2].store(a, std::memory_order_relaxed);
    slot[3].store(b, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  static FlightEvent decode_slot(const std::atomic<uint64_t>* slot) {
    FlightEvent ev;
    ev.ts_ns = static_cast<int64_t>(slot[0].load(std::memory_order_relaxed));
    uint64_t meta = slot[1].load(std::memory_order_relaxed);
    ev.actor = static_cast<uint32_t>(meta & 0xFFFFFFFFu);
    ev.type = static_cast<FlightEventType>((meta >> 32) & 0xFF);
    ev.a = slot[2].load(std::memory_order_relaxed);
    ev.b = slot[3].load(std::memory_order_relaxed);
    return ev;
  }
};

namespace {

// Free list of retired rings, reusable by new threads. Cold path only.
std::mutex g_ring_mu;
std::vector<FlightRecorder::ThreadRing*> g_free_rings;
std::mutex g_actor_mu;

// TLS lease: retires the ring when the thread exits so a long-lived process
// spawning short-lived threads stays bounded by *peak* concurrency. If some
// later-destroyed thread_local records after this runs, it simply acquires
// a fresh ring that is never retired — bounded by kMaxRings.
struct RingLease {
  FlightRecorder::ThreadRing* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) {
      FlightRecorder::global().retire_ring(ring);
      ring = nullptr;
    }
  }
};
thread_local RingLease t_lease;

}  // namespace

FlightRecorder::FlightRecorder() {
  static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t),
                "crash dump writes the atomic word array verbatim");
  std::snprintf(actor_names_[0], kActorNameBytes, "?");
  actor_count_.store(1, std::memory_order_release);
  if (const char* env = std::getenv("NEPTUNE_FLIGHT_RECORDER")) {
    std::string_view v(env);
    if (v == "0" || v == "off" || v == "false") enabled_.store(false, std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::global() {
  // Leaked on purpose: crash handlers may fire during static destruction.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

bool FlightRecorder::enabled() {
  return global().enabled_.load(std::memory_order_relaxed);
}

void FlightRecorder::set_enabled(bool on) {
  global().enabled_.store(on, std::memory_order_relaxed);
}

void FlightRecorder::set_ring_capacity(size_t events) {
  ring_capacity_.store(round_up_pow2(std::max<size_t>(events, 8)), std::memory_order_relaxed);
}

uint32_t FlightRecorder::register_actor(std::string_view name) {
  FlightRecorder& self = global();
  std::lock_guard<std::mutex> lock(g_actor_mu);
  uint32_t count = self.actor_count_.load(std::memory_order_relaxed);
  char truncated[kActorNameBytes] = {};
  std::memcpy(truncated, name.data(), std::min(name.size(), kActorNameBytes - 1));
  for (uint32_t i = 0; i < count; ++i) {
    if (std::strncmp(self.actor_names_[i], truncated, kActorNameBytes) == 0) return i;
  }
  if (count >= kMaxActors) return 0;
  std::memcpy(self.actor_names_[count], truncated, kActorNameBytes);
  self.actor_count_.store(count + 1, std::memory_order_release);
  return count;
}

const char* FlightRecorder::actor_name(uint32_t id) const {
  uint32_t count = actor_count_.load(std::memory_order_acquire);
  if (id >= count) return "?";
  return actor_names_[id];
}

std::vector<std::string> FlightRecorder::actor_names() const {
  uint32_t count = actor_count_.load(std::memory_order_acquire);
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.emplace_back(actor_names_[i]);
  return out;
}

FlightRecorder::ThreadRing* FlightRecorder::acquire_ring() {
  std::lock_guard<std::mutex> lock(g_ring_mu);
  if (!g_free_rings.empty()) {
    ThreadRing* ring = g_free_rings.back();
    g_free_rings.pop_back();
    ring->head.store(0, std::memory_order_release);
    ring->tid.store(current_tid(), std::memory_order_release);
    return ring;
  }
  uint32_t index = ring_count_.load(std::memory_order_relaxed);
  if (index >= kMaxRings) {
    ring_overflows_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  size_t capacity = ring_capacity_.load(std::memory_order_relaxed);
  auto* ring = new ThreadRing();
  ring->index = index;
  ring->tid.store(current_tid(), std::memory_order_relaxed);
  ring->capacity = capacity;
  ring->words = new std::atomic<uint64_t>[capacity * 4]();
  rings_[index].store(ring, std::memory_order_release);
  ring_count_.store(index + 1, std::memory_order_release);
  return ring;
}

void FlightRecorder::retire_ring(ThreadRing* ring) {
  std::lock_guard<std::mutex> lock(g_ring_mu);
  g_free_rings.push_back(ring);
}

void FlightRecorder::record(uint32_t actor, FlightEventType type, uint64_t a, uint64_t b) {
  FlightRecorder& self = global();
  if (!self.enabled_.load(std::memory_order_relaxed)) return;
  self.record_impl(actor, type, a, b);
}

void FlightRecorder::record_impl(uint32_t actor, FlightEventType type, uint64_t a, uint64_t b) {
  ThreadRing* ring = t_lease.ring;
  if (ring == nullptr) {
    ring = acquire_ring();
    if (ring == nullptr) return;
    t_lease.ring = ring;
  }
  ring->push(now_ns(), actor, type, a, b);
}

std::vector<MergedFlightEvent> FlightRecorder::snapshot_merged() const {
  std::vector<MergedFlightEvent> out;
  uint32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (uint32_t r = 0; r < ring_count; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    uint64_t h1 = ring->head.load(std::memory_order_acquire);
    size_t n = static_cast<size_t>(std::min<uint64_t>(h1, ring->capacity));
    std::vector<FlightEvent> copied;
    copied.reserve(n);
    for (uint64_t seq = h1 - n; seq < h1; ++seq) {
      copied.push_back(ThreadRing::decode_slot(ring->words + (seq & (ring->capacity - 1)) * 4));
    }
    // The writer may have lapped us while we copied: slots at the *old* end
    // of the window are untrustworthy. Drop exactly that many.
    uint64_t h2 = ring->head.load(std::memory_order_acquire);
    uint64_t lapped = h2 - h1;
    size_t skip = static_cast<size_t>(std::min<uint64_t>(lapped, n));
    uint32_t tid = ring->tid.load(std::memory_order_relaxed);
    for (size_t i = skip; i < copied.size(); ++i) {
      out.push_back(MergedFlightEvent{copied[i], r, tid});
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const MergedFlightEvent& a, const MergedFlightEvent& b) {
    return a.event.ts_ns < b.event.ts_ns;
  });
  return out;
}

size_t FlightRecorder::rings_created() const {
  return ring_count_.load(std::memory_order_acquire);
}

size_t FlightRecorder::rings_free() const {
  std::lock_guard<std::mutex> lock(g_ring_mu);
  return g_free_rings.size();
}

uint64_t FlightRecorder::events_recorded() const {
  uint64_t total = 0;
  uint32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (uint32_t r = 0; r < ring_count; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FlightRecorder::ring_table_overflows() const {
  return ring_overflows_.load(std::memory_order_relaxed);
}

size_t FlightRecorder::actors_registered() const {
  return actor_count_.load(std::memory_order_acquire);
}

// Raw binary journal, async-signal-safe. Layout (all native-endian u64/i64):
//   char[8]  magic "NEPFR01\n"
//   u64      version (1)
//   u64      signal number (0 = explicit dump)
//   i64      steady clock now_ns at dump time
//   i64      CLOCK_REALTIME ns at dump time
//   u64      actor_count, then actor_count * 64 raw name bytes
//   u64      ring_count, then per ring:
//     u64 marker "RING", u64 index, u64 tid, u64 capacity, u64 head,
//     capacity * 4 u64 slot words verbatim
void FlightRecorder::raw_dump(int fd, int signal) const {
  if (!write_all_fd(fd, kRawMagic, sizeof kRawMagic)) return;
  timespec wall{};
  clock_gettime(CLOCK_REALTIME, &wall);
  write_u64(fd, 1);
  write_u64(fd, static_cast<uint64_t>(signal));
  write_u64(fd, static_cast<uint64_t>(now_ns()));
  write_u64(fd, static_cast<uint64_t>(wall.tv_sec) * 1'000'000'000ull +
                    static_cast<uint64_t>(wall.tv_nsec));
  uint32_t actors = actor_count_.load(std::memory_order_acquire);
  write_u64(fd, actors);
  write_all_fd(fd, actor_names_, static_cast<size_t>(actors) * kActorNameBytes);
  uint32_t ring_count = ring_count_.load(std::memory_order_acquire);
  // Count non-null slots first so the decoder can trust the count.
  uint64_t present = 0;
  for (uint32_t r = 0; r < ring_count; ++r) {
    if (rings_[r].load(std::memory_order_acquire) != nullptr) ++present;
  }
  write_u64(fd, present);
  for (uint32_t r = 0; r < ring_count; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    write_u64(fd, kRingMarker);
    write_u64(fd, ring->index);
    write_u64(fd, ring->tid.load(std::memory_order_relaxed));
    write_u64(fd, ring->capacity);
    write_u64(fd, ring->head.load(std::memory_order_acquire));
    // Benign race: a live writer may overwrite the oldest slot mid-write.
    // The decoder orders slots by the head we just recorded and the torn
    // record (if any) is the oldest one — acceptable for a crash artifact.
    write_all_fd(fd, ring->words, ring->capacity * 4 * sizeof(uint64_t));
  }
}

bool FlightRecorder::raw_dump_to_file(const char* path, int signal) const {
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  raw_dump(fd, signal);
  ::close(fd);
  return true;
}

namespace {

char g_crash_dir[512] = {};

extern "C" void neptune_flight_crash_handler(int sig) {
  // Async-signal-safe only: open/write/close plus fixed pre-published
  // tables inside raw_dump. Path: "<dir>/crash-<pid>-sig<n>.nfr".
  char path[640];
  size_t off = 0;
  size_t dir_len = ::strnlen(g_crash_dir, sizeof g_crash_dir);
  std::memcpy(path, g_crash_dir, dir_len);
  off = dir_len;
  const char kPrefix[] = "/crash-";
  std::memcpy(path + off, kPrefix, sizeof kPrefix - 1);
  off += sizeof kPrefix - 1;
  off += format_u64(path + off, static_cast<uint64_t>(::getpid()));
  const char kSig[] = "-sig";
  std::memcpy(path + off, kSig, sizeof kSig - 1);
  off += sizeof kSig - 1;
  off += format_u64(path + off, static_cast<uint64_t>(sig));
  const char kExt[] = ".nfr";
  std::memcpy(path + off, kExt, sizeof kExt);  // includes NUL
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    FlightRecorder::global().raw_dump(fd, sig);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition; re-raise to die with
  // the original signal so exit status / core dumps behave normally.
  ::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handler(const char* dir) {
  global();  // force construction before any signal can fire
  std::memset(g_crash_dir, 0, sizeof g_crash_dir);
  std::strncpy(g_crash_dir, dir, sizeof g_crash_dir - 1);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = neptune_flight_crash_handler;
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace neptune::obs
