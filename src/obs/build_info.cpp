#include "obs/build_info.hpp"

#include <mutex>
#include <vector>

#include "common/clock.hpp"

// The CMake lists stamp these onto the obs library; fall back to something
// honest when building outside the tree (e.g. a bare compiler invocation).
#ifndef NEPTUNE_VERSION_STRING
#define NEPTUNE_VERSION_STRING "0.0.0-untracked"
#endif
#ifndef NEPTUNE_GIT_SHA
#define NEPTUNE_GIT_SHA "unknown"
#endif
#ifndef NEPTUNE_SANITIZE_STRING
#define NEPTUNE_SANITIZE_STRING "none"
#endif

namespace neptune::obs {

namespace {

// Stamped at first use so uptime covers (almost) the whole process life;
// every entry point into the obs layer funnels through here early.
const int64_t g_process_start_ns = now_ns();

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{NEPTUNE_VERSION_STRING, NEPTUNE_GIT_SHA,
                              std::string(NEPTUNE_SANITIZE_STRING).empty()
                                  ? "none"
                                  : NEPTUNE_SANITIZE_STRING};
  return info;
}

double process_uptime_seconds() {
  return static_cast<double>(now_ns() - g_process_start_ns) * 1e-9;
}

void ensure_build_info_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    const BuildInfo& info = build_info();
    TelemetryRegistry& reg = TelemetryRegistry::global();
    // Leaked handles: build identity is process-scoped, never unregistered.
    static std::vector<TelemetryRegistry::Handle> handles;
    handles.push_back(reg.register_series(
        {"neptune_build_info",
         {{"version", info.version}, {"git_sha", info.git_sha}, {"sanitizers", info.sanitizers}},
         SeriesKind::kGauge,
         "Constant 1; build identity carried in the labels"},
        [] { return 1.0; }));
    handles.push_back(reg.register_series(
        {"neptune_uptime_seconds_total",
         {},
         SeriesKind::kCounter,
         "Seconds since process start (steady clock)"},
        [] { return process_uptime_seconds(); }));
  });
}

}  // namespace neptune::obs
