// Batch-flow tracing (observability layer, part 2).
//
// A sampled fraction of batches carry a trace context — {trace id, origin
// timestamp} — stamped into the batch header at StreamBuffer flush time and
// carried inside the frame payload across TCP and in-process edges. The
// receiving instance closes the hop when the batch finishes executing,
// yielding one TraceSpan per traversed edge with four phases:
//
//   buffer-wait  first packet buffered .. flush        (StreamBuffer)
//   wire         flush .. frame pulled off the channel (transport + queue)
//   queue-wait   pulled .. batch execution begins      (ready_ backlog)
//   execute      execution begins .. batch fully processed
//
// When a traced batch is being executed, batches flushed downstream by the
// same instance inherit the trace id and origin, so a trace follows the
// data hop-by-hop through the graph (source -> relay -> sink), which is
// what makes end-to-end latency decomposable per hop.
//
// Sampling is 1-in-N at batch granularity (default 128, overridable via the
// NEPTUNE_TRACE_SAMPLE env var; 0 disables). Untraced batches pay only a
// zeroed 32-byte header extension per *batch* — nothing per packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace neptune::obs {

/// Travels with a batch inside the frame payload. trace_id == 0 ≡ untraced.
struct TraceContext {
  uint64_t trace_id = 0;
  int64_t origin_ns = 0;  ///< steady-clock ns when the trace started (at the source)

  bool active() const { return trace_id != 0; }
};

/// One hop of one traced batch: an edge traversal closed at execution.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint32_t link_id = 0;
  uint32_t src_instance = 0;
  uint32_t dst_instance = 0;
  std::string dst_operator;

  int64_t origin_ns = 0;       ///< trace start at the origin operator
  int64_t batch_start_ns = 0;  ///< first packet buffered on this hop
  int64_t flush_ns = 0;        ///< frame left the stream buffer
  int64_t recv_ns = 0;         ///< frame pulled off the channel at the destination
  int64_t exec_start_ns = 0;   ///< batch execution began
  int64_t exec_end_ns = 0;     ///< last packet of the batch processed

  uint32_t batch_count = 0;  ///< packets in the batch
  uint32_t bytes = 0;        ///< decoded payload bytes

  int64_t buffer_wait_ns() const { return flush_ns - batch_start_ns; }
  int64_t wire_ns() const { return recv_ns - flush_ns; }
  int64_t queue_wait_ns() const { return exec_start_ns - recv_ns; }
  int64_t execute_ns() const { return exec_end_ns - exec_start_ns; }
  /// Origin to fully processed — end-to-end for this hop's completion.
  int64_t total_ns() const { return exec_end_ns - origin_ns; }
};

/// Decides which batches start a trace and hands out unique trace ids.
class TraceSampler {
 public:
  static constexpr uint32_t kDefaultPeriod = 128;

  explicit TraceSampler(uint32_t period = kDefaultPeriod) : period_(period) {}

  /// Called at batch start. Returns an active context for every `period`-th
  /// batch, an inactive one otherwise.
  TraceContext maybe_start(int64_t now_ns);

  void set_period(uint32_t period) { period_.store(period, std::memory_order_relaxed); }
  uint32_t period() const { return period_.load(std::memory_order_relaxed); }

  /// Process-wide sampler; period initialized from NEPTUNE_TRACE_SAMPLE.
  static TraceSampler& global();

 private:
  std::atomic<uint32_t> period_;
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> next_id_{1};
};

/// Bounded sink for completed spans. Cold path only (sampled batches), so a
/// mutex-guarded ring is fine.
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 8192) : capacity_(capacity) {}

  void record(TraceSpan span);

  std::vector<TraceSpan> spans() const;
  size_t size() const;
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void clear();

  /// One JSON object per line; returns false if the file can't be written.
  bool dump_jsonl(const std::string& path) const;

  static TraceCollector& global();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceSpan> ring_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace neptune::obs
