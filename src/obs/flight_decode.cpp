#include "obs/flight_decode.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace neptune::obs {

namespace {

constexpr char kRawMagic[8] = {'N', 'E', 'P', 'F', 'R', '0', '1', '\n'};
constexpr uint64_t kRingMarker = 0x474E4952;  // "RING"
constexpr size_t kActorNameBytes = FlightRecorder::kActorNameBytes;

const std::string kUnknownActor = "?";

// Operator actors are "task[instance]"; edge actors are "edge ...". The
// task name is what topology links reference.
std::string task_of_actor(const std::string& actor) {
  size_t bracket = actor.find('[');
  if (bracket == std::string::npos) return actor;
  return actor.substr(0, bracket);
}

bool is_edge_actor(const std::string& actor) { return actor.rfind("edge ", 0) == 0; }

struct Interval {
  int64_t begin_ns;
  int64_t end_ns;
  uint32_t actor;
};

// Clip `iv` to [begin, end) and return the overlap in seconds.
double overlap_s(const Interval& iv, int64_t begin, int64_t end) {
  int64_t lo = std::max(iv.begin_ns, begin);
  int64_t hi = std::min(iv.end_ns, end);
  return hi > lo ? static_cast<double>(hi - lo) * 1e-9 : 0.0;
}

}  // namespace

const std::string& Journal::actor_name(uint32_t id) const {
  if (id >= actors.size()) return kUnknownActor;
  return actors[id];
}

Journal Journal::from_bundle(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("flight_decode: cannot open " + path);
  Journal journal;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    try {
      value = JsonValue::parse(line);
    } catch (const JsonError& e) {
      throw std::runtime_error("flight_decode: " + path + ":" + std::to_string(line_no) +
                               ": " + e.what());
    }
    std::string kind = value.string_or("kind", "");
    if (kind == "header") {
      journal.header = value;
    } else if (kind == "topology") {
      journal.topologies.push_back(value.at("topology"));
    } else if (kind == "telemetry") {
      journal.telemetry = value.at("snapshot");
    } else if (kind == "span") {
      journal.spans.push_back(value);
    } else if (kind == "actor") {
      auto id = static_cast<size_t>(value.at("id").as_int());
      if (journal.actors.size() <= id) journal.actors.resize(id + 1, kUnknownActor);
      journal.actors[id] = value.at("name").as_string();
    } else if (kind == "event") {
      JournalEvent ev;
      ev.ts_ns = value.at("ts_ns").as_int();
      ev.ring = static_cast<uint32_t>(value.at("ring").as_int());
      ev.tid = static_cast<uint32_t>(value.at("tid").as_int());
      ev.actor = static_cast<uint32_t>(value.at("actor").as_int());
      ev.type = flight_event_from_name(value.at("type").as_string());
      ev.a = static_cast<uint64_t>(value.at("a").as_int());
      ev.b = static_cast<uint64_t>(value.at("b").as_int());
      journal.events.push_back(ev);
    }
  }
  if (!journal.header.is_object()) {
    throw std::runtime_error("flight_decode: " + path + ": no header line");
  }
  std::stable_sort(journal.events.begin(), journal.events.end(),
                   [](const JournalEvent& a, const JournalEvent& b) { return a.ts_ns < b.ts_ns; });
  return journal;
}

Journal Journal::from_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("flight_decode: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  size_t off = 0;
  auto remaining = [&] { return data.size() - off; };
  auto read_u64 = [&](uint64_t& out) {
    if (remaining() < sizeof out) return false;
    std::memcpy(&out, data.data() + off, sizeof out);
    off += sizeof out;
    return true;
  };

  if (data.size() < sizeof kRawMagic ||
      std::memcmp(data.data(), kRawMagic, sizeof kRawMagic) != 0) {
    throw std::runtime_error("flight_decode: " + path + ": bad magic");
  }
  off = sizeof kRawMagic;

  Journal journal;
  uint64_t version = 0, signal = 0, steady_ns = 0, wall_ns = 0, actor_count = 0;
  if (!read_u64(version) || version != 1) {
    throw std::runtime_error("flight_decode: " + path + ": unsupported version");
  }
  read_u64(signal);
  read_u64(steady_ns);
  read_u64(wall_ns);
  journal.signal = static_cast<int>(signal);
  {
    JsonObject header;
    header["kind"] = JsonValue(std::string("header"));
    header["bundle"] = JsonValue(std::string("neptune-crash-dump"));
    header["version"] = JsonValue(static_cast<int64_t>(version));
    header["trigger"] = JsonValue(std::string(signal != 0 ? "signal" : "explicit_dump"));
    header["signal"] = JsonValue(static_cast<int64_t>(signal));
    header["steady_ns"] = JsonValue(static_cast<int64_t>(steady_ns));
    header["wall_unix_ns"] = JsonValue(static_cast<int64_t>(wall_ns));
    journal.header = JsonValue(std::move(header));
  }

  if (!read_u64(actor_count)) return journal;
  for (uint64_t i = 0; i < actor_count; ++i) {
    if (remaining() < kActorNameBytes) return journal;  // truncated tail
    char name[kActorNameBytes];
    std::memcpy(name, data.data() + off, kActorNameBytes);
    name[kActorNameBytes - 1] = '\0';
    journal.actors.emplace_back(name);
    off += kActorNameBytes;
  }

  uint64_t ring_count = 0;
  if (!read_u64(ring_count)) return journal;
  for (uint64_t r = 0; r < ring_count; ++r) {
    uint64_t marker = 0, index = 0, tid = 0, capacity = 0, head = 0;
    if (!read_u64(marker) || marker != kRingMarker) break;
    if (!read_u64(index) || !read_u64(tid) || !read_u64(capacity) || !read_u64(head)) break;
    if (capacity == 0 || capacity > (1u << 24) || remaining() < capacity * 4 * sizeof(uint64_t)) {
      break;  // truncated or implausible — keep what we have
    }
    uint64_t n = std::min(head, capacity);
    for (uint64_t seq = head - n; seq < head; ++seq) {
      const char* slot = data.data() + off + (seq & (capacity - 1)) * 4 * sizeof(uint64_t);
      uint64_t words[4];
      std::memcpy(words, slot, sizeof words);
      JournalEvent ev;
      ev.ts_ns = static_cast<int64_t>(words[0]);
      ev.actor = static_cast<uint32_t>(words[1] & 0xFFFFFFFFu);
      ev.type = static_cast<FlightEventType>((words[1] >> 32) & 0xFF);
      ev.a = words[2];
      ev.b = words[3];
      ev.ring = static_cast<uint32_t>(index);
      ev.tid = static_cast<uint32_t>(tid);
      journal.events.push_back(ev);
    }
    off += capacity * 4 * sizeof(uint64_t);
  }
  std::stable_sort(journal.events.begin(), journal.events.end(),
                   [](const JournalEvent& a, const JournalEvent& b) { return a.ts_ns < b.ts_ns; });
  return journal;
}

Journal Journal::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("flight_decode: cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof magic);
  in.close();
  if (std::memcmp(magic, kRawMagic, sizeof kRawMagic) == 0) return from_raw(path);
  return from_bundle(path);
}

namespace {

// Reconstruct execute intervals (dispatch begin→end, paired per actor+ring
// since a dispatch never migrates threads mid-flight) and blocked intervals
// (derived from kUnblock's blocked-ns payload, so the block/unblock pair
// may land on different threads). Open intervals are closed at `end_ns`.
void reconstruct_intervals(const Journal& journal, std::vector<Interval>& execute,
                           std::vector<Interval>& blocked) {
  std::map<std::pair<uint32_t, uint32_t>, int64_t> open_dispatch;  // (actor, ring) -> begin
  std::map<uint32_t, int64_t> open_block;                          // actor -> begin
  int64_t end_ns = journal.events.empty() ? 0 : journal.events.back().ts_ns;
  for (const JournalEvent& ev : journal.events) {
    switch (ev.type) {
      case FlightEventType::kDispatchBegin:
        open_dispatch[{ev.actor, ev.ring}] = ev.ts_ns;
        break;
      case FlightEventType::kDispatchEnd: {
        auto it = open_dispatch.find({ev.actor, ev.ring});
        if (it != open_dispatch.end()) {
          execute.push_back({it->second, ev.ts_ns, ev.actor});
          open_dispatch.erase(it);
        }
        break;
      }
      case FlightEventType::kBlock:
        open_block[ev.actor] = ev.ts_ns;
        break;
      case FlightEventType::kUnblock: {
        // a = blocked ns measured by the producer; trust it over pairing so
        // a block event that rotated out of the ring still yields the
        // correct interval.
        int64_t begin = ev.ts_ns - static_cast<int64_t>(ev.a);
        blocked.push_back({begin, ev.ts_ns, ev.actor});
        open_block.erase(ev.actor);
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [key, begin] : open_dispatch) execute.push_back({begin, end_ns, key.first});
  for (const auto& [actor, begin] : open_block) blocked.push_back({begin, end_ns, actor});
}

}  // namespace

std::vector<SliceAttribution> attribute_latency(const Journal& journal, int64_t slice_ns) {
  std::vector<SliceAttribution> slices;
  if (journal.events.empty() || slice_ns <= 0) return slices;
  int64_t t0 = journal.events.front().ts_ns;
  int64_t t1 = journal.events.back().ts_ns;
  if (t1 <= t0) t1 = t0 + 1;

  std::vector<Interval> execute, blocked;
  reconstruct_intervals(journal, execute, blocked);

  size_t n_slices = static_cast<size_t>((t1 - t0 + slice_ns - 1) / slice_ns);
  slices.resize(n_slices);
  for (size_t i = 0; i < n_slices; ++i) {
    slices[i].begin_ns = t0 + static_cast<int64_t>(i) * slice_ns;
    slices[i].end_ns = slices[i].begin_ns + slice_ns;
  }
  auto slice_range = [&](int64_t begin, int64_t end, auto&& fn) {
    if (end <= begin) return;
    size_t first = static_cast<size_t>(std::max<int64_t>(0, (begin - t0) / slice_ns));
    size_t last = static_cast<size_t>(std::max<int64_t>(0, (end - 1 - t0) / slice_ns));
    for (size_t i = first; i <= last && i < n_slices; ++i) fn(slices[i]);
  };

  for (const Interval& iv : execute) {
    const std::string& name = journal.actor_name(iv.actor);
    slice_range(iv.begin_ns, iv.end_ns, [&](SliceAttribution& s) {
      s.actors[name].execute_s += overlap_s(iv, s.begin_ns, s.end_ns);
    });
  }
  for (const Interval& iv : blocked) {
    const std::string& name = journal.actor_name(iv.actor);
    slice_range(iv.begin_ns, iv.end_ns, [&](SliceAttribution& s) {
      s.actors[name].blocked_s += overlap_s(iv, s.begin_ns, s.end_ns);
    });
  }
  for (const JournalEvent& ev : journal.events) {
    const std::string& name = journal.actor_name(ev.actor);
    slice_range(ev.ts_ns, ev.ts_ns + 1, [&](SliceAttribution& s) {
      ActorSliceStats& stats = s.actors[name];
      if (ev.type == FlightEventType::kDispatchBegin) ++stats.dispatches;
      if (ev.type == FlightEventType::kFlush) ++stats.flushes;
      if (ev.type == FlightEventType::kShed) ++stats.sheds;
    });
  }

  for (SliceAttribution& s : slices) {
    double slice_s = static_cast<double>(s.end_ns - s.begin_ns) * 1e-9;
    double best = 0;
    for (const auto& [name, stats] : s.actors) {
      if (is_edge_actor(name)) continue;
      if (stats.execute_s > best) {
        best = stats.execute_s;
        s.bottleneck = name;
        s.bottleneck_busy_fraction = stats.execute_s / slice_s;
      }
    }
    if (s.bottleneck_busy_fraction < 0.01) {
      s.bottleneck = "idle";
      s.bottleneck_busy_fraction = 0;
    }
  }
  return slices;
}

std::vector<EdgeLatency> edge_latency(const Journal& journal) {
  // link id -> destination task name, from any topology descriptor present.
  std::map<uint64_t, std::string> link_dst;
  for (const JsonValue& topo : journal.topologies) {
    if (!topo.is_object() || !topo.contains("links")) continue;
    for (const JsonValue& link : topo.at("links").as_array()) {
      if (!link.is_object()) continue;
      link_dst[static_cast<uint64_t>(link.number_or("id", 0))] = link.string_or("to", "");
    }
  }

  std::map<uint64_t, EdgeLatency> edges;
  // Pending flush timestamps per link, joined to the next dispatch of the
  // destination operator. Bounded so a never-dispatching dst can't grow it.
  std::map<uint64_t, std::deque<int64_t>> pending_flush;
  // task name -> links that feed it
  std::map<std::string, std::vector<uint64_t>> links_into;
  for (const auto& [link, dst] : link_dst) {
    if (!dst.empty()) links_into[dst].push_back(link);
  }

  for (const JournalEvent& ev : journal.events) {
    switch (ev.type) {
      case FlightEventType::kFlush: {
        EdgeLatency& e = edges[ev.b];
        ++e.flushes;
        auto& q = pending_flush[ev.b];
        q.push_back(ev.ts_ns);
        if (q.size() > 1024) q.pop_front();
        break;
      }
      case FlightEventType::kShed:
        ++edges[ev.b].sheds;
        break;
      case FlightEventType::kBlock:
        ++edges[ev.b].blocks;
        break;
      case FlightEventType::kUnblock:
        edges[ev.b].blocked_s += static_cast<double>(ev.a) * 1e-9;
        break;
      case FlightEventType::kDispatchBegin: {
        const std::string task = task_of_actor(journal.actor_name(ev.actor));
        auto it = links_into.find(task);
        if (it == links_into.end()) break;
        for (uint64_t link : it->second) {
          auto& q = pending_flush[link];
          while (!q.empty() && q.front() <= ev.ts_ns) {
            double wait_s = static_cast<double>(ev.ts_ns - q.front()) * 1e-9;
            EdgeLatency& e = edges[link];
            ++e.queue_wait_samples;
            e.queue_wait_mean_s += wait_s;  // sum for now, divided below
            e.queue_wait_max_s = std::max(e.queue_wait_max_s, wait_s);
            q.pop_front();
          }
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<EdgeLatency> out;
  out.reserve(edges.size());
  for (auto& [link, e] : edges) {
    e.link = link;
    auto it = link_dst.find(link);
    if (it != link_dst.end()) e.dst_op = it->second;
    if (e.queue_wait_samples > 0) {
      e.queue_wait_mean_s /= static_cast<double>(e.queue_wait_samples);
    }
    out.push_back(e);
  }
  return out;
}

std::string overall_bottleneck(const Journal& journal, int64_t slice_ns) {
  std::map<std::string, double> execute_totals;
  for (const SliceAttribution& s : attribute_latency(journal, slice_ns)) {
    for (const auto& [name, stats] : s.actors) {
      if (!is_edge_actor(name)) execute_totals[name] += stats.execute_s;
    }
  }
  std::string best;
  double best_s = 0;
  for (const auto& [name, total] : execute_totals) {
    if (total > best_s) {
      best_s = total;
      best = name;
    }
  }
  return best;
}

}  // namespace neptune::obs
