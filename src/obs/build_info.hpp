// Build identity (version, git sha, sanitizer flags) surfaced three ways:
// the `neptune_build_info` gauge on /metrics, the /healthz.json status
// route, and the header line of every incident bundle — so an artifact can
// always be matched back to the binary that produced it.
#pragma once

#include <string>

#include "obs/telemetry.hpp"

namespace neptune::obs {

struct BuildInfo {
  std::string version;     ///< NEPTUNE_VERSION_STRING compile definition
  std::string git_sha;     ///< configure-time `git rev-parse`, "unknown" outside a checkout
  std::string sanitizers;  ///< NEPTUNE_SANITIZE cmake option value, "none" when off
};

/// The compiled-in identity of this binary.
const BuildInfo& build_info();

/// Seconds since the process first touched the obs layer (steady clock).
double process_uptime_seconds();

/// Idempotently register `neptune_build_info` (gauge, constant 1, identity
/// as labels) and `neptune_uptime_seconds_total` in the global registry.
/// Handles are retained for the process lifetime; safe to call from every
/// Runtime constructor.
void ensure_build_info_registered();

}  // namespace neptune::obs
