// Telemetry registry + background sampler (observability layer, part 1).
//
// Components on the data path never push metrics anywhere: they keep
// relaxed atomics (counters) or cheap O(1) state (gauges) and register a
// *sampling closure* here. The TelemetrySampler thread walks the registry
// on a fixed interval and appends one timestamped snapshot per tick into a
// bounded in-memory ring — the time-series behind the Prometheus endpoint,
// the JSONL timeline dumps, and `tools/neptop`.
//
// Contract for samplers: they run on the sampler (or an HTTP exporter)
// thread while the registry mutex is held, so they must be fast, must not
// block on data-path locks, and must not call back into the registry.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace neptune::obs {

enum class SeriesKind { kCounter, kGauge };

/// Identity of one time series: a Prometheus-style metric name plus label
/// pairs. Counters follow the `*_total` naming convention.
struct SeriesDesc {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  SeriesKind kind = SeriesKind::kGauge;
  std::string help;

  /// Canonical `name{k="v",...}` key used by exporters.
  std::string key() const;
};

/// One sampled value of one registered series.
struct SeriesSample {
  uint64_t series = 0;  ///< registry-assigned id (resolve via descriptor())
  double value = 0;
};

/// All series sampled at one instant.
struct TelemetrySnapshot {
  int64_t ts_ns = 0;
  std::vector<SeriesSample> values;
};

/// Thread-safe registry of live series. Registration returns an RAII handle;
/// descriptors are retained after unregistration so ring snapshots taken
/// while the series was alive remain resolvable.
class TelemetryRegistry {
 public:
  using Sampler = std::function<double()>;

  class Handle {
   public:
    Handle() = default;
    Handle(TelemetryRegistry* reg, uint64_t id) : reg_(reg), id_(id) {}
    Handle(Handle&& o) noexcept : reg_(o.reg_), id_(o.id_) { o.reg_ = nullptr; o.id_ = 0; }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        reset();
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
        o.id_ = 0;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    /// Unregister now (idempotent). Blocks until any in-flight sample of
    /// this series completes, so captured state may be freed afterwards.
    void reset();
    uint64_t id() const { return id_; }
    explicit operator bool() const { return reg_ != nullptr; }

   private:
    TelemetryRegistry* reg_ = nullptr;
    uint64_t id_ = 0;
  };

  [[nodiscard]] Handle register_series(SeriesDesc desc, Sampler sampler);

  size_t active_series() const;

  /// Sample every active series once.
  TelemetrySnapshot sample() const;

  /// Descriptor for an id seen in a snapshot (active or retired series).
  std::optional<SeriesDesc> descriptor(uint64_t id) const;

  /// Render the current values of all active series in the Prometheus text
  /// exposition format (samples each series once).
  std::string render_prometheus() const;

  /// Process-wide default registry; what the runtime, resources and the
  /// recovery coordinator register into.
  static TelemetryRegistry& global();

 private:
  friend class Handle;
  void unregister(uint64_t id);

  struct Entry {
    SeriesDesc desc;
    Sampler fn;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> active_;
  std::map<uint64_t, SeriesDesc> retained_;  // every series ever registered
  uint64_t next_id_ = 1;
};

struct SamplerOptions {
  int64_t interval_ns = 100'000'000;  ///< 100 ms — 10 Hz time series
  size_t ring_capacity = 4096;        ///< ~7 min of history at 10 Hz
};

/// Background thread turning the registry into a bounded time-series ring.
/// start()/stop() are idempotent and safe to race from multiple threads.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryRegistry& registry = TelemetryRegistry::global(),
                            SamplerOptions options = {});
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  void stop();
  bool running() const;

  /// Take one snapshot immediately (usable without the thread; tests).
  void sample_once();

  /// Copy of the ring, oldest first.
  std::vector<TelemetrySnapshot> snapshots() const;
  size_t size() const;
  void clear();

  const TelemetryRegistry& registry() const { return registry_; }
  const SamplerOptions& options() const { return options_; }

 private:
  void loop();
  void push(TelemetrySnapshot snap);

  TelemetryRegistry& registry_;
  const SamplerOptions options_;

  mutable std::mutex lifecycle_mu_;  // serializes start/stop; never held while sampling
  std::thread thread_;

  mutable std::mutex mu_;  // guards ring_ + stop_
  std::condition_variable cv_;
  std::deque<TelemetrySnapshot> ring_;
  bool stop_ = false;
};

}  // namespace neptune::obs
