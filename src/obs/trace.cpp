#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/json.hpp"

namespace neptune::obs {

TraceContext TraceSampler::maybe_start(int64_t now_ns) {
  uint32_t period = period_.load(std::memory_order_relaxed);
  if (period == 0) return {};
  uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % period != 0) return {};
  return TraceContext{next_id_.fetch_add(1, std::memory_order_relaxed), now_ns};
}

TraceSampler& TraceSampler::global() {
  static TraceSampler* sampler = [] {
    uint32_t period = TraceSampler::kDefaultPeriod;
    if (const char* env = std::getenv("NEPTUNE_TRACE_SAMPLE")) {
      long v = std::atol(env);
      period = v < 0 ? 0 : static_cast<uint32_t>(v);
    }
    return new TraceSampler(period);  // never destroyed
  }();
  return *sampler;
}

void TraceCollector::record(TraceSpan span) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceCollector::spans() const {
  std::lock_guard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t TraceCollector::size() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

void TraceCollector::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
}

bool TraceCollector::dump_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const TraceSpan& s : spans()) {
    JsonObject o;
    o["trace_id"] = JsonValue(static_cast<int64_t>(s.trace_id));
    o["link"] = JsonValue(static_cast<int64_t>(s.link_id));
    o["src_instance"] = JsonValue(static_cast<int64_t>(s.src_instance));
    o["dst_instance"] = JsonValue(static_cast<int64_t>(s.dst_instance));
    o["dst_operator"] = JsonValue(s.dst_operator);
    o["origin_ns"] = JsonValue(s.origin_ns);
    o["batch_start_ns"] = JsonValue(s.batch_start_ns);
    o["flush_ns"] = JsonValue(s.flush_ns);
    o["recv_ns"] = JsonValue(s.recv_ns);
    o["exec_start_ns"] = JsonValue(s.exec_start_ns);
    o["exec_end_ns"] = JsonValue(s.exec_end_ns);
    o["batch_count"] = JsonValue(static_cast<int64_t>(s.batch_count));
    o["bytes"] = JsonValue(static_cast<int64_t>(s.bytes));
    o["buffer_wait_ns"] = JsonValue(s.buffer_wait_ns());
    o["wire_ns"] = JsonValue(s.wire_ns());
    o["queue_wait_ns"] = JsonValue(s.queue_wait_ns());
    o["execute_ns"] = JsonValue(s.execute_ns());
    std::string line = JsonValue(std::move(o)).dump();
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

}  // namespace neptune::obs
