// Exporters (observability layer, part 3): JSONL timeline dumps of sampled
// telemetry rings. The Prometheus text renderer lives on TelemetryRegistry
// itself; the HTTP endpoint that serves it is in obs/http_server.hpp.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/telemetry.hpp"

namespace neptune::obs {

/// One snapshot as {"ts_ns": ..., "series": {"name{labels}": value, ...}}.
JsonValue snapshot_to_json(const TelemetryRegistry& registry, const TelemetrySnapshot& snapshot);

/// Write a sampled ring as JSONL: one snapshot object per line, oldest
/// first. Returns false when the file can't be opened.
bool write_timeline_jsonl(const std::string& path, const TelemetryRegistry& registry,
                          const std::vector<TelemetrySnapshot>& snapshots);

/// The whole ring as a JSON array (used by the /telemetry.json endpoint).
JsonValue timeline_to_json(const TelemetryRegistry& registry,
                           const std::vector<TelemetrySnapshot>& snapshots);

}  // namespace neptune::obs
