// Minimal HTTP/1.0 metrics endpoint (observability layer, part 3).
//
// One blocking accept thread per server, one request per connection,
// Connection: close — deliberately tiny, because its only jobs are
// Prometheus scrapes, `tools/neptop` polls and `curl` during bench runs.
// Raw POSIX sockets; no dependency on the engine's event loop so a wedged
// IO thread can still be observed.
//
// Routes:
//   /metrics              Prometheus text exposition of the attached registry
//   /telemetry.json       JSON array of the attached sampler's snapshot ring
//   /spans.json           JSON array of the attached trace collector's spans
//   /healthz              "ok"
//   /healthz.json         subsystem status: build identity, uptime, flight
//                         recorder / sampler / tracer / incident reporter
//   POST /debug/incident  trigger the global IncidentReporter; returns the
//                         bundle path (503 when none is configured)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace neptune::obs {

/// Per-connection hardening knobs. The accept thread is single-threaded, so
/// a client that dribbles bytes (or never sends the blank line) would wedge
/// every other scraper for as long as we let it — the deadline bounds that,
/// and the header cap bounds memory a hostile client can pin.
struct HttpServerOptions {
  int64_t read_deadline_ns = 1'000'000'000;  ///< slowloris cutoff per request
  size_t max_header_bytes = 8192;            ///< request head size cap
};

class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks a free port; see port()) and starts
  /// the serving thread. Throws std::runtime_error when the bind fails.
  /// `sampler` and `traces` are optional; their routes 404 when absent.
  /// Non-owning: all three must outlive the server.
  explicit MetricsHttpServer(uint16_t port,
                             TelemetryRegistry* registry = &TelemetryRegistry::global(),
                             TelemetrySampler* sampler = nullptr,
                             TraceCollector* traces = nullptr,
                             HttpServerOptions options = {});
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }
  /// Connections cut off by the read deadline or the header-size cap.
  uint64_t requests_timed_out() const { return timeouts_.load(std::memory_order_relaxed); }

  void stop();

 private:
  void serve();
  void handle_connection(int fd);
  // Full HTTP response bytes for `method path`.
  std::string respond(const std::string& method, const std::string& path) const;
  std::string health_json() const;

  TelemetryRegistry* registry_;
  TelemetrySampler* sampler_;
  TraceCollector* traces_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::thread thread_;
};

/// Blocking HTTP GET against 127.0.0.1 (or a dotted-quad host); returns the
/// response body, or nullopt on connect/parse failure. Test + neptop helper.
std::optional<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path, int timeout_ms = 2000);

/// Same transport, any method ("POST" for /debug/incident).
std::optional<std::string> http_request(const std::string& method, const std::string& host,
                                        uint16_t port, const std::string& path,
                                        int timeout_ms = 2000);

}  // namespace neptune::obs
