#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>

#include "common/clock.hpp"

namespace neptune::obs {

std::string SeriesDesc::key() const {
  std::string out = name;
  if (labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

void TelemetryRegistry::Handle::reset() {
  if (reg_ != nullptr) {
    reg_->unregister(id_);
    reg_ = nullptr;
    id_ = 0;
  }
}

TelemetryRegistry::Handle TelemetryRegistry::register_series(SeriesDesc desc, Sampler sampler) {
  std::lock_guard lk(mu_);
  uint64_t id = next_id_++;
  retained_.emplace(id, desc);
  active_.emplace(id, Entry{std::move(desc), std::move(sampler)});
  return Handle(this, id);
}

void TelemetryRegistry::unregister(uint64_t id) {
  std::lock_guard lk(mu_);
  active_.erase(id);
}

size_t TelemetryRegistry::active_series() const {
  std::lock_guard lk(mu_);
  return active_.size();
}

TelemetrySnapshot TelemetryRegistry::sample() const {
  TelemetrySnapshot snap;
  snap.ts_ns = now_ns();
  std::lock_guard lk(mu_);
  snap.values.reserve(active_.size());
  for (const auto& [id, entry] : active_) {
    snap.values.push_back(SeriesSample{id, entry.fn ? entry.fn() : 0.0});
  }
  return snap;
}

std::optional<SeriesDesc> TelemetryRegistry::descriptor(uint64_t id) const {
  std::lock_guard lk(mu_);
  auto it = retained_.find(id);
  if (it == retained_.end()) return std::nullopt;
  return it->second;
}

std::string TelemetryRegistry::render_prometheus() const {
  // Sample first (samplers run under mu_ inside sample()), then group lines
  // by metric name so each gets exactly one # TYPE header.
  TelemetrySnapshot snap = sample();

  struct Line {
    SeriesDesc desc;
    double value;
  };
  std::map<std::string, std::vector<Line>> by_name;
  {
    std::lock_guard lk(mu_);
    for (const SeriesSample& s : snap.values) {
      auto it = retained_.find(s.series);
      if (it == retained_.end()) continue;
      by_name[it->second.name].push_back(Line{it->second, s.value});
    }
  }

  std::string out;
  char buf[512];
  for (const auto& [name, lines] : by_name) {
    const SeriesDesc& first = lines.front().desc;
    if (!first.help.empty()) {
      out += "# HELP " + name + " " + first.help + "\n";
    }
    out += "# TYPE " + name + " ";
    out += first.kind == SeriesKind::kCounter ? "counter" : "gauge";
    out += '\n';
    for (const Line& l : lines) {
      std::snprintf(buf, sizeof buf, "%s %.10g\n", l.desc.key().c_str(), l.value);
      out += buf;
    }
  }
  return out;
}

TelemetryRegistry& TelemetryRegistry::global() {
  static TelemetryRegistry* reg = new TelemetryRegistry();  // never destroyed
  return *reg;
}

// --- TelemetrySampler --------------------------------------------------------

TelemetrySampler::TelemetrySampler(TelemetryRegistry& registry, SamplerOptions options)
    : registry_(registry), options_(options) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  std::lock_guard lk(lifecycle_mu_);
  if (thread_.joinable()) return;
  {
    std::lock_guard rk(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void TelemetrySampler::stop() {
  std::lock_guard lk(lifecycle_mu_);
  if (!thread_.joinable()) return;
  {
    std::lock_guard rk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

bool TelemetrySampler::running() const {
  std::lock_guard lk(lifecycle_mu_);
  return thread_.joinable();
}

void TelemetrySampler::loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    lk.unlock();
    TelemetrySnapshot snap = registry_.sample();
    lk.lock();
    if (stop_) break;
    ring_.push_back(std::move(snap));
    while (ring_.size() > options_.ring_capacity) ring_.pop_front();
    cv_.wait_for(lk, std::chrono::nanoseconds(options_.interval_ns), [&] { return stop_; });
  }
}

void TelemetrySampler::sample_once() { push(registry_.sample()); }

void TelemetrySampler::push(TelemetrySnapshot snap) {
  std::lock_guard lk(mu_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

std::vector<TelemetrySnapshot> TelemetrySampler::snapshots() const {
  std::lock_guard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t TelemetrySampler::size() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

void TelemetrySampler::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
}

}  // namespace neptune::obs
