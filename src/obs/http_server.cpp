#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/clock.hpp"
#include "common/thread_util.hpp"
#include "obs/exporter.hpp"

namespace neptune::obs {

namespace {

std::string make_response(int status, const char* content_type, const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 408 ? "Request Timeout"
                                       : "Bad Request";
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, reason, content_type, body.size());
  return std::string(head) + body;
}

bool write_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(uint16_t port, TelemetryRegistry* registry,
                                     TelemetrySampler* sampler, TraceCollector* traces,
                                     HttpServerOptions options)
    : registry_(registry), sampler_(sampler), traces_(traces), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("MetricsHttpServer: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: bind/listen on port " + std::to_string(port) +
                             " failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] {
    set_thread_name("neptune-metrics");
    serve();
  });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  // Read until the end of the request head, bounded by the configured read
  // deadline and header-size cap (HttpServerOptions).
  std::string req;
  char buf[2048];
  bool closed = false;
  int64_t deadline = now_ns() + options_.read_deadline_ns;
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.size() < options_.max_header_bytes && !stop_.load(std::memory_order_acquire)) {
    int64_t left_ms = (deadline - now_ns()) / 1'000'000;
    if (left_ms <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(left_ms, 100))) <= 0) continue;
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    req.append(buf, static_cast<size_t>(n));
  }
  if (req.find("\r\n\r\n") == std::string::npos) {
    // Half-sent request: the deadline expired, the header cap was hit, or
    // the peer hung up mid-head. Cut the connection loose so the next
    // scraper isn't stuck behind it.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (!closed) write_all(fd, make_response(408, "text/plain", "request timeout\n"));
    return;
  }
  // "GET <path> HTTP/..." — anything else is a 400.
  std::string path;
  if (req.rfind("GET ", 0) == 0) {
    size_t end = req.find(' ', 4);
    if (end != std::string::npos) path = req.substr(4, end - 4);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  write_all(fd, respond(path));
}

std::string MetricsHttpServer::respond(const std::string& path) const {
  if (path.empty()) return make_response(400, "text/plain", "bad request\n");
  if (path == "/metrics") {
    return make_response(200, "text/plain; version=0.0.4",
                         registry_->render_prometheus());
  }
  if (path == "/telemetry.json") {
    if (sampler_ == nullptr) return make_response(404, "text/plain", "no sampler attached\n");
    return make_response(200, "application/json",
                         timeline_to_json(*registry_, sampler_->snapshots()).dump() + "\n");
  }
  if (path == "/spans.json") {
    if (traces_ == nullptr) return make_response(404, "text/plain", "no trace collector\n");
    JsonArray arr;
    for (const TraceSpan& s : traces_->spans()) {
      JsonObject o;
      o["trace_id"] = JsonValue(static_cast<int64_t>(s.trace_id));
      o["link"] = JsonValue(static_cast<int64_t>(s.link_id));
      o["dst_operator"] = JsonValue(s.dst_operator);
      o["buffer_wait_ns"] = JsonValue(s.buffer_wait_ns());
      o["wire_ns"] = JsonValue(s.wire_ns());
      o["queue_wait_ns"] = JsonValue(s.queue_wait_ns());
      o["execute_ns"] = JsonValue(s.execute_ns());
      o["total_ns"] = JsonValue(s.total_ns());
      arr.push_back(JsonValue(std::move(o)));
    }
    return make_response(200, "application/json", JsonValue(std::move(arr)).dump() + "\n");
  }
  if (path == "/healthz") return make_response(200, "text/plain", "ok\n");
  return make_response(404, "text/plain", "not found; try /metrics\n");
}

std::optional<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!write_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return resp.substr(body + 4);
}

}  // namespace neptune::obs
