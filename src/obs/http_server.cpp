#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/thread_util.hpp"
#include "obs/build_info.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/incident.hpp"

namespace neptune::obs {

namespace {

std::string make_response(int status, const char* content_type, const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 408 ? "Request Timeout"
                       : status == 503 ? "Service Unavailable"
                                       : "Bad Request";
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, reason, content_type, body.size());
  return std::string(head) + body;
}

bool write_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(uint16_t port, TelemetryRegistry* registry,
                                     TelemetrySampler* sampler, TraceCollector* traces,
                                     HttpServerOptions options)
    : registry_(registry), sampler_(sampler), traces_(traces), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("MetricsHttpServer: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: bind/listen on port " + std::to_string(port) +
                             " failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] {
    set_thread_name("neptune-metrics");
    serve();
  });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  // Read until the end of the request head, bounded by the configured read
  // deadline and header-size cap (HttpServerOptions).
  std::string req;
  char buf[2048];
  bool closed = false;
  int64_t deadline = now_ns() + options_.read_deadline_ns;
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.size() < options_.max_header_bytes && !stop_.load(std::memory_order_acquire)) {
    int64_t left_ms = (deadline - now_ns()) / 1'000'000;
    if (left_ms <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(left_ms, 100))) <= 0) continue;
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    req.append(buf, static_cast<size_t>(n));
  }
  if (req.find("\r\n\r\n") == std::string::npos) {
    // Half-sent request: the deadline expired, the header cap was hit, or
    // the peer hung up mid-head. Cut the connection loose so the next
    // scraper isn't stuck behind it.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (!closed) write_all(fd, make_response(408, "text/plain", "request timeout\n"));
    return;
  }
  // "<METHOD> <path> HTTP/..." — only GET and POST are served.
  std::string method, path;
  size_t method_end = req.find(' ');
  if (method_end != std::string::npos && method_end > 0) {
    method = req.substr(0, method_end);
    size_t path_end = req.find(' ', method_end + 1);
    if (path_end != std::string::npos) {
      path = req.substr(method_end + 1, path_end - method_end - 1);
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  write_all(fd, respond(method, path));
}

std::string MetricsHttpServer::respond(const std::string& method, const std::string& path) const {
  if (path.empty()) return make_response(400, "text/plain", "bad request\n");
  if (method == "POST") {
    if (path != "/debug/incident") {
      return make_response(404, "text/plain", "not found; POST /debug/incident\n");
    }
    std::shared_ptr<IncidentReporter> reporter = IncidentReporter::active();
    if (reporter == nullptr) {
      return make_response(503, "text/plain", "no incident reporter configured\n");
    }
    std::string bundle = reporter->report("http", "POST /debug/incident");
    JsonObject o;
    o["bundle"] = JsonValue(bundle);
    o["suppressed"] = JsonValue(bundle.empty());
    return make_response(200, "application/json", JsonValue(std::move(o)).dump() + "\n");
  }
  if (method != "GET") return make_response(400, "text/plain", "bad request\n");
  if (path == "/metrics") {
    return make_response(200, "text/plain; version=0.0.4",
                         registry_->render_prometheus());
  }
  if (path == "/telemetry.json") {
    if (sampler_ == nullptr) return make_response(404, "text/plain", "no sampler attached\n");
    return make_response(200, "application/json",
                         timeline_to_json(*registry_, sampler_->snapshots()).dump() + "\n");
  }
  if (path == "/spans.json") {
    if (traces_ == nullptr) return make_response(404, "text/plain", "no trace collector\n");
    JsonArray arr;
    for (const TraceSpan& s : traces_->spans()) {
      JsonObject o;
      o["trace_id"] = JsonValue(static_cast<int64_t>(s.trace_id));
      o["link"] = JsonValue(static_cast<int64_t>(s.link_id));
      o["dst_operator"] = JsonValue(s.dst_operator);
      o["buffer_wait_ns"] = JsonValue(s.buffer_wait_ns());
      o["wire_ns"] = JsonValue(s.wire_ns());
      o["queue_wait_ns"] = JsonValue(s.queue_wait_ns());
      o["execute_ns"] = JsonValue(s.execute_ns());
      o["total_ns"] = JsonValue(s.total_ns());
      arr.push_back(JsonValue(std::move(o)));
    }
    return make_response(200, "application/json", JsonValue(std::move(arr)).dump() + "\n");
  }
  if (path == "/healthz") return make_response(200, "text/plain", "ok\n");
  if (path == "/healthz.json") return make_response(200, "application/json", health_json());
  return make_response(404, "text/plain", "not found; try /metrics\n");
}

std::string MetricsHttpServer::health_json() const {
  JsonObject o;
  o["status"] = JsonValue(std::string("ok"));
  const BuildInfo& info = build_info();
  JsonObject build;
  build["version"] = JsonValue(info.version);
  build["git_sha"] = JsonValue(info.git_sha);
  build["sanitizers"] = JsonValue(info.sanitizers);
  o["build"] = JsonValue(std::move(build));
  o["uptime_seconds"] = JsonValue(process_uptime_seconds());

  const FlightRecorder& recorder = FlightRecorder::global();
  JsonObject rec;
  rec["enabled"] = JsonValue(FlightRecorder::enabled());
  rec["rings"] = JsonValue(recorder.rings_created());
  rec["rings_free"] = JsonValue(recorder.rings_free());
  rec["events_recorded"] = JsonValue(recorder.events_recorded());
  rec["ring_table_overflows"] = JsonValue(recorder.ring_table_overflows());
  rec["actors"] = JsonValue(recorder.actors_registered());
  o["flight_recorder"] = JsonValue(std::move(rec));

  JsonObject samp;
  samp["attached"] = JsonValue(sampler_ != nullptr);
  if (sampler_ != nullptr) {
    samp["snapshots"] = JsonValue(sampler_->snapshots().size());
  }
  o["sampler"] = JsonValue(std::move(samp));

  JsonObject traces;
  traces["attached"] = JsonValue(traces_ != nullptr);
  if (traces_ != nullptr) {
    traces["spans"] = JsonValue(traces_->spans().size());
  }
  o["traces"] = JsonValue(std::move(traces));

  JsonObject incident;
  std::shared_ptr<IncidentReporter> reporter = IncidentReporter::active();
  incident["configured"] = JsonValue(reporter != nullptr);
  if (reporter != nullptr) {
    incident["dir"] = JsonValue(reporter->options().dir);
    incident["bundles_written"] = JsonValue(reporter->bundles_written());
    incident["triggers_suppressed"] = JsonValue(reporter->triggers_suppressed());
    incident["last_bundle"] = JsonValue(reporter->last_bundle_path());
  }
  o["incident_reporter"] = JsonValue(std::move(incident));
  return JsonValue(std::move(o)).dump() + "\n";
}

std::optional<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path, int timeout_ms) {
  return http_request("GET", host, port, path, timeout_ms);
}

std::optional<std::string> http_request(const std::string& method, const std::string& host,
                                        uint16_t port, const std::string& path, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string req = method + " " + path + " HTTP/1.0\r\nHost: " + host +
                    "\r\nContent-Length: 0\r\n\r\n";
  if (!write_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return resp.substr(body + 4);
}

}  // namespace neptune::obs
