// Incident bundles (observability layer, part 4).
//
// An IncidentReporter turns "something just went wrong" into a single
// self-contained JSONL artifact: header (trigger, build identity, clocks),
// topology descriptors, a fresh telemetry snapshot, the collected trace
// spans, the flight-recorder actor table, and the merged event timeline of
// every thread ring sorted by timestamp. Bundles are written atomically
// (tmp + rename) into a bounded directory — the oldest bundles rotate out —
// and triggers are rate-limited so a quarantine storm can't turn the
// incident directory into a second failure.
//
// Triggers (see ISSUE 7): OperatorWatchdog escalation, DeadLetterQueue
// quarantine, RecoveryCoordinator restart, `POST /debug/incident`, and —
// via FlightRecorder::install_crash_handler, which writes the *raw binary*
// journal instead (JSON is not async-signal-safe) — SIGSEGV/SIGABRT.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace neptune::obs {

struct IncidentOptions {
  std::string dir;                            ///< created if missing; must be non-empty
  size_t max_bundles = 16;                    ///< oldest bundles beyond this are deleted
  int64_t min_interval_ns = 2'000'000'000;    ///< triggers inside the window are suppressed
  TelemetryRegistry* registry = nullptr;      ///< defaults to TelemetryRegistry::global()
  TraceCollector* traces = nullptr;           ///< defaults to TraceCollector::global()
  bool install_crash_handler = true;          ///< raw-dump SIGSEGV/SIGABRT into `dir`
};

class IncidentReporter {
 public:
  explicit IncidentReporter(IncidentOptions options);

  /// Write a bundle now. Returns the bundle path, or "" when suppressed by
  /// the rate limit or on I/O failure. Thread-safe; concurrent triggers
  /// serialize on an internal mutex.
  std::string report(const std::string& trigger, const std::string& detail);

  /// Remember a topology descriptor (opaque JSON from the runtime) to embed
  /// in future bundles. Bounded: the last 8 descriptors are kept, keyed by
  /// the "job" field so a resubmitted job replaces its old entry.
  void note_topology(JsonValue topology);

  uint64_t bundles_written() const;
  uint64_t triggers_suppressed() const;
  std::string last_bundle_path() const;
  const IncidentOptions& options() const { return options_; }

  // ---- process-global reporter ------------------------------------------
  /// Install `options` as the process-global reporter (replacing any
  /// previous one). The runtime calls this when ObsOptions::incident_dir or
  /// NEPTUNE_INCIDENT_DIR is set; tests call it directly.
  static std::shared_ptr<IncidentReporter> configure_global(IncidentOptions options);
  static std::shared_ptr<IncidentReporter> active();  ///< nullptr when unconfigured
  /// Fire-and-forget trigger against the global reporter; no-op ("") when
  /// none is configured. Safe to call from fault-path threads.
  static std::string trigger_global(const std::string& trigger, const std::string& detail);

 private:
  std::string write_bundle(const std::string& trigger, const std::string& detail);

  IncidentOptions options_;
  mutable std::mutex mu_;
  JsonArray topologies_;
  int64_t last_trigger_ns_ = 0;
  uint64_t bundles_ = 0;
  uint64_t suppressed_ = 0;
  uint64_t seq_ = 0;
  std::string last_path_;
  uint32_t actor_ = 0;  ///< flight-recorder actor for kIncident self-markers
};

}  // namespace neptune::obs
