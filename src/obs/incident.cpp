#include "obs/incident.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "obs/build_info.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"

namespace neptune::obs {

namespace {

std::mutex g_global_mu;
std::shared_ptr<IncidentReporter> g_global;

int64_t wall_unix_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::vector<std::string> list_bundles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind("incident-", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(d);
  // Names embed a zero-padded sequence + wall-clock ms, so lexicographic
  // order is chronological order.
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

IncidentReporter::IncidentReporter(IncidentOptions options) : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &TelemetryRegistry::global();
  if (options_.traces == nullptr) options_.traces = &TraceCollector::global();
  ::mkdir(options_.dir.c_str(), 0755);  // best-effort; report() surfaces real failures
  actor_ = FlightRecorder::register_actor("incident_reporter");
  if (options_.install_crash_handler) {
    FlightRecorder::install_crash_handler(options_.dir.c_str());
  }
}

void IncidentReporter::note_topology(JsonValue topology) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string job = topology.is_object() ? topology.string_or("job", "") : "";
  // Replace a resubmitted job's descriptor instead of accumulating.
  if (!job.empty()) {
    topologies_.erase(std::remove_if(topologies_.begin(), topologies_.end(),
                                     [&](const JsonValue& v) {
                                       return v.is_object() && v.string_or("job", "") == job;
                                     }),
                      topologies_.end());
  }
  topologies_.push_back(std::move(topology));
  while (topologies_.size() > 8) topologies_.erase(topologies_.begin());
}

std::string IncidentReporter::report(const std::string& trigger, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_ns();
  if (last_trigger_ns_ != 0 && now - last_trigger_ns_ < options_.min_interval_ns) {
    ++suppressed_;
    return "";
  }
  last_trigger_ns_ = now;
  std::string path = write_bundle(trigger, detail);
  if (!path.empty()) {
    ++bundles_;
    last_path_ = path;
    FlightRecorder::record(actor_, FlightEventType::kIncident, bundles_);
    NEPTUNE_LOG_INFO("incident bundle written: %s (trigger=%s)", path.c_str(), trigger.c_str());
  }
  return path;
}

std::string IncidentReporter::write_bundle(const std::string& trigger, const std::string& detail) {
  FlightRecorder& recorder = FlightRecorder::global();
  ++seq_;
  char stem[128];
  std::snprintf(stem, sizeof stem, "incident-%06llu-%lld",
                static_cast<unsigned long long>(seq_),
                static_cast<long long>(wall_unix_ns() / 1'000'000));
  std::string final_path = options_.dir + "/" + stem + ".jsonl";
  std::string tmp_path = options_.dir + "/." + stem + ".tmp";

  std::ofstream out(tmp_path, std::ios::trunc);
  if (!out.is_open()) return "";

  {
    JsonObject header;
    header["kind"] = JsonValue(std::string("header"));
    header["bundle"] = JsonValue(std::string("neptune-incident"));
    header["version"] = JsonValue(static_cast<int64_t>(1));
    header["trigger"] = JsonValue(trigger);
    header["detail"] = JsonValue(detail);
    header["pid"] = JsonValue(static_cast<int64_t>(::getpid()));
    header["steady_ns"] = JsonValue(now_ns());
    header["wall_unix_ns"] = JsonValue(wall_unix_ns());
    const BuildInfo& info = build_info();
    JsonObject build;
    build["version"] = JsonValue(info.version);
    build["git_sha"] = JsonValue(info.git_sha);
    build["sanitizers"] = JsonValue(info.sanitizers);
    header["build"] = JsonValue(std::move(build));
    header["uptime_seconds"] = JsonValue(process_uptime_seconds());
    out << JsonValue(std::move(header)).dump() << "\n";
  }

  for (const JsonValue& topo : topologies_) {
    JsonObject line;
    line["kind"] = JsonValue(std::string("topology"));
    line["topology"] = topo;
    out << JsonValue(std::move(line)).dump() << "\n";
  }

  {
    // One fresh snapshot of every registered series at trigger time.
    TelemetrySnapshot snap = options_.registry->sample();
    JsonValue snap_json = snapshot_to_json(*options_.registry, snap);
    JsonObject line;
    line["kind"] = JsonValue(std::string("telemetry"));
    line["snapshot"] = std::move(snap_json);
    out << JsonValue(std::move(line)).dump() << "\n";
  }

  for (const TraceSpan& s : options_.traces->spans()) {
    JsonObject line;
    line["kind"] = JsonValue(std::string("span"));
    line["trace_id"] = JsonValue(static_cast<int64_t>(s.trace_id));
    line["link"] = JsonValue(static_cast<int64_t>(s.link_id));
    line["dst_operator"] = JsonValue(s.dst_operator);
    line["buffer_wait_ns"] = JsonValue(s.buffer_wait_ns());
    line["wire_ns"] = JsonValue(s.wire_ns());
    line["queue_wait_ns"] = JsonValue(s.queue_wait_ns());
    line["execute_ns"] = JsonValue(s.execute_ns());
    line["total_ns"] = JsonValue(s.total_ns());
    out << JsonValue(std::move(line)).dump() << "\n";
  }

  std::vector<std::string> actors = recorder.actor_names();
  for (size_t i = 0; i < actors.size(); ++i) {
    JsonObject line;
    line["kind"] = JsonValue(std::string("actor"));
    line["id"] = JsonValue(static_cast<int64_t>(i));
    line["name"] = JsonValue(actors[i]);
    out << JsonValue(std::move(line)).dump() << "\n";
  }

  for (const MergedFlightEvent& ev : recorder.snapshot_merged()) {
    JsonObject line;
    line["kind"] = JsonValue(std::string("event"));
    line["ts_ns"] = JsonValue(ev.event.ts_ns);
    line["ring"] = JsonValue(static_cast<int64_t>(ev.ring));
    line["tid"] = JsonValue(static_cast<int64_t>(ev.tid));
    line["actor"] = JsonValue(static_cast<int64_t>(ev.event.actor));
    line["type"] = JsonValue(std::string(flight_event_name(ev.event.type)));
    line["a"] = JsonValue(static_cast<int64_t>(ev.event.a));
    line["b"] = JsonValue(static_cast<int64_t>(ev.event.b));
    out << JsonValue(std::move(line)).dump() << "\n";
  }

  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp_path.c_str());
    return "";
  }
  out.close();
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return "";
  }

  // Rotate: keep the newest max_bundles, delete the rest.
  std::vector<std::string> existing = list_bundles(options_.dir);
  if (existing.size() > options_.max_bundles) {
    size_t excess = existing.size() - options_.max_bundles;
    for (size_t i = 0; i < excess; ++i) {
      std::remove((options_.dir + "/" + existing[i]).c_str());
    }
  }
  return final_path;
}

uint64_t IncidentReporter::bundles_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_;
}

uint64_t IncidentReporter::triggers_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

std::string IncidentReporter::last_bundle_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_path_;
}

std::shared_ptr<IncidentReporter> IncidentReporter::configure_global(IncidentOptions options) {
  auto reporter = std::make_shared<IncidentReporter>(std::move(options));
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global = reporter;
  return reporter;
}

std::shared_ptr<IncidentReporter> IncidentReporter::active() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global;
}

std::string IncidentReporter::trigger_global(const std::string& trigger,
                                             const std::string& detail) {
  std::shared_ptr<IncidentReporter> reporter = active();
  if (reporter == nullptr) return "";
  return reporter->report(trigger, detail);
}

}  // namespace neptune::obs
