// Windowed stream operators. The paper's motivating example (§III-B1): "a
// stream operator calculates a descriptive statistic for a sliding window
// over incoming stream packets and emits a new stream packet only if it
// detects a significant change" — that operator (SlidingChangeDetector) and
// a general keyed tumbling-window aggregator are provided here. Windows are
// event-time based on a caller-chosen i64 timestamp field (milliseconds),
// matching the manufacturing use case's 24-hour monitoring window.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "neptune/operators.hpp"
#include "neptune/state.hpp"

namespace neptune::window {

/// Extract a numeric field as double (i32/i64/f32/f64/bool); throws
/// PacketFormatError for non-numeric fields.
double numeric_field(const StreamPacket& packet, size_t index);

struct WindowConfig {
  int64_t window_ms = 1000;  ///< window span in event-time milliseconds
  size_t time_field = 0;     ///< i64 event-time (ms) field index
  size_t value_field = 1;    ///< numeric field to aggregate
  /// Field to group by (string or integer); -1 aggregates globally.
  int key_field = -1;
};

/// Summary statistics of one closed window.
struct WindowStats {
  int64_t window_start_ms = 0;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Keyed tumbling-window aggregator: for every `window_ms` span of event
/// time (aligned to multiples of window_ms) and every key, emits one packet
///   [window_start_ms (i64), key (string), count (i64), sum (f64),
///    mean (f64), min (f64), max (f64)]
/// when the watermark (max event time seen) passes the window end. Open
/// windows flush on close(). Late packets (behind the watermark's closed
/// windows) are counted in `late_packets` and dropped from aggregation.
class TumblingAggregator : public StreamProcessor, public Checkpointable {
 public:
  explicit TumblingAggregator(WindowConfig config);

  void process(StreamPacket& packet, Emitter& out) override;
  void close(Emitter& out) override;

  uint64_t late_packets() const { return late_packets_; }
  uint64_t windows_emitted() const { return windows_emitted_; }

  // Checkpointable: open windows + watermark survive restarts.
  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  std::string key_of(const StreamPacket& packet) const;
  void emit_window(const std::string& key, const WindowStats& w, Emitter& out);
  void advance_watermark(int64_t event_ms, Emitter& out);

  const WindowConfig config_;
  // open windows: key -> (window_start -> stats); a deque would do for a
  // single key, the map keeps multiple concurrently open windows correct
  // under out-of-order arrivals within the allowed lateness (one window).
  std::map<std::string, std::map<int64_t, WindowStats>> open_;
  int64_t watermark_ms_ = INT64_MIN;
  uint64_t late_packets_ = 0;
  uint64_t windows_emitted_ = 0;
};

/// Sliding event-time window aggregator: on every input packet, emits the
/// current window statistics
///   [event ms (i64), count (i64), sum (f64), mean (f64), min (f64), max (f64)]
/// over the trailing `window_ms` of event time. O(1) amortized for
/// count/sum/mean; min/max use a monotonic deque (O(1) amortized).
class SlidingAggregator : public StreamProcessor, public Checkpointable {
 public:
  explicit SlidingAggregator(WindowConfig config);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t in_window() const { return samples_.size(); }

  // Checkpointable: the trailing sample window survives restarts. The
  // monotonic min/max queues are derived state, rebuilt from the samples.
  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  void evict(int64_t now_ms);

  const WindowConfig config_;
  std::deque<std::pair<int64_t, double>> samples_;
  std::deque<std::pair<int64_t, double>> min_q_;  // increasing values
  std::deque<std::pair<int64_t, double>> max_q_;  // decreasing values
  double sum_ = 0;
};

/// Count-based tumbling window: every `count` packets (per key when
/// key_field >= 0), emits
///   [key (string), count (i64), sum (f64), mean (f64), min (f64), max (f64)]
/// and resets. Partial windows flush on close().
class CountWindowAggregator : public StreamProcessor, public Checkpointable {
 public:
  CountWindowAggregator(uint64_t count, size_t value_field, int key_field = -1);

  void process(StreamPacket& packet, Emitter& out) override;
  void close(Emitter& out) override;

  // Checkpointable: partially filled buckets survive restarts.
  void snapshot_state(ByteBuffer& out) const override;
  void restore_state(ByteReader& in) override;

 private:
  std::string key_of(const StreamPacket& packet) const;
  void emit_bucket(const std::string& key, Emitter& out);

  const uint64_t count_;
  const size_t value_field_;
  const int key_field_;
  struct Bucket {
    uint64_t n = 0;
    double sum = 0, min = 0, max = 0;
  };
  std::map<std::string, Bucket> buckets_;
};

/// The paper's low-rate operator: tracks the mean of `value_field` over a
/// sliding event-time window and emits a packet
///   [timestamp (i64), mean (f64)]
/// only when the mean moved by at least `threshold` since the last emission
/// — producing exactly the kind of low, variable-rate output stream that
/// motivates NEPTUNE's buffer flush timers.
class SlidingChangeDetector : public StreamProcessor {
 public:
  SlidingChangeDetector(WindowConfig config, double threshold);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t emissions() const { return emissions_; }
  std::optional<double> current_mean() const {
    if (count_ == 0) return std::nullopt;
    return sum_ / static_cast<double>(count_);
  }

 private:
  const WindowConfig config_;
  const double threshold_;
  std::deque<std::pair<int64_t, double>> samples_;  // (event ms, value)
  double sum_ = 0;
  uint64_t count_ = 0;
  double last_emitted_mean_ = 0;
  bool emitted_once_ = false;
  uint64_t emissions_ = 0;
};

}  // namespace neptune::window
