#include "neptune/runtime.hpp"

#include <deque>
#include <future>

#include <cstdlib>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "compress/lz4.hpp"
#include "net/frame.hpp"
#include "net/inproc_transport.hpp"
#include "net/tcp_transport.hpp"
#include "common/json.hpp"
#include "obs/build_info.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/incident.hpp"
#include "obs/trace.hpp"

namespace neptune {
namespace detail {

/// An inbound batch awaiting execution, recycled through an object pool
/// (paper §III-B3). The packet bytes are NOT deserialized here: `packets`
/// is a view into a pooled frame buffer pinned by `buf`, and packets are
/// decoded lazily at drain time — either into per-packet views (zero
/// allocation) or into a reused scratch StreamPacket for legacy per-packet
/// operators.
struct Batch {
  FrameBufRef buf;                   ///< pins the payload bytes until drained
  std::span<const uint8_t> packets;  ///< serialized packets (after the BatchHeader)
  size_t count = 0;                  ///< packets in the batch
  size_t cursor = 0;                 ///< next packet to process (partial progress under backpressure)
  size_t byte_off = 0;               ///< byte offset of `cursor` within `packets`

  // Trace block carried in the BatchHeader (trace_id 0 = untraced) plus the
  // destination-side stamps needed to close the hop's span.
  uint64_t trace_id = 0;
  int64_t trace_origin_ns = 0;
  int64_t batch_start_ns = 0;
  int64_t flush_ns = 0;
  int64_t recv_ns = 0;
  int64_t exec_start_ns = 0;
  uint32_t trace_link = 0;
  uint32_t trace_src = 0;
  uint32_t trace_bytes = 0;

  void reset() {
    buf.reset();  // releases the pooled frame
    packets = {};
    count = 0;
    cursor = 0;
    byte_off = 0;
    trace_id = 0;
    exec_start_ns = 0;
  }
};

/// Receiving half of one (link, src-instance) edge at a destination
/// instance.
struct InEdge {
  std::shared_ptr<ChannelReceiver> rx;
  FrameDecoder decoder;
  uint64_t expected_seq = 0;
  uint32_t link_id = 0;
  uint32_t src_instance = 0;
  bool drained = false;
  /// Best-effort edge with a shed policy: sequence gaps are expected sheds
  /// (counted in shed_gaps), not exactly-once violations.
  bool lossy = false;
};

/// Sending half of one output link: one StreamBuffer per destination
/// instance, plus the link's partitioning scheme.
struct OutLink {
  const LinkDecl* decl = nullptr;
  std::shared_ptr<PartitioningScheme> partitioning;
  std::vector<std::unique_ptr<StreamBuffer>> dst;
};

/// One parallel instance of a stream operator: a Granules task + Emitter.
class InstanceRuntime : public granules::ComputationalTask, public Emitter {
 public:
  InstanceRuntime(std::string op_id, uint32_t inst, uint32_t par, OperatorKind k,
                  const GraphConfig& cfg, Job* job)
      : op_id_(std::move(op_id)),
        instance_(inst),
        parallelism_(par),
        kind_(k),
        cfg_(cfg),
        job_(job),
        batch_pool_(ObjectPool<Batch>::create(/*max_idle=*/64)) {
    task_name_ = op_id_ + "[" + std::to_string(instance_) + "]";
    flight_actor_ = obs::FlightRecorder::register_actor(task_name_);
  }

  // --- wiring (called by Runtime::submit, before start) ----------------------
  std::unique_ptr<StreamSource> source;
  std::unique_ptr<StreamProcessor> processor;
  std::vector<OutLink> outputs;
  std::vector<InEdge> inputs;
  granules::Resource* resource = nullptr;
  uint64_t task_id = 0;
  /// Poison-pill quarantine (null = disabled): operator exceptions and
  /// malformed batches are captured here instead of failing the job.
  std::shared_ptr<fault::DeadLetterQueue> dlq;
  /// > 0: dispatches slower than this are counted in deadline_overruns.
  int64_t packet_deadline_ns = 0;

  OperatorMetrics& metrics() { return metrics_; }
  const OperatorMetrics& metrics() const { return metrics_; }
  uint32_t flight_actor() const { return flight_actor_; }
  const std::string& op_id() const { return op_id_; }
  uint32_t instance_index() const { return instance_; }
  void request_stop() { stop_requested_.store(true, std::memory_order_release); }
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Checkpoint support: pause/resume source emission (processors drain
  /// naturally once sources are quiet).
  void set_paused(bool paused) { paused_.store(paused, std::memory_order_release); }

  /// The Checkpointable view of the user operator, or nullptr.
  Checkpointable* checkpointable() {
    if (source) return dynamic_cast<Checkpointable*>(source.get());
    return dynamic_cast<Checkpointable*>(processor.get());
  }
  const Checkpointable* checkpointable() const {
    return const_cast<InstanceRuntime*>(this)->checkpointable();
  }

  // --- Emitter ---------------------------------------------------------------
  EmitStatus emit(StreamPacket&& packet) override { return emit(0, std::move(packet)); }

  EmitStatus emit(size_t link, StreamPacket&& packet) override {
    if (link >= outputs.size())
      throw GraphError(task_name_ + ": emit on unknown output link " + std::to_string(link));
    if (packet.event_time_ns() == 0) packet.set_event_time_ns(now_ns());
    OutLink& out = outputs[link];
    uint32_t n = static_cast<uint32_t>(out.dst.size());
    uint32_t pick = out.partitioning->select(packet, instance_, n);
    if (pick == kBroadcastInstance) {
      for (auto& buf : out.dst) {
        if (current_trace_.active()) buf->note_trace(current_trace_);
        if (!buf->add(packet)) output_blocked_.store(true, std::memory_order_relaxed);
        packets_emitted_.fetch_add(1, std::memory_order_relaxed);
        metrics_.packets_out.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      StreamBuffer& buf = *out.dst[pick % n];
      if (current_trace_.active()) buf.note_trace(current_trace_);
      if (!buf.add(packet)) output_blocked_.store(true, std::memory_order_relaxed);
      packets_emitted_.fetch_add(1, std::memory_order_relaxed);
      metrics_.packets_out.fetch_add(1, std::memory_order_relaxed);
    }
    return output_blocked_.load(std::memory_order_relaxed) ? EmitStatus::kBackpressured
                                                           : EmitStatus::kOk;
  }

  /// Zero-copy re-emit: forward the view's wire bytes straight into the
  /// outbound stream buffer — no deserialize, no re-serialize. Falls back
  /// to materialization only when the packet has no event time yet (the
  /// stamp would have to rewrite the serialized bytes).
  EmitStatus emit(size_t link, const PacketView& view) override {
    if (link >= outputs.size())
      throw GraphError(task_name_ + ": emit on unknown output link " + std::to_string(link));
    if (view.event_time_ns() == 0) {
      StreamPacket p;
      view.materialize(p);
      return emit(link, std::move(p));
    }
    OutLink& out = outputs[link];
    uint32_t n = static_cast<uint32_t>(out.dst.size());
    uint32_t pick = out.partitioning->select_view(view, instance_, n);
    std::span<const uint8_t> raw = view.raw();
    if (pick == kBroadcastInstance) {
      for (auto& buf : out.dst) {
        if (current_trace_.active()) buf->note_trace(current_trace_);
        if (!buf->add_raw(raw)) output_blocked_.store(true, std::memory_order_relaxed);
        packets_emitted_.fetch_add(1, std::memory_order_relaxed);
        metrics_.packets_out.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      StreamBuffer& buf = *out.dst[pick % n];
      if (current_trace_.active()) buf.note_trace(current_trace_);
      if (!buf.add_raw(raw)) output_blocked_.store(true, std::memory_order_relaxed);
      packets_emitted_.fetch_add(1, std::memory_order_relaxed);
      metrics_.packets_out.fetch_add(1, std::memory_order_relaxed);
    }
    return output_blocked_.load(std::memory_order_relaxed) ? EmitStatus::kBackpressured
                                                           : EmitStatus::kOk;
  }

  size_t output_link_count() const override { return outputs.size(); }
  uint32_t instance() const override { return instance_; }
  uint64_t packets_emitted() const override {
    return packets_emitted_.load(std::memory_order_relaxed);
  }

  // --- granules::ComputationalTask ---------------------------------------------
  const std::string& name() const override { return task_name_; }

  void initialize(granules::TaskContext&) override {
    if (kind_ == OperatorKind::kSource) {
      source->open(instance_, parallelism_);
    } else {
      processor->open(instance_, parallelism_);
      batch_mode_ = processor->prefers_batches();
    }
  }

  void execute(granules::TaskContext& ctx) override {
    metrics_.executions.fetch_add(1, std::memory_order_relaxed);
    // Watchdog gauge: non-zero while inside this execution. A dispatch that
    // never returns leaves it set, which is exactly the stuck signal.
    metrics_.exec_begin_ns.store(now_ns(), std::memory_order_relaxed);
    obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kDispatchBegin,
                                metrics_.executions.load(std::memory_order_relaxed));
    struct ExecGuard {
      OperatorMetrics& m;
      uint32_t actor;
      ~ExecGuard() {
        m.exec_begin_ns.store(0, std::memory_order_relaxed);
        obs::FlightRecorder::record(actor, obs::FlightEventType::kDispatchEnd,
                                    m.executions.load(std::memory_order_relaxed));
      }
    } exec_guard{metrics_, flight_actor_};
    if (stop_requested_.load(std::memory_order_acquire)) {
      finalize(ctx, /*discard=*/true);
      return;
    }
    if (!retry_blocked_outputs()) return;  // writable callback will re-notify
    if (kind_ == OperatorKind::kSource) {
      run_source(ctx);
    } else {
      run_processor(ctx);
    }
  }

  /// IO-thread flush timer hook (paper §III-B1 latency bound).
  void on_flush_timer() {
    bool was_blocked = output_blocked_.load(std::memory_order_relaxed);
    for (auto& out : outputs) {
      for (auto& buf : out.dst) buf->on_timer();
    }
    if (was_blocked) {
      // A parked frame may have been sent by the timer retry; let the task
      // re-check (cheap no-op when still blocked).
      resource->notify_data(task_id);
    }
  }

 private:
  // --- source path -----------------------------------------------------------
  void run_source(granules::TaskContext& ctx) {
    if (source_exhausted_) {
      finalize(ctx, false);
      return;
    }
    if (paused_.load(std::memory_order_acquire)) return;  // resume() re-notifies
    bool more = source->next(*this, cfg_.source_batch_budget);
    if (!more) {
      source_exhausted_ = true;
      finalize(ctx, false);
      return;
    }
    if (output_blocked_.load(std::memory_order_relaxed)) return;  // throttled (paper §III-B4)
    ctx.request_reschedule();
  }

  // --- processor path ----------------------------------------------------------
  void run_processor(granules::TaskContext& ctx) {
    // Per-batch operator scratch lives exactly one scheduled execution
    // (docs/INTERNALS.md §11): reclaim it all in O(1) before any dispatch.
    arena_.reset();
    if (!drain_ready_batches()) return;  // output blocked mid-batch
    size_t rounds = 0;
    while (rounds < cfg_.max_batches_per_execution) {
      if (!fetch_some_frames()) break;
      ++rounds;
      if (!drain_ready_batches()) return;
    }
    if (all_inputs_drained() && ready_.empty()) {
      finalize(ctx, false);
      return;
    }
    // When the per-execution budget was hit there may be more data; yield
    // the worker (batched scheduling fairness) and reschedule. An edge that
    // refills after our empty scan re-notifies via its data callback, and
    // the Running->RunningDirty state machine guarantees no lost wakeup.
    if (rounds == cfg_.max_batches_per_execution) ctx.request_reschedule();
  }

  /// Pull one chunk from the next input edge that has data; decode frames
  /// into ready batches. Returns false when no edge had data.
  ///
  /// Fast path: in-process edges (and any transport that delivers whole
  /// frames) hand over a pooled frame buffer; the batch keeps a ref and
  /// packets are parsed straight out of it — zero payload copies. Only
  /// byte-stream transports that chunk frames (TCP) fall back to the
  /// reassembling decoder, which copies (counted in frame_copies).
  bool fetch_some_frames() {
    size_t n = inputs.size();
    for (size_t step = 0; step < n; ++step) {
      InEdge& e = inputs[(next_edge_ + step) % n];
      if (e.drained) continue;
      auto frame = e.rx->try_receive_buf();
      if (!frame) {
        if (e.rx->closed() && e.decoder.pending_bytes() == 0) e.drained = true;
        continue;
      }
      next_edge_ = (next_edge_ + step + 1) % n;
      metrics_.bytes_in.fetch_add(frame->size(), std::memory_order_relaxed);
      FrameDecodeStatus s = FrameDecodeStatus::kFrame;
      if (e.decoder.pending_bytes() == 0) {
        if (auto f = decode_whole_frame(frame->contents(), &s)) {
          ingest_frame(e, f->header, f->payload, &*frame);
          return true;
        }
        // kNeedMore: a partial or multi-frame chunk — reassemble below.
        if (s != FrameDecodeStatus::kNeedMore) {
          report_corrupt_frame(e, s);
          return true;
        }
      }
      metrics_.frame_copies.fetch_add(1, std::memory_order_relaxed);
      s = e.decoder.feed(frame->contents(),
                         [&](const FrameHeader& h, std::span<const uint8_t> payload) {
                           ingest_frame(e, h, payload, nullptr);
                         });
      if (s == FrameDecodeStatus::kBadMagic || s == FrameDecodeStatus::kBadChecksum ||
          s == FrameDecodeStatus::kBadLength) {
        e.decoder.reset();
        report_corrupt_frame(e, s);
      }
      return true;
    }
    return false;
  }

  void report_corrupt_frame(InEdge& e, FrameDecodeStatus s) {
    // A corrupt frame here means the transport below us has no repair
    // path (supervised TCP edges reject and retransmit upstream of this
    // point). Exactly-once cannot be upheld without the frame, so this
    // is a permanent failure: count it and hand the job to whatever
    // recovery policy is attached (e.g. checkpoint restore).
    NEPTUNE_LOG_ERROR("%s: corrupt frame on link %u (status %d)", task_name_.c_str(), e.link_id,
                      static_cast<int>(s));
    metrics_.corrupt_frames_dropped.fetch_add(1, std::memory_order_relaxed);
    job_->report_failure(task_name_ + ": corrupt frame on link " + std::to_string(e.link_id));
  }

  /// `frame` is the pooled buffer the payload points into, when the caller
  /// has one (whole-frame fast path) — the batch retains it so the packet
  /// bytes stay alive, unparsed, until drained. Null on the reassembling
  /// decoder path, whose payload is only valid for this call: the bytes are
  /// then stashed in a pooled buffer (one copy, counted).
  void ingest_frame(InEdge& e, const FrameHeader& h, std::span<const uint8_t> payload,
                    const FrameBufRef* frame) {
    if (h.control()) return;  // control frames never carry packets
    FrameBufRef keep;  // pins `raw` for the life of the batch
    std::span<const uint8_t> raw = payload;
    if (h.compressed()) {
      // Decompress straight into a pooled buffer (its allocation is
      // recycled frame-to-frame, object-reuse scheme §III-B3).
      keep = FrameBufPool::global().acquire();
      ByteBuffer& dst = keep->buffer();
      dst.resize(h.raw_size);
      ptrdiff_t dn = lz4::decompress(payload, dst.data(), h.raw_size);
      if (dn < 0 || static_cast<uint32_t>(dn) != h.raw_size) {
        NEPTUNE_LOG_ERROR("%s: LZ4 decode failure on link %u", task_name_.c_str(), e.link_id);
        metrics_.seq_violations.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      raw = keep.contents();
    } else if (frame != nullptr) {
      keep = *frame;  // zero-copy: share the inbound frame buffer
    } else {
      keep = FrameBufPool::global().acquire();
      keep->buffer().write_bytes(payload);
      metrics_.frame_copies.fetch_add(1, std::memory_order_relaxed);
      raw = keep.contents();
    }
    ByteReader r(raw);
    uint32_t src_inst = r.read_u32();
    uint64_t base_seq = r.read_u64();
    uint64_t trace_id = r.read_u64();
    int64_t trace_origin_ns = r.read_i64();
    int64_t batch_start_ns = r.read_i64();
    int64_t flush_ns = r.read_i64();
    // Exactly-once, in-order validation (paper §I-B).
    if (h.link_id != e.link_id || src_inst != e.src_instance) {
      NEPTUNE_LOG_ERROR("%s: misrouted frame: link %u src %u on edge link %u src %u",
                        task_name_.c_str(), h.link_id, src_inst, e.link_id, e.src_instance);
      metrics_.seq_violations.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (base_seq + h.batch_count <= e.expected_seq) {
      // Entirely replayed content (e.g. a retransmission overlapping an ack
      // in flight, or source replay after recovery): dedupe, don't re-apply.
      metrics_.dup_frames_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (base_seq > e.expected_seq) {
      if (e.lossy) {
        // Expected on a best-effort edge: the sender shed the missing
        // packets under overload. Account and resync, no contract breach.
        metrics_.shed_gaps.fetch_add(base_seq - e.expected_seq, std::memory_order_relaxed);
      } else {
        // A gap means lost packets — a genuine contract breach. Record it and
        // resync so one fault is counted once, not once per frame after.
        NEPTUNE_LOG_ERROR("%s: sequence violation on link %u src %u: base %llu expected %llu",
                          task_name_.c_str(), e.link_id, src_inst,
                          static_cast<unsigned long long>(base_seq),
                          static_cast<unsigned long long>(e.expected_seq));
        metrics_.seq_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Partial overlap: skip the leading packets we already processed.
    uint32_t skip = base_seq < e.expected_seq ? static_cast<uint32_t>(e.expected_seq - base_seq)
                                              : 0;
    if (skip > 0) metrics_.dup_frames_dropped.fetch_add(1, std::memory_order_relaxed);
    e.expected_seq = base_seq + h.batch_count;

    auto batch = batch_pool_->acquire();
    batch->reset();
    batch->buf = std::move(keep);
    batch->packets = raw.subspan(r.position());
    batch->count = h.batch_count;
    batch->cursor = skip;
    batch->trace_link = e.link_id;  // also keyed for error attribution at drain
    batch->trace_src = src_inst;
    if (skip > 0) {
      // Duplicate-frame replay: advance the byte cursor past the packets
      // already applied, without decoding fields (view parse only).
      try {
        size_t off = 0;
        for (uint32_t i = 0; i < skip; ++i) off = skip_view_.parse(batch->packets, off);
        batch->byte_off = off;
      } catch (const PacketFormatError& ex) {
        if (dlq) {
          metrics_.corrupt_frames_dropped.fetch_add(1, std::memory_order_relaxed);
          quarantine_span(*batch, 0, batch->packets.size(), h.batch_count,
                          std::string("malformed replayed batch: ") + ex.what());
        } else {
          report_malformed_batch(e, ex);
        }
        return;  // PoolPtr recycles the batch
      }
    }
    if (trace_id != 0) {
      batch->trace_id = trace_id;
      batch->trace_origin_ns = trace_origin_ns;
      batch->batch_start_ns = batch_start_ns;
      batch->flush_ns = flush_ns;
      batch->recv_ns = now_ns();
      batch->trace_bytes = static_cast<uint32_t>(raw.size());
    }
    metrics_.batches_in.fetch_add(1, std::memory_order_relaxed);
    ready_.push_back(std::move(batch));
    metrics_.inbound_ready_batches.store(static_cast<int64_t>(ready_.size()),
                                         std::memory_order_relaxed);
  }

  void report_malformed_batch(InEdge& e, const PacketFormatError& ex) {
    // The frame passed its CRC, so this is an encoder bug upstream, not
    // wire corruption — still unrecoverable for exactly-once.
    NEPTUNE_LOG_ERROR("%s: malformed packet on link %u: %s", task_name_.c_str(), e.link_id,
                      ex.what());
    metrics_.corrupt_frames_dropped.fetch_add(1, std::memory_order_relaxed);
    job_->report_failure(task_name_ + ": malformed packet on link " + std::to_string(e.link_id) +
                         ": " + ex.what());
  }

  // --- poison-pill quarantine --------------------------------------------------

  /// Capture `[byte_begin, byte_end)` of the batch's packet bytes (already
  /// validated wire format, so tests can replay them) into the job's DLQ.
  void quarantine_span(const Batch& b, size_t byte_begin, size_t byte_end, uint32_t count,
                       const std::string& reason) {
    fault::DeadLetterEntry entry;
    entry.op_id = op_id_;
    entry.instance = instance_;
    entry.link_id = b.trace_link;
    entry.src_instance = b.trace_src;
    entry.packet_count = count;
    entry.reason = reason;
    entry.quarantined_ns = now_ns();
    auto span = b.packets.subspan(byte_begin, byte_end - byte_begin);
    entry.packet_bytes.assign(span.begin(), span.end());
    dlq->quarantine(std::move(entry));
    metrics_.packets_quarantined.fetch_add(count, std::memory_order_relaxed);
    obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kQuarantine, count,
                                b.trace_link);
    NEPTUNE_LOG_WARN("%s: quarantined %u packet(s) from link %u to the dead-letter queue: %s",
                     task_name_.c_str(), count, b.trace_link, reason.c_str());
  }

  /// Malformed batch past the CRC layer: with quarantine enabled the
  /// unprocessed remainder goes to the DLQ and the pipeline continues;
  /// otherwise this is the permanent failure it always was.
  void handle_malformed(Batch& b, const PacketFormatError& ex) {
    if (dlq) {
      metrics_.corrupt_frames_dropped.fetch_add(1, std::memory_order_relaxed);
      quarantine_span(b, b.byte_off, b.packets.size(),
                      static_cast<uint32_t>(b.count - b.cursor),
                      std::string("malformed batch: ") + ex.what());
    } else {
      report_malformed_batch(*find_edge(b), ex);
    }
    b.cursor = b.count;  // drop the rest of the poisoned batch
    b.byte_off = b.packets.size();
  }

  /// Process ready batches; stops (returning false) when an output edge
  /// becomes flow-controlled. Partial progress is kept via the batch
  /// cursor. Packets decode lazily from the pinned frame bytes: as views
  /// (batch mode) or into a reused scratch packet (per-packet mode) — no
  /// per-packet allocation beyond the operator's own.
  bool drain_ready_batches() {
    bool is_sink = outputs.empty();
    while (!ready_.empty()) {
      Batch& b = *ready_.front();
      if (b.trace_id != 0) {
        if (b.exec_start_ns == 0) b.exec_start_ns = now_ns();
        // Emissions while this batch executes inherit its trace, so the
        // trace follows the data to the next hop.
        current_trace_ = obs::TraceContext{b.trace_id, b.trace_origin_ns};
      }
      try {
        if (batch_mode_) {
          if (!dispatch_batch(b, is_sink)) {
            current_trace_ = {};
            return false;
          }
        } else {
          uint64_t alloc = 0;
          while (b.cursor < b.count) {
            size_t pkt_start = b.byte_off;
            ByteReader r(b.packets.data() + b.byte_off, b.packets.size() - b.byte_off);
            scratch_pkt_.deserialize(r, &alloc);  // reuses packet storage
            b.byte_off += r.position();
            ++b.cursor;
            metrics_.packets_in.fetch_add(1, std::memory_order_relaxed);
            int64_t dispatch_ns = packet_deadline_ns > 0 ? now_ns() : 0;
            bool poisoned = false;
            try {
              processor->process(scratch_pkt_, *this);
            } catch (const PacketFormatError&) {
              throw;  // malformed-batch path owns these
            } catch (const BufferUnderflow&) {
              throw;
            } catch (const std::exception& ex) {
              if (!dlq) throw;
              // Poison pill: quarantine just this packet, keep the batch.
              quarantine_span(b, pkt_start, b.byte_off, 1,
                              std::string("operator threw: ") + ex.what());
              poisoned = true;
            }
            if (dispatch_ns != 0 && now_ns() - dispatch_ns > packet_deadline_ns)
              metrics_.deadline_overruns.fetch_add(1, std::memory_order_relaxed);
            if (!poisoned && is_sink && scratch_pkt_.event_time_ns() > 0) {
              int64_t lat = now_ns() - scratch_pkt_.event_time_ns();
              if (lat > 0) metrics_.sink_latency.record(static_cast<uint64_t>(lat));
            }
            if (output_blocked_.load(std::memory_order_relaxed)) {
              if (b.cursor < b.count || !ready_.empty()) {
                // Partial progress kept; resume from the cursor next run.
              }
              metrics_.serde_alloc_bytes.fetch_add(alloc, std::memory_order_relaxed);
              current_trace_ = {};
              return false;
            }
          }
          metrics_.serde_alloc_bytes.fetch_add(alloc, std::memory_order_relaxed);
        }
      } catch (const PacketFormatError& ex) {
        handle_malformed(b, ex);
      } catch (const BufferUnderflow& ex) {
        handle_malformed(b, PacketFormatError(ex.what()));
      }
      if (b.trace_id != 0) record_span(b);
      current_trace_ = {};
      b.buf.reset();  // return the frame to its pool now, not at batch reuse
      b.packets = {};
      ready_.pop_front();  // PoolPtr destructor recycles the batch
      metrics_.inbound_ready_batches.store(static_cast<int64_t>(ready_.size()),
                                           std::memory_order_relaxed);
    }
    return true;
  }

  /// Batch-mode dispatch: one on_batch() call per inbound batch, packets
  /// handed out as views into the pinned frame. Emits are always buffered,
  /// so the whole batch completes even if an output edge blocks mid-way —
  /// the blocked flag then pauses further batches (bounded by one batch of
  /// overshoot, ~the flush threshold).
  bool dispatch_batch(Batch& b, bool is_sink) {
    if (b.cursor < b.count) {
      batch_view_.reset(b.packets.subspan(b.byte_off), static_cast<uint32_t>(b.count - b.cursor),
                        &arena_);
      metrics_.batch_dispatches.fetch_add(1, std::memory_order_relaxed);
      metrics_.packets_in.fetch_add(b.count - b.cursor, std::memory_order_relaxed);
      int64_t dispatch_ns = packet_deadline_ns > 0 ? now_ns() : 0;
      try {
        processor->on_batch(batch_view_, *this);
      } catch (const PacketFormatError&) {
        throw;  // malformed-batch path owns these
      } catch (const BufferUnderflow&) {
        throw;
      } catch (const std::exception& ex) {
        if (!dlq) throw;
        // on_batch gives no per-packet cursor, so the whole unprocessed
        // remainder is the quarantine unit; the pipeline moves on.
        quarantine_span(b, b.byte_off, b.packets.size(),
                        static_cast<uint32_t>(b.count - b.cursor),
                        std::string("operator threw: ") + ex.what());
      }
      if (dispatch_ns != 0 && now_ns() - dispatch_ns > packet_deadline_ns)
        metrics_.deadline_overruns.fetch_add(1, std::memory_order_relaxed);
      b.cursor = b.count;
      b.byte_off = b.packets.size();
      if (is_sink && batch_view_.last_event_time_ns() > 0) {
        // Sink latency is sampled once per batch on this path (the batch's
        // newest packet); per-packet recording lives on the legacy path.
        int64_t lat = now_ns() - batch_view_.last_event_time_ns();
        if (lat > 0) metrics_.sink_latency.record(static_cast<uint64_t>(lat));
      }
    }
    return !output_blocked_.load(std::memory_order_relaxed);
  }

  /// The input edge a ready batch arrived on (for error attribution).
  InEdge* find_edge(const Batch& b) {
    for (auto& e : inputs) {
      if (e.link_id == b.trace_link && e.src_instance == b.trace_src) return &e;
    }
    return &inputs.front();
  }

  /// Close the hop for a traced batch that just finished executing.
  void record_span(const Batch& b) {
    obs::TraceSpan s;
    s.trace_id = b.trace_id;
    s.link_id = b.trace_link;
    s.src_instance = b.trace_src;
    s.dst_instance = instance_;
    s.dst_operator = op_id_;
    s.origin_ns = b.trace_origin_ns;
    s.batch_start_ns = b.batch_start_ns;
    s.flush_ns = b.flush_ns;
    s.recv_ns = b.recv_ns;
    s.exec_start_ns = b.exec_start_ns;
    s.exec_end_ns = now_ns();
    s.batch_count = static_cast<uint32_t>(b.count);
    s.bytes = b.trace_bytes;
    obs::TraceCollector::global().record(std::move(s));
  }

  bool all_inputs_drained() {
    for (auto& e : inputs) {
      if (!e.drained) {
        if (e.rx->closed() && e.decoder.pending_bytes() == 0) {
          e.drained = true;
        } else {
          return false;
        }
      }
    }
    return true;
  }

  /// Retry every flow-controlled buffer. True when none remain blocked.
  bool retry_blocked_outputs() {
    if (!output_blocked_.load(std::memory_order_relaxed)) return true;
    bool all_ok = true;
    for (auto& out : outputs) {
      for (auto& buf : out.dst) {
        if (buf->blocked()) all_ok &= buf->drain(false);
      }
    }
    if (all_ok) output_blocked_.store(false, std::memory_order_relaxed);
    return all_ok;
  }

  void finalize(granules::TaskContext& ctx, bool discard) {
    if (done_.load(std::memory_order_acquire)) {
      ctx.request_termination();
      return;
    }
    if (kind_ == OperatorKind::kProcessor && !close_called_ && !discard) {
      close_called_ = true;
      processor->close(*this);  // may emit final window aggregates
    }
    if (!discard) {
      bool all_flushed = true;
      for (auto& out : outputs) {
        for (auto& buf : out.dst) all_flushed &= buf->drain(/*force=*/true);
      }
      if (!all_flushed) {
        output_blocked_.store(true, std::memory_order_relaxed);
        return;  // finalize resumes when the writable callback fires
      }
    }
    for (auto& out : outputs) {
      for (auto& buf : out.dst) buf->close_channel();
    }
    if (kind_ == OperatorKind::kSource && source) source->close();
    done_.store(true, std::memory_order_release);
    ctx.request_termination();
    job_->on_instance_done();
  }

  const std::string op_id_;
  std::string task_name_;
  uint32_t flight_actor_ = 0;
  const uint32_t instance_;
  const uint32_t parallelism_;
  const OperatorKind kind_;
  const GraphConfig cfg_;
  Job* job_;

  OperatorMetrics metrics_;
  std::atomic<uint64_t> packets_emitted_{0};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> done_{false};

  // Mutated only on the worker thread, but the IO-thread flush timer peeks at
  // it to decide whether to re-notify the task — hence atomic, relaxed.
  std::atomic<bool> output_blocked_{false};

  // Worker-thread-only state (one thread at a time by the task contract).
  obs::TraceContext current_trace_;  // set while executing a traced batch
  bool source_exhausted_ = false;
  bool close_called_ = false;
  size_t next_edge_ = 0;
  std::shared_ptr<ObjectPool<Batch>> batch_pool_;
  std::deque<ObjectPool<Batch>::PoolPtr> ready_;

  // Zero-copy drain scratch, all reused across executions (§III-B3):
  // per-execution operator arena, a scratch packet for legacy per-packet
  // dispatch, and persistent view objects for skip-replay and batch mode.
  Arena arena_;
  StreamPacket scratch_pkt_;
  PacketView skip_view_;
  BatchView batch_view_;
  bool batch_mode_ = false;
};

}  // namespace detail

// --- Job -----------------------------------------------------------------------

Job::~Job() {
  for (size_t i = 0; i < timers_.size(); ++i) timer_loops_[i]->cancel_timer(timers_[i]);
}

void Job::start() {
  start_ns_ = now_ns();
  // Kick every source instance once; they self-reschedule from then on.
  for (auto& inst : instances_) {
    inst->resource->notify_data(inst->task_id);
  }
}

void Job::on_instance_done() {
  std::lock_guard lk(done_mu_);
  ++done_count_;
  if (done_count_ == instances_.size()) {
    end_ns_.store(now_ns(), std::memory_order_release);
    done_cv_.notify_all();
  }
}

bool Job::wait(std::chrono::nanoseconds timeout) {
  std::unique_lock lk(done_mu_);
  return done_cv_.wait_for(lk, timeout, [&] { return done_count_ == instances_.size(); });
}

bool Job::completed() const {
  std::lock_guard lk(done_mu_);
  return done_count_ == instances_.size();
}

void Job::set_failure_handler(std::function<void(const std::string&)> handler) {
  std::lock_guard lk(failure_mu_);
  failure_handler_ = std::move(handler);
}

std::string Job::failure_reason() const {
  std::lock_guard lk(failure_mu_);
  return failure_reason_;
}

void Job::report_failure(const std::string& what) {
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard lk(failure_mu_);
    if (failed_.exchange(true, std::memory_order_acq_rel)) return;  // first failure wins
    failure_reason_ = what;
    handler = failure_handler_;
  }
  NEPTUNE_LOG_ERROR("job %s: permanent failure: %s", name_.c_str(), what.c_str());
  if (handler) handler(what);
}

void Job::stop() {
  for (auto& inst : instances_) {
    inst->request_stop();
    inst->resource->notify_data(inst->task_id);
  }
}

void Job::pause() {
  for (auto& inst : instances_) inst->set_paused(true);
}

void Job::resume() {
  for (auto& inst : instances_) {
    inst->set_paused(false);
    inst->resource->notify_data(inst->task_id);
  }
}

bool Job::quiesce(std::chrono::nanoseconds timeout) {
  // With sources paused, the pipeline is drained once no counter moves
  // across several consecutive samples (flush timers push out any partial
  // buffers within their interval, which the sampling window covers).
  int64_t deadline = now_ns() + timeout.count();
  uint64_t last_signature = ~0ULL;
  int stable = 0;
  while (now_ns() < deadline) {
    auto m = metrics();
    // Frozen is not the same as drained: a dispatch wedged inside an
    // operator (or parsed batches it never got to) freezes every counter
    // while packets are still in flight — a checkpoint taken then would
    // lose them on restore. Require genuinely idle operators.
    bool busy = false;
    for (const auto& op : m.operators) {
      if (op.exec_begin_ns != 0 || op.inbound_ready_batches > 0) {
        busy = true;
        break;
      }
    }
    uint64_t signature = m.total(&OperatorMetricsSnapshot::packets_in) * 1315423911u +
                         m.total(&OperatorMetricsSnapshot::packets_out) * 2654435761u +
                         m.total(&OperatorMetricsSnapshot::flushes);
    if (busy) {
      stable = 0;
      last_signature = signature;
    } else if (signature == last_signature) {
      if (++stable >= 5) return true;
    } else {
      stable = 0;
      last_signature = signature;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

JobSnapshot Job::checkpoint_state() const {
  JobSnapshot snap;
  for (const auto& inst : instances_) {
    if (const Checkpointable* c = inst->checkpointable()) {
      ByteBuffer buf;
      c->snapshot_state(buf);
      snap.put(inst->op_id(), inst->instance_index(),
               std::vector<uint8_t>(buf.contents().begin(), buf.contents().end()));
    }
  }
  return snap;
}

void Job::restore_state(const JobSnapshot& snapshot) {
  for (auto& inst : instances_) {
    if (Checkpointable* c = inst->checkpointable()) {
      if (const std::vector<uint8_t>* state =
              snapshot.find(inst->op_id(), inst->instance_index())) {
        ByteReader r(*state);
        c->restore_state(r);
      }
    }
  }
}

void Job::note_watchdog_stall(const std::string& op_id, uint32_t instance) {
  for (auto& inst : instances_) {
    if (inst->op_id() == op_id && inst->instance_index() == instance) {
      inst->metrics().watchdog_stalls.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

JobMetricsSnapshot Job::metrics() const {
  JobMetricsSnapshot snap;
  for (const auto& inst : instances_) {
    OperatorMetricsSnapshot m = snapshot_of(inst->metrics());
    m.operator_id = inst->op_id();
    m.instance = inst->instance_index();
    snap.operators.push_back(std::move(m));
  }
  int64_t end = end_ns_.load(std::memory_order_acquire);
  snap.wall_time_ns = (end != 0 ? end : now_ns()) - start_ns_;
  return snap;
}

// --- Runtime ----------------------------------------------------------------------

Runtime::Runtime(size_t resources, granules::ResourceConfig base_config, RuntimeOptions options)
    : options_(options) {
  if (resources == 0) resources = 1;
  for (size_t i = 0; i < resources; ++i) {
    granules::ResourceConfig cfg = base_config;
    if (cfg.name == "resource") cfg.name = "res" + std::to_string(i);
    resources_.push_back(std::make_unique<granules::Resource>(cfg));
    resources_.back()->start();
  }

  // Build identity on /metrics for every runtime, however it's scraped.
  obs::ensure_build_info_registered();

  // Incident reporter ("black box" dumps): explicit dir via options, or
  // opt-in through the NEPTUNE_INCIDENT_DIR env var. First configurer wins
  // so a bench spawning several runtimes keeps one bundle directory.
  std::string incident_dir = options_.obs.incident_dir;
  if (incident_dir.empty()) {
    if (const char* env = std::getenv("NEPTUNE_INCIDENT_DIR")) incident_dir = env;
  }
  if (!incident_dir.empty() && obs::IncidentReporter::active() == nullptr) {
    obs::IncidentOptions inc;
    inc.dir = incident_dir;
    inc.max_bundles = options_.obs.incident_max_bundles;
    obs::IncidentReporter::configure_global(std::move(inc));
    NEPTUNE_LOG_INFO("incident reporter writing to %s", incident_dir.c_str());
  }

  // Observability endpoint: explicit port via options, or opt-in through the
  // NEPTUNE_METRICS_PORT env var so any bench/example can be scraped without
  // code changes. A failed bind degrades to "no endpoint", never to a crash.
  int port = options_.obs.metrics_port;
  if (port < 0) {
    if (const char* env = std::getenv("NEPTUNE_METRICS_PORT")) port = std::atoi(env);
  }
  if (port >= 0 && port <= 65535) {
    sampler_ = std::make_unique<obs::TelemetrySampler>(obs::TelemetryRegistry::global(),
                                                       options_.obs.sampler);
    sampler_->start();
    try {
      metrics_server_ = std::make_unique<obs::MetricsHttpServer>(
          static_cast<uint16_t>(port), &obs::TelemetryRegistry::global(), sampler_.get(),
          &obs::TraceCollector::global());
      NEPTUNE_LOG_INFO("metrics endpoint on 127.0.0.1:%u", metrics_server_->port());
    } catch (const std::exception& e) {
      NEPTUNE_LOG_WARN("metrics endpoint disabled: %s", e.what());
      sampler_->stop();
      sampler_.reset();
    }
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shutdown() {
  if (metrics_server_) metrics_server_->stop();
  if (sampler_) sampler_->stop();
  {
    std::lock_guard lk(jobs_mu_);
    for (auto& job : jobs_) {
      if (!job->completed()) job->stop();
    }
    jobs_.clear();
  }
  for (auto& r : resources_) r->stop();
}

namespace {

/// Registers the process-wide TCP transport counters as telemetry series the
/// first time a TCP edge is built. The stats object and the handles are both
/// process-lifetime (leaked), matching TcpTransportStats::global().
void register_tcp_transport_telemetry() {
  static const bool once = [] {
    obs::TelemetryRegistry& reg = obs::TelemetryRegistry::global();
    TcpTransportStats& s = TcpTransportStats::global();
    auto counter = [&](const char* name, const char* help,
                       const std::atomic<uint64_t>& field) {
      return reg.register_series({name, {}, obs::SeriesKind::kCounter, help},
                                 [&field] {
                                   return static_cast<double>(
                                       field.load(std::memory_order_relaxed));
                                 });
    };
    static std::vector<obs::TelemetryRegistry::Handle>* handles =
        new std::vector<obs::TelemetryRegistry::Handle>();
    handles->push_back(counter("neptune_tcp_tx_copies_total",
                               "Outbound TCP frames staged via the copying span path",
                               s.tx_copies));
    handles->push_back(counter("neptune_tcp_rx_copies_total",
                               "Partial-frame tails spliced across pooled recv chunks",
                               s.rx_copies));
    handles->push_back(counter("neptune_tcp_rx_splice_bytes_total",
                               "Bytes moved by cross-chunk partial-frame splices",
                               s.rx_splice_bytes));
    handles->push_back(counter("neptune_tcp_tx_frames_total",
                               "Frames enqueued on TCP connections", s.tx_frames));
    handles->push_back(counter("neptune_tcp_rx_frames_total",
                               "Whole frames carved from pooled recv chunks", s.rx_frames));
    handles->push_back(counter("neptune_tcp_sendmsg_calls_total",
                               "sendmsg() drain syscalls issued", s.sendmsg_calls));
    handles->push_back(reg.register_series(
        {"neptune_tcp_sendmsg_iovecs_avg",
         {},
         obs::SeriesKind::kGauge,
         "Mean iovecs per sendmsg (scatter-gather batching factor)"},
        [&s] {
          uint64_t calls = s.sendmsg_calls.load(std::memory_order_relaxed);
          if (calls == 0) return 0.0;
          return static_cast<double>(s.sendmsg_iovecs.load(std::memory_order_relaxed)) /
                 static_cast<double>(calls);
        }));
    return true;
  }();
  (void)once;
}

}  // namespace

Runtime::EdgeChannel Runtime::make_edge_channel(granules::Resource* src, granules::Resource* dst,
                                                const ChannelConfig& config,
                                                const fault::EdgeId& edge,
                                                OperatorMetrics* src_metrics,
                                                OperatorMetrics* dst_metrics,
                                                const std::shared_ptr<Job>& job) {
  fault::FaultInjector* injector = options_.fault_injector.get();
  if (src == dst || options_.cross_resource_transport == EdgeTransport::kInproc) {
    // SPSC fast lane: each edge has exactly one producing StreamBuffer
    // (serialized by its mutex, including timer-thread flushes) and one
    // consuming task. Fault-injector wrappers may replay frames from IO
    // threads, so keep the mutex lane under injection (test-only path).
    ChannelConfig inproc_cfg = config;
    inproc_cfg.spsc = (injector == nullptr);
    InprocPipe pipe = make_inproc_pipe(inproc_cfg);
    std::shared_ptr<ChannelSender> sender = pipe.sender;
    std::shared_ptr<ChannelReceiver> receiver = pipe.receiver;
    if (injector) {
      sender = injector->wrap_sender(edge, std::move(sender), src->io_loop(0));
      receiver = injector->wrap_receiver(edge, std::move(receiver), dst->io_loop(0));
    }
    return {sender, receiver};
  }
  register_tcp_transport_telemetry();
  if (options_.supervise_tcp) {
    // Self-healing TCP edge: the receiver keeps a persistent listener so
    // the sender can reconnect after any failure; the injector (if any) is
    // applied *inside* the supervision, per connection incarnation.
    auto receiver = std::make_shared<fault::SupervisedTcpReceiver>(
        dst->io_loop(0), config, options_.supervisor, edge, injector,
        dst_metrics ? &dst_metrics->corrupt_frames_dropped : nullptr);
    auto sender = std::make_shared<fault::SupervisedTcpSender>(
        src->io_loop(0), receiver->port(), config, options_.supervisor, edge, injector,
        src_metrics ? &src_metrics->reconnects : nullptr,
        // Weak: channels can outlive the Job (resources hold task refs), and
        // a late budget-exhaustion report must not touch a freed Job.
        [weak_job = std::weak_ptr<Job>(job)](const std::string& what) {
          if (auto j = weak_job.lock()) j->report_failure(what);
        });
    return {sender, receiver};
  }
  // Raw loopback TCP (supervision disabled): one ephemeral-port listener
  // per edge on the destination resource's IO loop; the source resource
  // connects. The listener is discarded once the edge's connection is
  // accepted, so a dropped connection is unrecoverable.
  // Runtime edges carry only wire frames, so the connection carves them at
  // the socket (framed_rx) and the decode fast path stays zero-copy.
  ChannelConfig tcp_cfg = config;
  tcp_cfg.framed_rx = true;
  auto accepted = std::make_shared<std::promise<std::shared_ptr<TcpConnection>>>();
  auto accepted_future = accepted->get_future();
  EventLoop* dst_loop = dst->io_loop(0);
  TcpListener listener(dst_loop, /*port=*/0, [accepted, dst_loop, tcp_cfg](int fd) {
    auto conn = TcpConnection::create(dst_loop, fd, tcp_cfg);
    conn->start();
    accepted->set_value(std::move(conn));
  });

  int fd = tcp_connect_blocking(listener.port());
  if (fd < 0) throw GraphError("TCP edge setup failed: connect()");
  auto client = TcpConnection::create(src->io_loop(0), fd, tcp_cfg);
  client->start();
  if (accepted_future.wait_for(std::chrono::seconds(5)) != std::future_status::ready)
    throw GraphError("TCP edge setup failed: accept timeout");
  std::shared_ptr<ChannelSender> sender = client;
  std::shared_ptr<ChannelReceiver> receiver = accepted_future.get();
  if (injector) {
    sender = injector->wrap_sender(edge, std::move(sender), src->io_loop(0));
    receiver = injector->wrap_receiver(edge, std::move(receiver), dst_loop);
  }
  return {sender, receiver};
}

// Topology descriptor for incident bundles: flightdump joins flush events
// (link id) to downstream dispatches through the links' "to" field.
void Runtime::note_topology_for_incidents(const StreamGraph& graph) {
  auto reporter = obs::IncidentReporter::active();
  if (!reporter) return;
  JsonObject topo;
  topo["job"] = JsonValue(graph.name());
  JsonArray ops;
  for (const OperatorDecl& op : graph.operators()) {
    JsonObject o;
    o["id"] = JsonValue(op.id);
    o["parallelism"] = JsonValue(static_cast<int64_t>(op.parallelism));
    ops.push_back(JsonValue(std::move(o)));
  }
  topo["operators"] = JsonValue(std::move(ops));
  JsonArray links;
  for (const LinkDecl& link : graph.links()) {
    JsonObject l;
    l["id"] = JsonValue(static_cast<int64_t>(link.link_id));
    l["from"] = JsonValue(graph.operators()[link.from_op].id);
    l["to"] = JsonValue(graph.operators()[link.to_op].id);
    links.push_back(JsonValue(std::move(l)));
  }
  topo["links"] = JsonValue(std::move(links));
  reporter->note_topology(JsonValue(std::move(topo)));
}

std::shared_ptr<Job> Runtime::submit(const StreamGraph& graph) {
  graph.validate();
  const GraphConfig& cfg = graph.config();

  note_topology_for_incidents(graph);

  auto job = std::shared_ptr<Job>(new Job());
  job->name_ = graph.name();
  for (auto& r : resources_) job->resources_.push_back(r.get());
  if (options_.quarantine.enabled)
    job->dead_letters_ = std::make_shared<fault::DeadLetterQueue>(options_.quarantine.dead_letter);

  // 1. Instantiate operator instances.
  //    op_instances[op_index][instance] -> InstanceRuntime.
  std::vector<std::vector<std::shared_ptr<detail::InstanceRuntime>>> op_instances;
  size_t placement_cursor = 0;
  for (size_t oi = 0; oi < graph.operators().size(); ++oi) {
    const OperatorDecl& op = graph.operators()[oi];
    std::vector<std::shared_ptr<detail::InstanceRuntime>> instances;
    for (uint32_t inst = 0; inst < op.parallelism; ++inst) {
      auto rt = std::make_shared<detail::InstanceRuntime>(op.id, inst, op.parallelism, op.kind,
                                                          cfg, job.get());
      if (op.kind == OperatorKind::kSource) {
        rt->source = op.source_factory();
      } else {
        rt->processor = op.processor_factory();
      }
      // Placement: explicit resource pin, or round-robin over resources.
      size_t res_index = op.resource >= 0 ? static_cast<size_t>(op.resource) % resources_.size()
                                          : placement_cursor++ % resources_.size();
      rt->resource = resources_[res_index].get();
      rt->dlq = job->dead_letters_;
      rt->packet_deadline_ns = options_.quarantine.packet_deadline_ns;
      instances.push_back(std::move(rt));
    }
    op_instances.push_back(std::move(instances));
  }

  // 2. Wire links: one channel + StreamBuffer per (src-instance, dst-instance).
  for (const LinkDecl& link : graph.links()) {
    auto& srcs = op_instances[link.from_op];
    auto& dsts = op_instances[link.to_op];
    link.partitioning->prepare(static_cast<uint32_t>(srcs.size()));
    StreamBufferConfig buf_cfg = link.buffer_override.value_or(cfg.buffer);

    for (auto& src : srcs) {
      if (src->outputs.size() <= link.output_index) src->outputs.resize(link.output_index + 1);
      detail::OutLink& out = src->outputs[link.output_index];
      out.decl = &link;
      out.partitioning = link.partitioning;
      for (auto& dst : dsts) {
        fault::EdgeId edge_id{link.link_id, src->instance_index(), dst->instance_index()};
        EdgeChannel pipe = make_edge_channel(src->resource, dst->resource, cfg.channel, edge_id,
                                             &src->metrics(), &dst->metrics(), job);
        auto codec = std::make_shared<SelectiveCodec>(link.compression);
        // Backpressure wiring (paper §III-B4): when the edge drains below
        // its low watermark, re-notify the *sending* task; when data lands
        // on an empty edge, notify the *receiving* task. Raw pointers are
        // safe: both instances are owned by the Job that owns the channel.
        detail::InstanceRuntime* src_raw = src.get();
        pipe.sender->set_writable_callback([src_raw] {
          obs::FlightRecorder::record(src_raw->flight_actor(),
                                      obs::FlightEventType::kWatermarkLow);
          src_raw->resource->notify_data(src_raw->task_id);
        });
        detail::InstanceRuntime* dst_raw = dst.get();
        pipe.receiver->set_data_callback(
            [dst_raw] { dst_raw->resource->notify_data(dst_raw->task_id); });
        out.dst.push_back(std::make_unique<StreamBuffer>(link.link_id, src->instance_index(),
                                                         pipe.sender, codec, buf_cfg,
                                                         &src->metrics(),
                                                         &SteadyClock::instance(), link.shed));
        // In-flight gauge for this edge: bytes accepted by the sender that
        // the receiver has not yet pulled — the backpressure-visible lag.
        job->telemetry_.push_back(obs::TelemetryRegistry::global().register_series(
            {"neptune_edge_inflight_bytes",
             {{"job", job->name_},
              {"link", std::to_string(link.link_id)},
              {"src", std::to_string(src->instance_index())},
              {"dst", std::to_string(dst->instance_index())}},
             obs::SeriesKind::kGauge,
             "Bytes in flight on the edge (sent minus received)"},
            [tx = pipe.sender, rx = pipe.receiver] {
              uint64_t sent = tx->bytes_sent();
              uint64_t recv = rx->bytes_received();
              return sent > recv ? static_cast<double>(sent - recv) : 0.0;
            }));
        // Fast-lane ratio for in-process edges: fraction of sends that went
        // through the lock-free SPSC ring with a pooled (zero-copy) frame.
        if (auto inproc = std::dynamic_pointer_cast<InprocChannel>(pipe.sender)) {
          job->telemetry_.push_back(obs::TelemetryRegistry::global().register_series(
              {"neptune_inproc_fastlane_ratio",
               {{"job", job->name_},
                {"link", std::to_string(link.link_id)},
                {"src", std::to_string(src->instance_index())},
                {"dst", std::to_string(dst->instance_index())}},
               obs::SeriesKind::kGauge,
               "Fraction of inproc sends taking the zero-copy SPSC fast lane"},
              [inproc] {
                uint64_t total = inproc->total_sends();
                if (total == 0) return 1.0;
                return static_cast<double>(inproc->fastlane_sends()) /
                       static_cast<double>(total);
              }));
        }
        detail::InEdge edge;
        edge.rx = pipe.receiver;
        edge.link_id = link.link_id;
        edge.src_instance = src->instance_index();
        edge.lossy = link.shed.policy != ShedPolicy::kNone;
        dst->inputs.push_back(std::move(edge));
      }
    }
  }

  // 3. Deploy tasks (the callbacks above read task_id at fire time, and
  //    nothing fires before start()).
  for (auto& group : op_instances) {
    for (auto& inst : group) {
      inst->task_id = inst->resource->deploy(inst, granules::ScheduleSpec::on_data());
      job->instances_.push_back(inst);
    }
  }

  // 4. Telemetry per instance, 5. flush timers (shared with submit_slice).
  register_job_telemetry(job);
  install_flush_timers(job, cfg);

  {
    std::lock_guard lk(jobs_mu_);
    jobs_.push_back(job);
  }
  return job;
}

// Register one set of series per operator instance. Samplers capture
// shared_ptrs, so the series stay valid for exactly as long as the handles
// (owned by the Job) live.
void Runtime::register_job_telemetry(const std::shared_ptr<Job>& job) {
  {
    obs::TelemetryRegistry& reg = obs::TelemetryRegistry::global();
    const std::string& job_name = job->name_;
    auto labels = [&](const std::shared_ptr<detail::InstanceRuntime>& inst) {
      return std::vector<std::pair<std::string, std::string>>{
          {"job", job_name},
          {"op", inst->op_id()},
          {"inst", std::to_string(inst->instance_index())}};
    };
    for (auto& inst : job->instances_) {
      struct CounterSpec {
        const char* name;
        const char* help;
        std::atomic<uint64_t> OperatorMetrics::* field;
      };
      static constexpr CounterSpec kCounters[] = {
          {"neptune_packets_in_total", "Packets processed by the instance",
           &OperatorMetrics::packets_in},
          {"neptune_packets_out_total", "Packets emitted by the instance",
           &OperatorMetrics::packets_out},
          {"neptune_bytes_out_total", "Wire bytes sent (framed, post-compression)",
           &OperatorMetrics::bytes_out},
          {"neptune_flushes_total", "Stream buffer flushes", &OperatorMetrics::flushes},
          {"neptune_blocked_sends_total", "Flushes rejected by flow control",
           &OperatorMetrics::blocked_sends},
          {"neptune_executions_total", "Scheduled executions of the instance task",
           &OperatorMetrics::executions},
          {"neptune_serde_alloc_bytes_total",
           "Heap bytes allocated deserializing inbound packets (string/bytes fields)",
           &OperatorMetrics::serde_alloc_bytes},
          {"neptune_frame_copies_total",
           "Inbound frames that had to be copied (chunked/partial delivery)",
           &OperatorMetrics::frame_copies},
          {"neptune_batch_dispatches_total", "Batches dispatched to on_batch() as views",
           &OperatorMetrics::batch_dispatches},
          {"neptune_packets_shed_total",
           "Best-effort packets dropped by admission control / load shedding",
           &OperatorMetrics::packets_shed},
          {"neptune_shed_bytes_total", "Serialized bytes the shed packets would have sent",
           &OperatorMetrics::shed_bytes},
          {"neptune_shed_gaps_total",
           "Packets a receiver observed missing on lossy (best-effort) edges",
           &OperatorMetrics::shed_gaps},
          {"neptune_packets_quarantined_total",
           "Poison packets / batch remainders captured to the dead-letter queue",
           &OperatorMetrics::packets_quarantined},
          {"neptune_deadline_overruns_total",
           "Dispatches that exceeded the configured per-packet deadline",
           &OperatorMetrics::deadline_overruns},
          {"neptune_watchdog_stalls_detected_total",
           "Watchdog stall detections attributed to this instance",
           &OperatorMetrics::watchdog_stalls},
      };
      for (const CounterSpec& c : kCounters) {
        job->telemetry_.push_back(reg.register_series(
            {c.name, labels(inst), obs::SeriesKind::kCounter, c.help},
            [inst, field = c.field] {
              return static_cast<double>(
                  (inst->metrics().*field).load(std::memory_order_relaxed));
            }));
      }
      job->telemetry_.push_back(reg.register_series(
          {"neptune_blocked_seconds_total", labels(inst), obs::SeriesKind::kCounter,
           "Cumulative time the instance's outputs sat blocked by backpressure"},
          [inst] {
            return static_cast<double>(
                       inst->metrics().blocked_ns.load(std::memory_order_relaxed)) * 1e-9;
          }));
      // Occupancy gauge: walks the instance's stream buffers (brief per-buffer
      // locks) and refreshes the OperatorMetrics mirror as a side effect.
      job->telemetry_.push_back(reg.register_series(
          {"neptune_outbound_buffered_bytes", labels(inst), obs::SeriesKind::kGauge,
           "Bytes parked in the instance's outbound stream buffers"},
          [inst] {
            size_t total = 0;
            for (const auto& out : inst->outputs) {
              for (const auto& buf : out.dst) total += buf->buffered_bytes();
            }
            inst->metrics().outbound_buffered_bytes.store(static_cast<int64_t>(total),
                                                          std::memory_order_relaxed);
            return static_cast<double>(total);
          }));
      job->telemetry_.push_back(reg.register_series(
          {"neptune_ready_batches", labels(inst), obs::SeriesKind::kGauge,
           "Decoded inbound batches awaiting execution"},
          [inst] {
            return static_cast<double>(
                inst->metrics().inbound_ready_batches.load(std::memory_order_relaxed));
          }));
      if (inst->outputs.empty()) {
        job->telemetry_.push_back(reg.register_series(
            {"neptune_sink_latency_p99_seconds", labels(inst), obs::SeriesKind::kGauge,
             "End-to-end p99 latency observed at the sink"},
            [inst] {
              const LatencyHistogram& h = inst->metrics().sink_latency;
              return h.count() == 0 ? 0.0 : static_cast<double>(h.percentile(99)) * 1e-9;
            }));
      }
    }
    if (job->dead_letters_) {
      job->telemetry_.push_back(reg.register_series(
          {"neptune_dead_letter_entries",
           {{"job", job_name}},
           obs::SeriesKind::kGauge,
           "Entries retained in the job's dead-letter queue (memory + spilled)"},
          [dlq = job->dead_letters_] { return static_cast<double>(dlq->size()); }));
      job->telemetry_.push_back(reg.register_series(
          {"neptune_dead_letter_dropped_total",
           {{"job", job_name}},
           obs::SeriesKind::kCounter,
           "Quarantined entries discarded by the dead-letter queue's bounds"},
          [dlq = job->dead_letters_] { return static_cast<double>(dlq->dropped()); }));
    }
  }
}

// Flush timers: one periodic timer per instance on its resource's IO loop
// (half the flush interval for Nyquist-ish timeliness).
void Runtime::install_flush_timers(const std::shared_ptr<Job>& job, const GraphConfig& cfg) {
  for (auto& inst : job->instances_) {
    int64_t interval = cfg.buffer.flush_interval_ns;
    if (interval > 0) {
      EventLoop* loop = inst->resource->io_loop(0);
      auto weak = std::weak_ptr<detail::InstanceRuntime>(inst);
      EventLoop::TimerId id = loop->run_every(std::max<int64_t>(interval / 2, 500'000), [weak] {
        if (auto p = weak.lock()) p->on_flush_timer();
      });
      job->timers_.push_back(id);
      job->timer_loops_.push_back(loop);
    }
  }
}

namespace {

// Cross-process edges need a pre-agreed port; a missing entry means the
// slice plan and the topology drifted apart — fail before any task runs.
uint16_t slice_edge_port(const SliceOptions& slice, const fault::EdgeId& edge) {
  auto it = slice.edge_ports.find({edge.link_id, edge.src_instance, edge.dst_instance});
  if (it == slice.edge_ports.end())
    throw GraphError("submit_slice: no port assigned for cross-process edge link=" +
                     std::to_string(edge.link_id) + " src=" + std::to_string(edge.src_instance) +
                     " dst=" + std::to_string(edge.dst_instance) +
                     " — was the port plan built from the same topology?");
  return it->second;
}

}  // namespace

std::shared_ptr<Job> Runtime::submit_slice(const StreamGraph& graph, const SliceOptions& slice) {
  graph.validate();
  const GraphConfig& cfg = graph.config();
  if (resources_.size() != 1)
    throw GraphError("submit_slice: the worker Runtime must own exactly one resource "
                     "(one OS process per resource)");
  if (slice.total_resources == 0 || slice.local_resource >= slice.total_resources)
    throw GraphError("submit_slice: local_resource " + std::to_string(slice.local_resource) +
                     " out of range for " + std::to_string(slice.total_resources) + " resources");
  // Multi-process placement must be explicit: round-robin placement would
  // need every worker to agree on a cursor, which is exactly the kind of
  // implicit coordination that breaks under recovery. topology_lint
  // --slices N checks this statically.
  for (const OperatorDecl& op : graph.operators()) {
    if (op.resource < 0 || static_cast<size_t>(op.resource) >= slice.total_resources)
      throw GraphError("submit_slice: operator '" + op.id +
                       "' needs an explicit resource pin in [0, " +
                       std::to_string(slice.total_resources) + ")");
  }

  note_topology_for_incidents(graph);

  auto job = std::shared_ptr<Job>(new Job());
  job->name_ = graph.name();
  granules::Resource* local = resources_[0].get();
  job->resources_.push_back(local);
  if (options_.quarantine.enabled)
    job->dead_letters_ = std::make_shared<fault::DeadLetterQueue>(options_.quarantine.dead_letter);

  // 1. Instantiate only the local operators' instances; remote operators
  //    keep empty slots so link wiring can index by op.
  std::vector<std::vector<std::shared_ptr<detail::InstanceRuntime>>> op_instances(
      graph.operators().size());
  for (size_t oi = 0; oi < graph.operators().size(); ++oi) {
    const OperatorDecl& op = graph.operators()[oi];
    if (static_cast<size_t>(op.resource) != slice.local_resource) continue;
    for (uint32_t inst = 0; inst < op.parallelism; ++inst) {
      auto rt = std::make_shared<detail::InstanceRuntime>(op.id, inst, op.parallelism, op.kind,
                                                          cfg, job.get());
      if (op.kind == OperatorKind::kSource) {
        rt->source = op.source_factory();
      } else {
        rt->processor = op.processor_factory();
      }
      rt->resource = local;
      rt->dlq = job->dead_letters_;
      rt->packet_deadline_ns = options_.quarantine.packet_deadline_ns;
      op_instances[oi].push_back(std::move(rt));
    }
  }

  // 2. Wire links. Three cases per link: both endpoints local (the in-process
  //    channel, exactly as submit()), local sender -> remote receiver (a
  //    supervised TCP sender connecting to the peer's pre-agreed port), and
  //    remote sender -> local receiver (a supervised TCP receiver bound to
  //    that port). Cross-process edges are always supervised: recovery
  //    depends on their reconnect + exactly-once retransmission protocol.
  fault::FaultInjector* injector = options_.fault_injector.get();
  for (const LinkDecl& link : graph.links()) {
    const OperatorDecl& from = graph.operators()[link.from_op];
    const OperatorDecl& to = graph.operators()[link.to_op];
    const bool src_local = static_cast<size_t>(from.resource) == slice.local_resource;
    const bool dst_local = static_cast<size_t>(to.resource) == slice.local_resource;
    if (!src_local && !dst_local) continue;
    StreamBufferConfig buf_cfg = link.buffer_override.value_or(cfg.buffer);

    if (src_local) {
      auto& srcs = op_instances[link.from_op];
      link.partitioning->prepare(static_cast<uint32_t>(srcs.size()));
      for (auto& src : srcs) {
        if (src->outputs.size() <= link.output_index) src->outputs.resize(link.output_index + 1);
        detail::OutLink& out = src->outputs[link.output_index];
        out.decl = &link;
        out.partitioning = link.partitioning;
        // out.dst must hold exactly `to.parallelism` buffers in destination-
        // instance order — partitioning indexes into it by dst instance.
        for (uint32_t di = 0; di < to.parallelism; ++di) {
          fault::EdgeId edge_id{link.link_id, src->instance_index(), di};
          std::shared_ptr<ChannelSender> sender;
          detail::InstanceRuntime* src_raw = src.get();
          if (dst_local) {
            auto& dst = op_instances[link.to_op][di];
            EdgeChannel pipe = make_edge_channel(local, local, cfg.channel, edge_id,
                                                 &src->metrics(), &dst->metrics(), job);
            sender = pipe.sender;
            detail::InstanceRuntime* dst_raw = dst.get();
            pipe.receiver->set_data_callback(
                [dst_raw] { dst_raw->resource->notify_data(dst_raw->task_id); });
            detail::InEdge edge;
            edge.rx = pipe.receiver;
            edge.link_id = link.link_id;
            edge.src_instance = src->instance_index();
            edge.lossy = link.shed.policy != ShedPolicy::kNone;
            dst->inputs.push_back(std::move(edge));
            job->telemetry_.push_back(obs::TelemetryRegistry::global().register_series(
                {"neptune_edge_inflight_bytes",
                 {{"job", job->name_},
                  {"link", std::to_string(link.link_id)},
                  {"src", std::to_string(src->instance_index())},
                  {"dst", std::to_string(di)}},
                 obs::SeriesKind::kGauge,
                 "Bytes in flight on the edge (sent minus received)"},
                [tx = pipe.sender, rx = pipe.receiver] {
                  uint64_t sent = tx->bytes_sent();
                  uint64_t recv = rx->bytes_received();
                  return sent > recv ? static_cast<double>(sent - recv) : 0.0;
                }));
          } else {
            register_tcp_transport_telemetry();
            uint16_t port = slice_edge_port(slice, edge_id);
            sender = std::make_shared<fault::SupervisedTcpSender>(
                local->io_loop(0), port, cfg.channel, options_.supervisor, edge_id, injector,
                &src->metrics().reconnects,
                [weak_job = std::weak_ptr<Job>(job)](const std::string& what) {
                  if (auto j = weak_job.lock()) j->report_failure(what);
                });
          }
          sender->set_writable_callback([src_raw] {
            obs::FlightRecorder::record(src_raw->flight_actor(),
                                        obs::FlightEventType::kWatermarkLow);
            src_raw->resource->notify_data(src_raw->task_id);
          });
          auto codec = std::make_shared<SelectiveCodec>(link.compression);
          out.dst.push_back(std::make_unique<StreamBuffer>(link.link_id, src->instance_index(),
                                                           sender, codec, buf_cfg,
                                                           &src->metrics(),
                                                           &SteadyClock::instance(), link.shed));
        }
      }
    } else {
      // Remote sender, local receiver(s): bind the pre-agreed port and wait
      // for the peer process to connect. One receiver per (remote src
      // instance, local dst instance) pair, mirroring the sender side.
      register_tcp_transport_telemetry();
      auto& dsts = op_instances[link.to_op];
      for (uint32_t si = 0; si < from.parallelism; ++si) {
        for (auto& dst : dsts) {
          fault::EdgeId edge_id{link.link_id, si, dst->instance_index()};
          uint16_t port = slice_edge_port(slice, edge_id);
          auto receiver = std::make_shared<fault::SupervisedTcpReceiver>(
              local->io_loop(0), cfg.channel, options_.supervisor, edge_id, injector,
              &dst->metrics().corrupt_frames_dropped, port);
          detail::InstanceRuntime* dst_raw = dst.get();
          receiver->set_data_callback(
              [dst_raw] { dst_raw->resource->notify_data(dst_raw->task_id); });
          detail::InEdge edge;
          edge.rx = receiver;
          edge.link_id = link.link_id;
          edge.src_instance = si;
          edge.lossy = link.shed.policy != ShedPolicy::kNone;
          dst->inputs.push_back(std::move(edge));
        }
      }
    }
  }

  // 3. Deploy local tasks; 4./5. telemetry + flush timers as in submit().
  for (auto& group : op_instances) {
    for (auto& inst : group) {
      inst->task_id = inst->resource->deploy(inst, granules::ScheduleSpec::on_data());
      job->instances_.push_back(inst);
    }
  }
  register_job_telemetry(job);
  install_flush_timers(job, cfg);

  {
    std::lock_guard lk(jobs_mu_);
    jobs_.push_back(job);
  }
  return job;
}

}  // namespace neptune
