// The NEPTUNE stream-processing programming model (paper §III-A): stream
// sources ingest external streams; stream processors encapsulate
// domain-specific per-packet logic. Users write logic for a *single*
// packet; the framework transparently manages batched execution
// (§III-B2), buffering (§III-B1) and backpressure (§III-B4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "neptune/packet.hpp"

namespace neptune {

/// Result of an emit. The packet is *always* accepted (buffered); the
/// status is advice: kBackpressured means a downstream edge is
/// flow-controlled and the operator should stop producing — the framework
/// also stops scheduling it until the edge drains.
enum class EmitStatus { kOk, kBackpressured };

/// Emission interface handed to operators. Within a stream operator "users
/// can configure the link to use when emitting packets" (§III-A4): the
/// `link` argument indexes this operator's output links in declaration
/// order.
class Emitter {
 public:
  virtual ~Emitter() = default;

  /// Emit on the first (default) output link.
  virtual EmitStatus emit(StreamPacket&& packet) = 0;
  /// Emit on a specific output link.
  virtual EmitStatus emit(size_t link, StreamPacket&& packet) = 0;

  /// Emit a packet *by view* — the zero-copy relay path: the framework's
  /// emitter forwards the view's wire bytes straight into the outbound
  /// buffer (no deserialize, no re-serialize). The default adapters
  /// materialize, so every Emitter accepts views.
  virtual EmitStatus emit(const PacketView& view) { return emit(size_t{0}, view); }
  virtual EmitStatus emit(size_t link, const PacketView& view) {
    StreamPacket p;
    view.materialize(p);
    return emit(link, std::move(p));
  }

  virtual size_t output_link_count() const = 0;
  /// Index of this operator instance within its parallel group.
  virtual uint32_t instance() const = 0;
  virtual uint64_t packets_emitted() const = 0;
};

/// Ingests external data into the stream processing graph (§III-A2).
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Called once before the first next(), with this instance's position in
  /// the parallel group (used e.g. to split an external partition space).
  virtual void open(uint32_t instance, uint32_t parallelism) {
    (void)instance;
    (void)parallelism;
  }

  /// Produce up to `budget` packets via `out`. Return false when the
  /// source is exhausted (finite replay); infinite sources always return
  /// true. The framework stops calling next() while the source's outputs
  /// are backpressured — this is the throttle of §III-B4.
  virtual bool next(Emitter& out, size_t budget) = 0;

  virtual void close() {}
};

/// Domain-specific per-packet processing logic (§III-A3).
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  virtual void open(uint32_t instance, uint32_t parallelism) {
    (void)instance;
    (void)parallelism;
  }

  /// Process one packet, optionally emitting downstream. Called from a
  /// single thread at a time per instance, in arrival order — the
  /// framework's in-order, exactly-once contract.
  virtual void process(StreamPacket& packet, Emitter& out) = 0;

  /// Opt into batched zero-copy dispatch: when true, the framework calls
  /// on_batch() once per inbound batch instead of process() once per
  /// packet. Packets arrive as views into the inbound frame — no per-field
  /// allocation, no packet copies (paper §III-B2/B3 taken to their limit).
  virtual bool prefers_batches() const { return false; }

  /// Batched entry point. Views handed out by `batch` (and anything
  /// obtained from batch.arena()) are valid only for the duration of this
  /// call. Same single-threaded, in-order contract as process(). The
  /// default bridges to per-packet process() so overriding
  /// prefers_batches() alone is always safe.
  virtual void on_batch(BatchView& batch, Emitter& out) {
    PacketView v;
    StreamPacket scratch;
    while (batch.next(v)) {
      v.materialize(scratch);
      process(scratch, out);
    }
  }

  /// Called after all input streams have been fully consumed. May emit
  /// final packets (e.g. window aggregates) through `out`.
  virtual void close(Emitter& out) { (void)out; }
};

using SourceFactory = std::function<std::unique_ptr<StreamSource>()>;
using ProcessorFactory = std::function<std::unique_ptr<StreamProcessor>()>;

}  // namespace neptune
