#include "neptune/stream_buffer.hpp"

#include "net/frame.hpp"

namespace neptune {

StreamBuffer::StreamBuffer(uint32_t link_id, uint32_t src_instance,
                           std::shared_ptr<ChannelSender> sender,
                           std::shared_ptr<SelectiveCodec> codec, StreamBufferConfig config,
                           OperatorMetrics* metrics, const Clock* clock)
    : link_id_(link_id),
      src_instance_(src_instance),
      sender_(std::move(sender)),
      codec_(std::move(codec)),
      config_(config),
      metrics_(metrics),
      clock_(clock) {
  accum_.reserve(config_.capacity_bytes + 4096);
}

void StreamBuffer::prepare_batch_locked() {
  if (accum_count_ != 0) return;
  // Start of a new batch: stamp the header placeholder and remember the
  // arrival time of the first message (for the flush timer). The trace
  // fields are zeroed here and patched in flush_locked(); a batch with
  // no inherited trace gets a 1-in-N chance to originate one.
  accum_.clear();
  accum_.write_u32(src_instance_);
  accum_.write_u64(next_seq_);
  accum_.write_u64(0);  // trace_id
  accum_.write_i64(0);  // trace_origin_ns
  accum_.write_i64(0);  // batch_start_ns
  accum_.write_i64(0);  // flush_ns
  first_packet_ns_ = clock_->now_ns();
  if (!batch_trace_.active())
    batch_trace_ = obs::TraceSampler::global().maybe_start(first_packet_ns_);
}

bool StreamBuffer::finish_add_locked() {
  ++accum_count_;
  ++next_seq_;

  if (accum_.size() >= config_.capacity_bytes + BatchHeader::kSize) {
    if (!pending_) {
      flush_locked();
    } else {
      // Previous frame still parked: retry it; only if that clears can the
      // new content go out.
      if (retry_pending_locked()) flush_locked();
    }
  }
  return !blocked_;
}

bool StreamBuffer::add(const StreamPacket& packet) {
  std::lock_guard lk(mu_);
  prepare_batch_locked();
  packet.serialize(accum_);
  return finish_add_locked();
}

bool StreamBuffer::add_raw(std::span<const uint8_t> packet_bytes) {
  std::lock_guard lk(mu_);
  prepare_batch_locked();
  accum_.write_bytes(packet_bytes);
  return finish_add_locked();
}

bool StreamBuffer::flush_locked() {
  // Patch the trace block before compression sees the payload.
  if (batch_trace_.active()) {
    accum_.patch_u64(BatchHeader::kTraceIdOffset, batch_trace_.trace_id);
    accum_.patch_i64(BatchHeader::kTraceOriginOffset, batch_trace_.origin_ns);
    accum_.patch_i64(BatchHeader::kBatchStartOffset, first_packet_ns_);
    accum_.patch_i64(BatchHeader::kFlushOffset, clock_->now_ns());
    batch_trace_ = {};
  }

  // Payload = [BatchHeader][packets...], optionally compressed.
  bool compressed = codec_->encode(accum_.contents(), codec_scratch_);

  FrameHeader h;
  h.link_id = link_id_;
  h.batch_count = accum_count_;
  h.raw_size = static_cast<uint32_t>(accum_.size());
  if (compressed) h.flags |= FrameHeader::kFlagCompressed;

  pending_ = FrameBufPool::global().acquire();
  encode_frame(h, codec_scratch_, pending_->buffer());

  accum_.clear();
  accum_count_ = 0;
  first_packet_ns_ = 0;
  if (metrics_) metrics_->flushes.fetch_add(1, std::memory_order_relaxed);

  return retry_pending_locked();
}

bool StreamBuffer::retry_pending_locked() {
  if (!pending_) return true;
  // FrameBufRef overload: an in-process channel takes a ref to the pooled
  // frame (zero-copy); socket transports fall back to the span adapter.
  SendStatus s = sender_->try_send(pending_);
  switch (s) {
    case SendStatus::kOk:
      if (metrics_) metrics_->bytes_out.fetch_add(pending_.size(), std::memory_order_relaxed);
      pending_.reset();
      settle_blocked_locked();
      return true;
    case SendStatus::kBlocked:
      if (!blocked_) {
        blocked_ = true;
        blocked_since_ns_ = clock_->now_ns();
        if (metrics_) metrics_->blocked_sends.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    case SendStatus::kClosed:
      // Downstream is gone; drop the frame to avoid wedging shutdown.
      pending_.reset();
      settle_blocked_locked();
      return true;
  }
  return false;
}

void StreamBuffer::settle_blocked_locked() {
  if (blocked_) {
    blocked_ = false;
    int64_t stalled = clock_->now_ns() - blocked_since_ns_;
    if (metrics_ && stalled > 0)
      metrics_->blocked_ns.fetch_add(static_cast<uint64_t>(stalled), std::memory_order_relaxed);
  }
}

void StreamBuffer::on_timer() {
  std::lock_guard lk(mu_);
  if (pending_) {
    retry_pending_locked();
    return;
  }
  if (accum_count_ == 0 || config_.flush_interval_ns <= 0) return;
  if (clock_->now_ns() - first_packet_ns_ < config_.flush_interval_ns) return;
  if (metrics_) metrics_->timer_flushes.fetch_add(1, std::memory_order_relaxed);
  flush_locked();
}

bool StreamBuffer::drain(bool force) {
  std::lock_guard lk(mu_);
  if (!retry_pending_locked()) return false;
  if (accum_count_ > 0 &&
      (force || accum_.size() >= config_.capacity_bytes + BatchHeader::kSize)) {
    return flush_locked();
  }
  return accum_count_ == 0 || !force;
}

bool StreamBuffer::has_unflushed() const {
  std::lock_guard lk(mu_);
  return accum_count_ > 0 || static_cast<bool>(pending_);
}

bool StreamBuffer::blocked() const {
  std::lock_guard lk(mu_);
  return blocked_;
}

void StreamBuffer::close_channel() { sender_->close(); }

void StreamBuffer::note_trace(const obs::TraceContext& ctx) {
  if (!ctx.active()) return;
  std::lock_guard lk(mu_);
  if (batch_trace_.active()) return;
  batch_trace_ = ctx;
}

size_t StreamBuffer::buffered_bytes() const {
  std::lock_guard lk(mu_);
  return accum_.size() + pending_.size();
}

uint64_t StreamBuffer::next_seq() const {
  std::lock_guard lk(mu_);
  return next_seq_;
}

}  // namespace neptune
