#include "neptune/stream_buffer.hpp"

#include "net/frame.hpp"
#include "obs/flight_recorder.hpp"

namespace neptune {

const char* qos_class_name(QosClass q) {
  switch (q) {
    case QosClass::kCritical: return "critical";
    case QosClass::kBestEffort: return "best_effort";
  }
  return "?";
}

const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kNone: return "none";
    case ShedPolicy::kDropNewest: return "drop-newest";
    case ShedPolicy::kDropOldest: return "drop-oldest";
    case ShedPolicy::kProbabilistic: return "probabilistic";
  }
  return "?";
}

StreamBuffer::StreamBuffer(uint32_t link_id, uint32_t src_instance,
                           std::shared_ptr<ChannelSender> sender,
                           std::shared_ptr<SelectiveCodec> codec, StreamBufferConfig config,
                           OperatorMetrics* metrics, const Clock* clock, ShedConfig shed)
    : link_id_(link_id),
      src_instance_(src_instance),
      sender_(std::move(sender)),
      codec_(std::move(codec)),
      config_(config),
      metrics_(metrics),
      clock_(clock),
      shed_(shed),
      shed_rng_(shed.seed ^ (uint64_t{link_id} << 32) ^ src_instance) {
  accum_.reserve(config_.capacity_bytes + 4096);
  flight_actor_ = obs::FlightRecorder::register_actor(
      "edge L" + std::to_string(link_id_) + " s" + std::to_string(src_instance_));
}

void StreamBuffer::prepare_batch_locked() {
  if (accum_count_ != 0) return;
  // Start of a new batch: stamp the header placeholder and remember the
  // arrival time of the first message (for the flush timer). The trace
  // fields are zeroed here and patched in flush_locked(); a batch with
  // no inherited trace gets a 1-in-N chance to originate one.
  accum_.clear();
  accum_.write_u32(src_instance_);
  accum_.write_u64(next_seq_);
  accum_.write_u64(0);  // trace_id
  accum_.write_i64(0);  // trace_origin_ns
  accum_.write_i64(0);  // batch_start_ns
  accum_.write_i64(0);  // flush_ns
  first_packet_ns_ = clock_->now_ns();
  if (!batch_trace_.active())
    batch_trace_ = obs::TraceSampler::global().maybe_start(first_packet_ns_);
}

bool StreamBuffer::finish_add_locked() {
  ++accum_count_;
  ++next_seq_;

  if (accum_.size() >= config_.capacity_bytes + BatchHeader::kSize) {
    if (!pending_) {
      flush_locked();
    } else {
      // Previous frame still parked: retry it; only if that clears can the
      // new content go out.
      if (retry_pending_locked()) flush_locked();
    }
  }
  return !blocked_;
}

bool StreamBuffer::add(const StreamPacket& packet) {
  std::lock_guard lk(mu_);
  if (shed_.policy != ShedPolicy::kNone && admission_shed_locked(packet.serialized_size())) {
    // Shed replaces backpressure on this edge: the producer keeps running.
    return true;
  }
  prepare_batch_locked();
  packet.serialize(accum_);
  return finish_add_locked();
}

bool StreamBuffer::add_raw(std::span<const uint8_t> packet_bytes) {
  std::lock_guard lk(mu_);
  if (shed_.policy != ShedPolicy::kNone && admission_shed_locked(packet_bytes.size())) {
    return true;
  }
  prepare_batch_locked();
  accum_.write_bytes(packet_bytes);
  return finish_add_locked();
}

bool StreamBuffer::pending_overstayed_locked(int64_t now) const {
  return pending_ && pending_since_ns_ != 0 && shed_.max_queue_wait_ns > 0 &&
         now - pending_since_ns_ > shed_.max_queue_wait_ns;
}

void StreamBuffer::count_admission_shed_locked(size_t packet_bytes) {
  shed_packets_ += 1;
  shed_bytes_ += packet_bytes;
  // Coalesced 1-in-64: an overload burst sheds tens of thousands of packets
  // per second, which would wrap the ring and evict the events that explain
  // the burst. The cumulative count rides in `a`.
  if ((shed_packets_ & 63) == 1) {
    obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kShed, shed_packets_,
                                link_id_);
  }
  if (metrics_) {
    metrics_->packets_shed.fetch_add(1, std::memory_order_relaxed);
    metrics_->shed_bytes.fetch_add(packet_bytes, std::memory_order_relaxed);
  }
}

void StreamBuffer::shed_pending_locked() {
  obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kShed,
                              shed_packets_ + pending_count_, link_id_);
  if (!pending_) return;
  shed_batches_ += 1;
  shed_packets_ += pending_count_;
  shed_bytes_ += pending_.size();
  if (metrics_) {
    metrics_->batches_shed.fetch_add(1, std::memory_order_relaxed);
    metrics_->packets_shed.fetch_add(pending_count_, std::memory_order_relaxed);
    metrics_->shed_bytes.fetch_add(pending_.size(), std::memory_order_relaxed);
  }
  // Dropping the ref recycles the pooled frame — no payload bytes move on
  // the shed path (the zero-copy invariant holds here too).
  pending_.reset();
  pending_count_ = 0;
  pending_since_ns_ = 0;
  settle_blocked_locked();
}

bool StreamBuffer::admission_shed_locked(size_t packet_bytes) {
  const int64_t now = clock_->now_ns();
  const size_t hard_cap =
      shed_.max_buffered_bytes != 0 ? shed_.max_buffered_bytes : 2 * config_.capacity_bytes;
  const bool over_cap = accum_.size() + packet_bytes > hard_cap + BatchHeader::kSize;
  // Watermark signal: flow control already refused a frame, or the channel
  // reports the accumulating batch could not be sent right now.
  const bool watermark =
      blocked_ || !sender_->writable(accum_.size() + packet_bytes + BatchHeader::kSize);
  const bool queue_wait = pending_overstayed_locked(now);

  switch (shed_.policy) {
    case ShedPolicy::kNone:
      return false;
    case ShedPolicy::kDropNewest:
      if (watermark || queue_wait || over_cap) {
        count_admission_shed_locked(packet_bytes);
        return true;
      }
      return false;
    case ShedPolicy::kProbabilistic:
      if (over_cap) {
        count_admission_shed_locked(packet_bytes);
        return true;
      }
      if ((watermark || queue_wait) && shed_rng_.next_double() < shed_.drop_probability) {
        count_admission_shed_locked(packet_bytes);
        return true;
      }
      return false;
    case ShedPolicy::kDropOldest:
      // Never refuses the incoming packet; instead release the oldest
      // parked frame once it overstays queue-wait, so fresh data wins.
      if (queue_wait) shed_pending_locked();
      return false;
  }
  return false;
}

bool StreamBuffer::flush_locked() {
  // Patch the trace block before compression sees the payload.
  if (batch_trace_.active()) {
    accum_.patch_u64(BatchHeader::kTraceIdOffset, batch_trace_.trace_id);
    accum_.patch_i64(BatchHeader::kTraceOriginOffset, batch_trace_.origin_ns);
    accum_.patch_i64(BatchHeader::kBatchStartOffset, first_packet_ns_);
    accum_.patch_i64(BatchHeader::kFlushOffset, clock_->now_ns());
    batch_trace_ = {};
  }

  // Payload = [BatchHeader][packets...], optionally compressed.
  bool compressed = codec_->encode(accum_.contents(), codec_scratch_);

  FrameHeader h;
  h.link_id = link_id_;
  h.batch_count = accum_count_;
  h.raw_size = static_cast<uint32_t>(accum_.size());
  if (compressed) h.flags |= FrameHeader::kFlagCompressed;

  pending_ = FrameBufPool::global().acquire();
  encode_frame(h, codec_scratch_, pending_->buffer());
  pending_count_ = accum_count_;
  pending_since_ns_ = clock_->now_ns();

  accum_.clear();
  accum_count_ = 0;
  first_packet_ns_ = 0;
  if (metrics_) metrics_->flushes.fetch_add(1, std::memory_order_relaxed);
  obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kFlush, pending_.size(),
                              link_id_);

  return retry_pending_locked();
}

bool StreamBuffer::retry_pending_locked() {
  if (!pending_) return true;
  // FrameBufRef overload: an in-process channel takes a ref to the pooled
  // frame (zero-copy); socket transports fall back to the span adapter.
  SendStatus s = sender_->try_send(pending_);
  switch (s) {
    case SendStatus::kOk:
      if (metrics_) metrics_->bytes_out.fetch_add(pending_.size(), std::memory_order_relaxed);
      pending_.reset();
      pending_count_ = 0;
      pending_since_ns_ = 0;
      settle_blocked_locked();
      return true;
    case SendStatus::kBlocked:
      if (!blocked_) {
        blocked_ = true;
        blocked_since_ns_ = clock_->now_ns();
        if (metrics_) metrics_->blocked_sends.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kBlock, pending_.size(),
                                    link_id_);
      }
      return false;
    case SendStatus::kClosed:
      // Downstream is gone; drop the frame to avoid wedging shutdown.
      pending_.reset();
      pending_count_ = 0;
      pending_since_ns_ = 0;
      settle_blocked_locked();
      return true;
  }
  return false;
}

void StreamBuffer::settle_blocked_locked() {
  if (blocked_) {
    blocked_ = false;
    int64_t stalled = clock_->now_ns() - blocked_since_ns_;
    if (metrics_ && stalled > 0)
      metrics_->blocked_ns.fetch_add(static_cast<uint64_t>(stalled), std::memory_order_relaxed);
    obs::FlightRecorder::record(flight_actor_, obs::FlightEventType::kUnblock,
                                stalled > 0 ? static_cast<uint64_t>(stalled) : 0, link_id_);
  }
}

void StreamBuffer::on_timer() {
  std::lock_guard lk(mu_);
  if (pending_) {
    if (!retry_pending_locked()) {
      // Still flow-controlled. On a drop-oldest edge the queue-wait signal
      // runs from the timer too, so shedding progresses even when the
      // producer has been descheduled by backpressure.
      if (shed_.policy == ShedPolicy::kDropOldest &&
          pending_overstayed_locked(clock_->now_ns())) {
        shed_pending_locked();
      } else {
        return;
      }
    } else {
      return;
    }
  }
  if (accum_count_ == 0 || config_.flush_interval_ns <= 0) return;
  if (clock_->now_ns() - first_packet_ns_ < config_.flush_interval_ns &&
      accum_.size() < config_.capacity_bytes + BatchHeader::kSize)
    return;
  if (metrics_) metrics_->timer_flushes.fetch_add(1, std::memory_order_relaxed);
  flush_locked();
}

bool StreamBuffer::drain(bool force) {
  std::lock_guard lk(mu_);
  if (!retry_pending_locked()) return false;
  if (accum_count_ > 0 &&
      (force || accum_.size() >= config_.capacity_bytes + BatchHeader::kSize)) {
    return flush_locked();
  }
  return accum_count_ == 0 || !force;
}

bool StreamBuffer::has_unflushed() const {
  std::lock_guard lk(mu_);
  return accum_count_ > 0 || static_cast<bool>(pending_);
}

bool StreamBuffer::blocked() const {
  std::lock_guard lk(mu_);
  return blocked_;
}

void StreamBuffer::close_channel() { sender_->close(); }

void StreamBuffer::note_trace(const obs::TraceContext& ctx) {
  if (!ctx.active()) return;
  std::lock_guard lk(mu_);
  if (batch_trace_.active()) return;
  batch_trace_ = ctx;
}

size_t StreamBuffer::buffered_bytes() const {
  std::lock_guard lk(mu_);
  return accum_.size() + pending_.size();
}

uint64_t StreamBuffer::next_seq() const {
  std::lock_guard lk(mu_);
  return next_seq_;
}

uint64_t StreamBuffer::shed_packets() const {
  std::lock_guard lk(mu_);
  return shed_packets_;
}

uint64_t StreamBuffer::shed_batches() const {
  std::lock_guard lk(mu_);
  return shed_batches_;
}

uint64_t StreamBuffer::shed_bytes_total() const {
  std::lock_guard lk(mu_);
  return shed_bytes_;
}

}  // namespace neptune
