// Workload generators and reference operators used across tests, examples
// and benchmarks:
//
//  * BytesSource / RelayProcessor / CountingSink — the three-stage message
//    relay of paper Figure 1 (the workhorse of Figures 2 and 7).
//  * VariableRateSink — the stage-C processor of Figure 3, whose sleep
//    interval cycles 0..3 ms to trigger backpressure (Figure 4).
//  * ManufacturingSource / SensorStateExtractor / ActuationDelayMonitor —
//    the DEBS-Grand-Challenge-style manufacturing-equipment monitoring job
//    of Figure 8 (66-field readings; 3 chemical additive sensors and their
//    3 valves; the job monitors sensor-change -> valve-actuation delay over
//    a time window). The generator produces the paper's low-entropy sensor
//    stream; RandomBytesSource produces the high-entropy contrast stream
//    used in the compression study (§III-B5).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "neptune/operators.hpp"
#include "neptune/state.hpp"

namespace neptune::workload {

enum class PayloadKind : uint8_t {
  kZero,    ///< all zeros (minimum entropy)
  kText,    ///< repetitive ASCII telemetry (low entropy, LZ4-friendly)
  kRandom,  ///< uniform random bytes (maximum entropy, incompressible)
};

/// Emits `total_packets` packets, each with one `bytes` payload field of
/// `payload_bytes` bytes, split evenly across parallel instances.
/// total_packets == 0 means unbounded (stop the job explicitly).
class BytesSource final : public StreamSource, public Checkpointable {
 public:
  BytesSource(uint64_t total_packets, size_t payload_bytes,
              PayloadKind kind = PayloadKind::kText, uint64_t seed = 1);

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

  // Checkpointable: replay position (emitted count). Atomic (relaxed, like
  // CountingSink::count_) because the recovery coordinator snapshots it from
  // its own thread after Job::quiesce.
  void snapshot_state(ByteBuffer& out) const override {
    out.write_varint(emitted_.load(std::memory_order_relaxed));
  }
  void restore_state(ByteReader& in) override {
    emitted_.store(in.read_varint(), std::memory_order_relaxed);
  }

 private:
  void fill_payload(std::vector<uint8_t>& payload);

  const uint64_t total_packets_;
  const size_t payload_bytes_;
  const PayloadKind kind_;
  Xoshiro256 rng_;
  uint64_t quota_ = 0;
  std::atomic<uint64_t> emitted_{0};
};

/// Stage-2 relay of Figure 1: forwards every packet unchanged. Prefers
/// batch dispatch so packets travel source->sink as wire bytes: the relay
/// never deserializes a field or copies a payload.
class RelayProcessor final : public StreamProcessor {
 public:
  void process(StreamPacket& packet, Emitter& out) override;

  bool prefers_batches() const override { return true; }
  void on_batch(BatchView& batch, Emitter& out) override;
};

/// Terminal stage: counts packets (and the framework records end-to-end
/// latency here because the operator has no outputs).
class CountingSink final : public StreamProcessor, public Checkpointable {
 public:
  /// Optionally spin-waits `delay_ns` per packet to emulate processing cost.
  explicit CountingSink(int64_t delay_ns = 0) : delay_ns_(delay_ns) {}

  void process(StreamPacket& packet, Emitter& out) override;

  bool prefers_batches() const override { return true; }
  void on_batch(BatchView& batch, Emitter& out) override;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Checkpointable: the running count survives restarts.
  void snapshot_state(ByteBuffer& out) const override { out.write_varint(count()); }
  void restore_state(ByteReader& in) override {
    count_.store(in.read_varint(), std::memory_order_relaxed);
  }

 private:
  const int64_t delay_ns_;
  std::atomic<uint64_t> count_{0};
};

/// Source that paces emission against the wall clock: a token bucket filled
/// at `rate_pps` packets/sec, optionally multiplied by `overload_factor`
/// inside a time window — the offered-load generator of the overload bench
/// (bench/overload_shedding) and the overload-resilience tests. The window
/// is relative to the first next() call; duration 0 with factor > 1 means
/// sustained overload once the window opens.
struct PacedSourceConfig {
  double rate_pps = 10'000;
  double overload_factor = 1.0;
  int64_t overload_start_ns = 0;
  int64_t overload_duration_ns = 0;  ///< 0 = sustained once started
  size_t payload_bytes = 64;
  uint64_t total_packets = 0;  ///< 0 = unbounded
  uint64_t seed = 1;
};

class PacedSource final : public StreamSource {
 public:
  explicit PacedSource(PacedSourceConfig config);

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  /// Packets the pacing clock entitled us to emit but backpressure blocked.
  uint64_t backlogged() const { return backlog_.load(std::memory_order_relaxed); }
  bool in_overload() const;

 private:
  /// Packets the schedule entitles this instance to by elapsed time `t`.
  uint64_t entitlement(int64_t elapsed_ns) const;

  PacedSourceConfig config_;
  double instance_rate_ = 0;  ///< per-instance share of rate_pps
  Xoshiro256 rng_;
  uint64_t quota_ = 0;
  int64_t epoch_ns_ = 0;  ///< first next() call
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> backlog_{0};
  std::vector<uint8_t> payload_;
};

/// Figure 3's stage C: processing rate varies over time. The per-packet
/// sleep cycles through `sleep_steps_ns` (paper: 0, 1, 2, 3 ms), advancing
/// either every `step_every_packets` packets or — when `step_every_ns` is
/// non-zero — every `step_every_ns` of wall time (the paper's cycle).
class VariableRateSink final : public StreamProcessor {
 public:
  VariableRateSink(std::vector<int64_t> sleep_steps_ns, uint64_t step_every_packets,
                   int64_t step_every_ns = 0);

  void process(StreamPacket& packet, Emitter& out) override;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  size_t current_step() const { return step_.load(std::memory_order_relaxed); }
  /// Sleep interval currently applied, ns.
  int64_t current_delay_ns() const {
    return sleep_steps_ns_.empty()
               ? 0
               : sleep_steps_ns_[step_.load(std::memory_order_relaxed) % sleep_steps_ns_.size()];
  }

 private:
  void advance_step();

  const std::vector<int64_t> sleep_steps_ns_;
  const uint64_t step_every_;
  const int64_t step_every_ns_;
  std::atomic<uint64_t> count_{0};
  std::atomic<size_t> step_{0};
  uint64_t in_step_ = 0;
  int64_t step_started_ns_ = 0;
};

// --- manufacturing equipment monitoring (Figure 8) -------------------------------

/// Layout of a manufacturing reading packet: field 0 is the reading
/// timestamp (i64 ms), fields 1..kSensors are chemical additive sensor
/// states (bool), the next kSensors are valve states (bool), and the
/// remaining fields are auxiliary channels (i32) for a total of
/// kTotalFields data fields — matching the paper's "6 different data fields
/// and the timestamp out of 66 different data fields".
struct ManufacturingSchema {
  static constexpr size_t kSensors = 3;
  static constexpr size_t kTotalFields = 66;
  static constexpr size_t kTimestamp = 0;
  static constexpr size_t kSensorBase = 1;                 // 3 bool fields
  static constexpr size_t kValveBase = 1 + kSensors;       // 3 bool fields
  static constexpr size_t kAuxBase = 1 + 2 * kSensors;     // 59 i32 fields
};

struct ManufacturingConfig {
  uint64_t total_readings = 0;  ///< 0 = unbounded
  /// Probability a sensor flips per reading (low => low-entropy stream).
  double sensor_flip_probability = 0.002;
  /// Valve actuates this many readings after its sensor changed.
  uint32_t actuation_lag_readings = 5;
  /// Auxiliary channels drift slowly (low entropy) when true, else random.
  bool low_entropy_aux = true;
  uint64_t seed = 42;
};

class ManufacturingSource final : public StreamSource {
 public:
  explicit ManufacturingSource(ManufacturingConfig config);

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;

 private:
  ManufacturingConfig config_;
  Xoshiro256 rng_;
  uint64_t quota_ = 0;
  uint64_t emitted_ = 0;
  int64_t sim_time_ms_ = 0;
  bool sensors_[ManufacturingSchema::kSensors] = {};
  bool valves_[ManufacturingSchema::kSensors] = {};
  uint32_t pending_actuation_[ManufacturingSchema::kSensors] = {};
  int32_t aux_[ManufacturingSchema::kTotalFields] = {};
};

/// Stage 2 of Figure 8: projects the 66-field reading down to the 6
/// interesting fields plus timestamp.
class SensorStateExtractor final : public StreamProcessor {
 public:
  void process(StreamPacket& packet, Emitter& out) override;
};

/// Stage 3 of Figure 8: emits an event per state *change* (sensor or
/// valve), keyed by sensor index — the "emit only on significant change"
/// pattern the paper uses to motivate flush timers.
class ChangeDetector final : public StreamProcessor {
 public:
  void process(StreamPacket& packet, Emitter& out) override;

 private:
  bool last_sensor_[ManufacturingSchema::kSensors] = {};
  bool last_valve_[ManufacturingSchema::kSensors] = {};
  bool primed_ = false;
};

/// Stage 4 of Figure 8: "monitor the delay between the sensor state change
/// and actuation of the corresponding valve over a 24-hour time window".
/// Tracks, per sensor, the last change timestamp and aggregates
/// sensor->valve delays in a sliding window; emits a summary on close.
class ActuationDelayMonitor final : public StreamProcessor {
 public:
  explicit ActuationDelayMonitor(int64_t window_ms = 24LL * 3600 * 1000);

  void process(StreamPacket& packet, Emitter& out) override;
  void close(Emitter& out) override;

  uint64_t delays_observed() const { return delays_observed_.load(std::memory_order_relaxed); }
  double mean_delay_ms() const;

 private:
  void expire(int64_t now_ms);

  const int64_t window_ms_;
  int64_t pending_change_ms_[ManufacturingSchema::kSensors];
  std::deque<std::pair<int64_t, int64_t>> window_;  // (event ms, delay ms)
  double window_delay_sum_ = 0;
  std::atomic<uint64_t> delays_observed_{0};
  std::atomic<uint64_t> delay_sum_ms_{0};
};

// --- file trace replay --------------------------------------------------------

/// Replays a CSV trace file as a stream, one packet per row, with columns
/// parsed per `schema` (the paper's DEBS-2012 dataset was such a trace).
/// Parallel instances partition rows round-robin (row % parallelism ==
/// instance), so the full file is emitted exactly once across the group.
class CsvReplaySource final : public StreamSource, public Checkpointable {
 public:
  /// `max_rows` == 0 replays the whole file. Throws std::runtime_error on
  /// open failure; malformed rows raise PacketFormatError at replay time.
  CsvReplaySource(std::string path, Schema schema, uint64_t max_rows = 0);
  ~CsvReplaySource() override;

  void open(uint32_t instance, uint32_t parallelism) override;
  bool next(Emitter& out, size_t budget) override;
  void close() override;

  uint64_t rows_emitted() const { return emitted_.load(std::memory_order_relaxed); }

  // Checkpointable: replay position. On restore, already-consumed rows are
  // fast-forwarded past without re-emission. Both cursors are relaxed atomics
  // so the recovery coordinator can snapshot them off-thread.
  void snapshot_state(ByteBuffer& out) const override {
    out.write_varint(row_index_.load(std::memory_order_relaxed));
    out.write_varint(emitted_.load(std::memory_order_relaxed));
  }
  void restore_state(ByteReader& in) override {
    resume_from_row_ = in.read_varint();
    emitted_.store(in.read_varint(), std::memory_order_relaxed);
  }

 private:
  struct FileState;
  std::string path_;
  Schema schema_;
  uint64_t max_rows_;
  uint32_t instance_ = 0;
  uint32_t parallelism_ = 1;
  std::atomic<uint64_t> row_index_{0};
  uint64_t resume_from_row_ = 0;
  std::atomic<uint64_t> emitted_{0};
  std::unique_ptr<FileState> file_;
};

/// Parse one CSV line into a packet per `schema`. Exposed for testing.
StreamPacket parse_csv_row(const std::string& line, const Schema& schema);

/// Terminal stage writing each packet as one CSV row (fields joined by
/// commas; strings are not quoted — intended for numeric telemetry dumps).
class CsvFileSink final : public StreamProcessor {
 public:
  explicit CsvFileSink(std::string path);
  ~CsvFileSink() override;

  void process(StreamPacket& packet, Emitter& out) override;
  void close(Emitter& out) override;

  uint64_t rows_written() const { return rows_; }

 private:
  struct FileState;
  std::string path_;
  uint64_t rows_ = 0;
  std::unique_ptr<FileState> file_;
};

}  // namespace neptune::workload
