// Operator state checkpointing — a prototype of the paper's stated future
// work ("developing algorithms for fault tolerant processing while reducing
// overheads that often accompany such schemes", §VI).
//
// Model: upstream backup. A checkpoint captures (a) each source's replay
// position and (b) each stateful processor's user state, taken while the
// job is paused and drained (Job::pause() + Job::quiesce()). Recovery
// submits the same graph again and restores the snapshot before start();
// sources resume from their recorded positions, so nothing is lost and —
// because the drain barrier empties all in-flight data first — nothing is
// duplicated either.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"

namespace neptune {

/// Opt-in interface for operators with state worth checkpointing. Sources
/// typically persist their replay position; processors their aggregation
/// state. Both hooks are invoked only while the instance is quiescent
/// (never concurrently with next()/process()).
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void snapshot_state(ByteBuffer& out) const = 0;
  virtual void restore_state(ByteReader& in) = 0;
};

/// A job snapshot: per (operator id, instance) opaque state blocks, with a
/// byte-exact serialized form (magic, versioned, CRC-protected).
class JobSnapshot {
 public:
  static constexpr uint32_t kMagic = 0x4E505330;  // "NPS0"

  void put(const std::string& op_id, uint32_t instance, std::vector<uint8_t> state) {
    entries_[{op_id, instance}] = std::move(state);
  }

  const std::vector<uint8_t>* find(const std::string& op_id, uint32_t instance) const {
    auto it = entries_.find({op_id, instance});
    return it == entries_.end() ? nullptr : &it->second;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Serialize to bytes (for writing to durable storage).
  void serialize(ByteBuffer& out) const;

  /// Parse a serialized snapshot. Throws std::runtime_error on corruption
  /// (bad magic/CRC) or version mismatch.
  static JobSnapshot deserialize(std::span<const uint8_t> bytes);

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::map<std::pair<std::string, uint32_t>, std::vector<uint8_t>> entries_;
};

}  // namespace neptune
