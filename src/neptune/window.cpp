#include "neptune/window.hpp"

#include <cmath>

namespace neptune::window {

double numeric_field(const StreamPacket& packet, size_t index) {
  const Value& v = packet.field(index);
  switch (value_type(v)) {
    case FieldType::kI32: return static_cast<double>(std::get<int32_t>(v));
    case FieldType::kI64: return static_cast<double>(std::get<int64_t>(v));
    case FieldType::kF32: return static_cast<double>(std::get<float>(v));
    case FieldType::kF64: return std::get<double>(v);
    case FieldType::kBool: return std::get<bool>(v) ? 1.0 : 0.0;
    default: throw PacketFormatError("window: field is not numeric");
  }
}

// --- TumblingAggregator ----------------------------------------------------------

TumblingAggregator::TumblingAggregator(WindowConfig config) : config_(config) {}

std::string TumblingAggregator::key_of(const StreamPacket& packet) const {
  if (config_.key_field < 0) return "";
  const Value& v = packet.field(static_cast<size_t>(config_.key_field));
  if (value_type(v) == FieldType::kString) return std::get<std::string>(v);
  // Integer-ish keys stringify; keeps one map type for all key kinds.
  return std::to_string(static_cast<int64_t>(numeric_field(packet, static_cast<size_t>(
                                                               config_.key_field))));
}

void TumblingAggregator::emit_window(const std::string& key, const WindowStats& w, Emitter& out) {
  StreamPacket p;
  p.add_i64(w.window_start_ms);
  p.add_string(key);
  p.add_i64(static_cast<int64_t>(w.count));
  p.add_f64(w.sum);
  p.add_f64(w.mean());
  p.add_f64(w.min);
  p.add_f64(w.max);
  ++windows_emitted_;
  out.emit(std::move(p));
}

void TumblingAggregator::advance_watermark(int64_t event_ms, Emitter& out) {
  if (event_ms <= watermark_ms_) return;
  watermark_ms_ = event_ms;
  // Close every window whose end is at or before the watermark.
  for (auto& [key, windows] : open_) {
    while (!windows.empty() &&
           windows.begin()->first + config_.window_ms <= watermark_ms_) {
      emit_window(key, windows.begin()->second, out);
      windows.erase(windows.begin());
    }
  }
}

void TumblingAggregator::process(StreamPacket& packet, Emitter& out) {
  int64_t t = std::get<int64_t>(packet.field(config_.time_field));
  double v = numeric_field(packet, config_.value_field);
  int64_t start = t - ((t % config_.window_ms) + config_.window_ms) % config_.window_ms;

  // Late data: its window already closed.
  if (watermark_ms_ != INT64_MIN && start + config_.window_ms <= watermark_ms_) {
    ++late_packets_;
    return;
  }

  auto& windows = open_[key_of(packet)];
  auto [it, inserted] = windows.try_emplace(start);
  WindowStats& w = it->second;
  if (inserted) {
    w.window_start_ms = start;
    w.min = v;
    w.max = v;
  }
  ++w.count;
  w.sum += v;
  if (v < w.min) w.min = v;
  if (v > w.max) w.max = v;

  advance_watermark(t, out);
}

void TumblingAggregator::close(Emitter& out) {
  for (auto& [key, windows] : open_) {
    for (auto& [start, w] : windows) emit_window(key, w, out);
  }
  open_.clear();
}

void TumblingAggregator::snapshot_state(ByteBuffer& out) const {
  out.write_svarint(watermark_ms_);
  out.write_varint(late_packets_);
  out.write_varint(windows_emitted_);
  out.write_varint(open_.size());
  for (const auto& [key, windows] : open_) {
    out.write_string(key);
    out.write_varint(windows.size());
    for (const auto& [start, w] : windows) {
      out.write_svarint(start);
      out.write_varint(w.count);
      out.write_f64(w.sum);
      out.write_f64(w.min);
      out.write_f64(w.max);
    }
  }
}

void TumblingAggregator::restore_state(ByteReader& in) {
  open_.clear();
  watermark_ms_ = in.read_svarint();
  late_packets_ = in.read_varint();
  windows_emitted_ = in.read_varint();
  uint64_t keys = in.read_varint();
  for (uint64_t k = 0; k < keys; ++k) {
    std::string key = in.read_string();
    uint64_t windows = in.read_varint();
    auto& per_key = open_[key];
    for (uint64_t i = 0; i < windows; ++i) {
      WindowStats w;
      w.window_start_ms = in.read_svarint();
      w.count = in.read_varint();
      w.sum = in.read_f64();
      w.min = in.read_f64();
      w.max = in.read_f64();
      per_key[w.window_start_ms] = w;
    }
  }
}

// --- SlidingAggregator ---------------------------------------------------------

SlidingAggregator::SlidingAggregator(WindowConfig config) : config_(config) {}

void SlidingAggregator::evict(int64_t now_ms) {
  int64_t horizon = now_ms - config_.window_ms;
  while (!samples_.empty() && samples_.front().first < horizon) {
    sum_ -= samples_.front().second;
    samples_.pop_front();
  }
  while (!min_q_.empty() && min_q_.front().first < horizon) min_q_.pop_front();
  while (!max_q_.empty() && max_q_.front().first < horizon) max_q_.pop_front();
}

void SlidingAggregator::process(StreamPacket& packet, Emitter& out) {
  int64_t t = std::get<int64_t>(packet.field(config_.time_field));
  double v = numeric_field(packet, config_.value_field);
  samples_.emplace_back(t, v);
  sum_ += v;
  while (!min_q_.empty() && min_q_.back().second >= v) min_q_.pop_back();
  min_q_.emplace_back(t, v);
  while (!max_q_.empty() && max_q_.back().second <= v) max_q_.pop_back();
  max_q_.emplace_back(t, v);
  evict(t);

  StreamPacket o;
  o.set_event_time_ns(packet.event_time_ns());
  o.add_i64(t);
  o.add_i64(static_cast<int64_t>(samples_.size()));
  o.add_f64(sum_);
  o.add_f64(samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size()));
  o.add_f64(min_q_.empty() ? 0.0 : min_q_.front().second);
  o.add_f64(max_q_.empty() ? 0.0 : max_q_.front().second);
  out.emit(std::move(o));
}

namespace {

void write_sample_deque(ByteBuffer& out, const std::deque<std::pair<int64_t, double>>& q) {
  out.write_varint(q.size());
  for (const auto& [t, v] : q) {
    out.write_svarint(t);
    out.write_f64(v);
  }
}

void read_sample_deque(ByteReader& in, std::deque<std::pair<int64_t, double>>& q) {
  q.clear();
  uint64_t n = in.read_varint();
  for (uint64_t i = 0; i < n; ++i) {
    int64_t t = in.read_svarint();
    double v = in.read_f64();
    q.emplace_back(t, v);
  }
}

}  // namespace

// All three deques are serialized verbatim (not rebuilt from samples_):
// with jittered event times the monotonic queues' content depends on the
// full push/evict history, so reconstruction would not be byte-exact.
void SlidingAggregator::snapshot_state(ByteBuffer& out) const {
  write_sample_deque(out, samples_);
  write_sample_deque(out, min_q_);
  write_sample_deque(out, max_q_);
  out.write_f64(sum_);
}

void SlidingAggregator::restore_state(ByteReader& in) {
  read_sample_deque(in, samples_);
  read_sample_deque(in, min_q_);
  read_sample_deque(in, max_q_);
  sum_ = in.read_f64();
}

// --- CountWindowAggregator --------------------------------------------------------

CountWindowAggregator::CountWindowAggregator(uint64_t count, size_t value_field, int key_field)
    : count_(count == 0 ? 1 : count), value_field_(value_field), key_field_(key_field) {}

std::string CountWindowAggregator::key_of(const StreamPacket& packet) const {
  if (key_field_ < 0) return "";
  const Value& v = packet.field(static_cast<size_t>(key_field_));
  if (value_type(v) == FieldType::kString) return std::get<std::string>(v);
  return std::to_string(
      static_cast<int64_t>(numeric_field(packet, static_cast<size_t>(key_field_))));
}

void CountWindowAggregator::emit_bucket(const std::string& key, Emitter& out) {
  Bucket& b = buckets_[key];
  if (b.n == 0) return;
  StreamPacket o;
  o.add_string(key);
  o.add_i64(static_cast<int64_t>(b.n));
  o.add_f64(b.sum);
  o.add_f64(b.sum / static_cast<double>(b.n));
  o.add_f64(b.min);
  o.add_f64(b.max);
  b = Bucket{};
  out.emit(std::move(o));
}

void CountWindowAggregator::process(StreamPacket& packet, Emitter& out) {
  std::string key = key_of(packet);
  double v = numeric_field(packet, value_field_);
  Bucket& b = buckets_[key];
  if (b.n == 0) {
    b.min = v;
    b.max = v;
  }
  ++b.n;
  b.sum += v;
  if (v < b.min) b.min = v;
  if (v > b.max) b.max = v;
  if (b.n >= count_) emit_bucket(key, out);
}

void CountWindowAggregator::close(Emitter& out) {
  for (auto& [key, b] : buckets_) {
    if (b.n > 0) emit_bucket(key, out);
  }
}

void CountWindowAggregator::snapshot_state(ByteBuffer& out) const {
  out.write_varint(buckets_.size());
  for (const auto& [key, b] : buckets_) {
    out.write_string(key);
    out.write_varint(b.n);
    out.write_f64(b.sum);
    out.write_f64(b.min);
    out.write_f64(b.max);
  }
}

void CountWindowAggregator::restore_state(ByteReader& in) {
  buckets_.clear();
  uint64_t n = in.read_varint();
  for (uint64_t i = 0; i < n; ++i) {
    std::string key = in.read_string();
    Bucket b;
    b.n = in.read_varint();
    b.sum = in.read_f64();
    b.min = in.read_f64();
    b.max = in.read_f64();
    buckets_[key] = b;
  }
}

// --- SlidingChangeDetector ------------------------------------------------------

SlidingChangeDetector::SlidingChangeDetector(WindowConfig config, double threshold)
    : config_(config), threshold_(threshold) {}

void SlidingChangeDetector::process(StreamPacket& packet, Emitter& out) {
  int64_t t = std::get<int64_t>(packet.field(config_.time_field));
  double v = numeric_field(packet, config_.value_field);
  samples_.emplace_back(t, v);
  sum_ += v;
  ++count_;
  while (!samples_.empty() && samples_.front().first < t - config_.window_ms) {
    sum_ -= samples_.front().second;
    --count_;
    samples_.pop_front();
  }
  double mean = sum_ / static_cast<double>(count_);
  if (!emitted_once_ || std::fabs(mean - last_emitted_mean_) >= threshold_) {
    emitted_once_ = true;
    last_emitted_mean_ = mean;
    ++emissions_;
    StreamPacket p;
    p.set_event_time_ns(packet.event_time_ns());
    p.add_i64(t);
    p.add_f64(mean);
    out.emit(std::move(p));
  }
}

}  // namespace neptune::window
