#include "neptune/partitioning.hpp"

#include <stdexcept>

namespace neptune {

uint32_t ShufflePartitioning::select(const StreamPacket&, uint32_t src_instance, uint32_t n) {
  if (src_instance >= cursors_.size()) cursors_.resize(src_instance + 1);  // unprepared use
  uint32_t& next = cursors_[src_instance].next;
  uint32_t pick = next % n;
  next = (next + 1) % n;
  return pick;
}

uint32_t RandomPartitioning::select(const StreamPacket&, uint32_t src_instance, uint32_t n) {
  if (src_instance >= states_.size()) prepare(src_instance + 1);  // unprepared use
  // xorshift64* per sender lane.
  uint64_t& s = states_[src_instance].s;
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return static_cast<uint32_t>((s * 2685821657736338717ULL) % n);
}

std::shared_ptr<PartitioningScheme> make_partitioning(const std::string& scheme, int field_index) {
  if (scheme == "shuffle") return std::make_shared<ShufflePartitioning>();
  if (scheme == "random") return std::make_shared<RandomPartitioning>();
  if (scheme == "fields-hash")
    return std::make_shared<FieldsHashPartitioning>(static_cast<size_t>(field_index));
  if (scheme == "broadcast") return std::make_shared<BroadcastPartitioning>();
  if (scheme == "direct") return std::make_shared<DirectPartitioning>();
  throw std::invalid_argument("unknown partitioning scheme: " + scheme);
}

}  // namespace neptune
