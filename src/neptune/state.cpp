#include "neptune/state.hpp"

#include <stdexcept>

#include "common/crc32.hpp"

namespace neptune {

void JobSnapshot::serialize(ByteBuffer& out) const {
  ByteBuffer body;
  body.write_varint(entries_.size());
  for (const auto& [key, state] : entries_) {
    body.write_string(key.first);
    body.write_u32(key.second);
    body.write_block(state);
  }
  out.write_u32(kMagic);
  out.write_u8(1);  // version
  out.write_u32(crc32(body.contents()));
  out.write_block(body.contents());
}

JobSnapshot JobSnapshot::deserialize(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kMagic) throw std::runtime_error("JobSnapshot: bad magic");
  uint8_t version = r.read_u8();
  if (version != 1) throw std::runtime_error("JobSnapshot: unsupported version");
  uint32_t crc = r.read_u32();
  auto body = r.read_block();
  if (crc32(body) != crc) throw std::runtime_error("JobSnapshot: CRC mismatch");

  JobSnapshot snap;
  ByteReader br(body);
  uint64_t n = br.read_varint();
  for (uint64_t i = 0; i < n; ++i) {
    std::string op = br.read_string();
    uint32_t instance = br.read_u32();
    auto state = br.read_block();
    snap.put(op, instance, std::vector<uint8_t>(state.begin(), state.end()));
  }
  return snap;
}

}  // namespace neptune
