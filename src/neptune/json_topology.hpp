// JSON stream-graph descriptors (paper §III-A7: "a stream processing graph
// can be created by directly invoking the NEPTUNE API or through a JSON
// descriptor file"). Operator implementations are looked up by type name in
// an OperatorRegistry.
//
// Descriptor shape:
// {
//   "name": "relay",
//   "config": { "buffer_bytes": 1048576, "flush_interval_ms": 5,
//               "channel_bytes": 4194304, "source_batch": 512 },
//   "operators": [
//     { "id": "src",   "type": "sensor-source", "kind": "source",
//       "parallelism": 2, "resource": 0 },
//     { "id": "relay", "type": "relay",          "kind": "processor" }
//   ],
//   "links": [
//     { "from": "src", "to": "relay", "partitioning": "fields-hash",
//       "field": 0, "compression": "selective", "entropy_threshold": 6.0 },
//     { "from": "src", "to": "dashboard", "qos": "best_effort",
//       "shed_policy": "drop-oldest", "shed_max_queue_wait_ms": 20,
//       "shed_drop_probability": 0.5, "shed_max_buffered_bytes": 131072 }
//   ]
// }
//
// `qos` defaults to "critical" (lossless, backpressure only). Declaring a
// shed_policy other than "none" requires "qos": "best_effort".
#pragma once

#include <map>
#include <string>

#include "common/json.hpp"
#include "neptune/graph.hpp"

namespace neptune {

/// Maps descriptor `type` names to operator factories.
class OperatorRegistry {
 public:
  OperatorRegistry& register_source(const std::string& type, SourceFactory factory);
  OperatorRegistry& register_processor(const std::string& type, ProcessorFactory factory);

  const SourceFactory* find_source(const std::string& type) const;
  const ProcessorFactory* find_processor(const std::string& type) const;

 private:
  std::map<std::string, SourceFactory> sources_;
  std::map<std::string, ProcessorFactory> processors_;
};

/// Build a StreamGraph from a parsed descriptor. Throws GraphError or
/// JsonError on malformed input.
StreamGraph graph_from_json(const JsonValue& doc, const OperatorRegistry& registry);

/// Convenience: parse text then build.
StreamGraph graph_from_json(std::string_view text, const OperatorRegistry& registry);

/// Disambiguation for string literals (a const char* would otherwise
/// convert equally well to JsonValue and std::string_view).
inline StreamGraph graph_from_json(const char* text, const OperatorRegistry& registry) {
  return graph_from_json(std::string_view(text), registry);
}

}  // namespace neptune
