// Per-operator and per-job metrics: throughput, end-to-end latency and
// bandwidth — the paper's three evaluation metrics (§IV).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace neptune {

/// Live counters for one operator instance. All relaxed atomics: metrics
/// must never serialize the hot path.
struct OperatorMetrics {
  std::atomic<uint64_t> packets_in{0};
  std::atomic<uint64_t> packets_out{0};
  std::atomic<uint64_t> bytes_in{0};    ///< wire bytes received (after framing)
  std::atomic<uint64_t> bytes_out{0};   ///< wire bytes sent (frames, post-compression)
  std::atomic<uint64_t> batches_in{0};
  std::atomic<uint64_t> flushes{0};          ///< buffer flushes (threshold or timer)
  std::atomic<uint64_t> timer_flushes{0};    ///< flushes forced by the latency timer
  std::atomic<uint64_t> blocked_sends{0};    ///< flush attempts rejected by flow control
  std::atomic<uint64_t> blocked_ns{0};       ///< cumulative time outputs sat blocked by flow control
  std::atomic<uint64_t> seq_violations{0};   ///< ordering/exactly-once breaches (must stay 0)
  std::atomic<uint64_t> executions{0};       ///< scheduled executions of the instance task

  // --- zero-copy path counters (paper §III-B3 taken to its limit) ------------
  std::atomic<uint64_t> serde_alloc_bytes{0};  ///< heap bytes copied deserializing string/bytes fields
  std::atomic<uint64_t> frame_copies{0};       ///< inbound frames that had to be copied (partial/chunked)
  std::atomic<uint64_t> batch_dispatches{0};   ///< batches handed to on_batch() as views

  // --- gauges (instantaneous, refreshed by the owner; read by telemetry) -----
  std::atomic<int64_t> outbound_buffered_bytes{0};  ///< bytes parked in stream buffers
  std::atomic<int64_t> inbound_ready_batches{0};    ///< parsed batches awaiting execution

  // --- robustness counters (fault-tolerance subsystem) -----------------------
  std::atomic<uint64_t> reconnects{0};             ///< supervised-edge TCP re-establishments
  std::atomic<uint64_t> corrupt_frames_dropped{0}; ///< frames rejected by CRC/format checks
  std::atomic<uint64_t> dup_frames_dropped{0};     ///< replayed frames deduped by edge seq

  // --- overload-resilience counters ------------------------------------------
  std::atomic<uint64_t> packets_shed{0};   ///< best-effort packets dropped by admission/shedding
  std::atomic<uint64_t> batches_shed{0};   ///< parked frames released whole (drop-oldest)
  std::atomic<uint64_t> shed_bytes{0};     ///< serialized bytes those sheds would have sent
  std::atomic<uint64_t> shed_gaps{0};      ///< packets a receiver observed missing on a lossy edge
  std::atomic<uint64_t> packets_quarantined{0};  ///< poison packets/batch remainders sent to the DLQ
  std::atomic<uint64_t> deadline_overruns{0};    ///< dispatches that exceeded the per-packet deadline
  std::atomic<uint64_t> watchdog_stalls{0};      ///< watchdog stall detections for this instance

  // --- watchdog gauge: wall-clock ns when the current execution entered the
  //     operator, 0 while idle. Lets the watchdog spot a dispatch that never
  //     returns (infinite loop inside execute/on_batch). ----------------------
  std::atomic<int64_t> exec_begin_ns{0};

  /// End-to-end latency, recorded at sink operators (no output links).
  LatencyHistogram sink_latency;
};

/// Immutable snapshot used by benches/reports.
struct OperatorMetricsSnapshot {
  std::string operator_id;
  uint32_t instance = 0;
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t batches_in = 0;
  uint64_t flushes = 0;
  uint64_t timer_flushes = 0;
  uint64_t blocked_sends = 0;
  uint64_t blocked_ns = 0;
  uint64_t seq_violations = 0;
  uint64_t executions = 0;
  uint64_t serde_alloc_bytes = 0;
  uint64_t frame_copies = 0;
  uint64_t batch_dispatches = 0;
  int64_t outbound_buffered_bytes = 0;
  int64_t inbound_ready_batches = 0;
  uint64_t reconnects = 0;
  uint64_t corrupt_frames_dropped = 0;
  uint64_t dup_frames_dropped = 0;
  uint64_t packets_shed = 0;
  uint64_t batches_shed = 0;
  uint64_t shed_bytes = 0;
  uint64_t shed_gaps = 0;
  uint64_t packets_quarantined = 0;
  uint64_t deadline_overruns = 0;
  uint64_t watchdog_stalls = 0;
  int64_t exec_begin_ns = 0;  ///< wall ns the in-flight execution entered; 0 idle
  // Sink end-to-end latency percentiles (ns); zero for non-sink operators.
  uint64_t sink_latency_p50_ns = 0;
  uint64_t sink_latency_p99_ns = 0;
  uint64_t sink_latency_p999_ns = 0;
  uint64_t sink_latency_max_ns = 0;
  double sink_latency_mean_ns = 0;
  uint64_t sink_latency_count = 0;
  uint64_t sink_latency_saturated = 0;  ///< samples clamped at the top bucket
};

struct JobMetricsSnapshot {
  std::vector<OperatorMetricsSnapshot> operators;
  int64_t wall_time_ns = 0;

  // --- job-level robustness counters (filled by the RecoveryCoordinator;
  //     zero for jobs run without one) -------------------------------------
  uint64_t checkpoints_taken = 0;  ///< automatic checkpoints captured
  uint64_t recoveries = 0;         ///< checkpoint restores after detected failures
  uint64_t recovery_ns = 0;        ///< cumulative failure->restored-and-running time

  uint64_t total(const std::string& op_id, uint64_t OperatorMetricsSnapshot::* field) const {
    uint64_t sum = 0;
    for (const auto& m : operators) {
      if (m.operator_id == op_id) sum += m.*field;
    }
    return sum;
  }
  uint64_t total(uint64_t OperatorMetricsSnapshot::* field) const {
    uint64_t sum = 0;
    for (const auto& m : operators) sum += m.*field;
    return sum;
  }
  double seconds() const { return static_cast<double>(wall_time_ns) * 1e-9; }
};

/// Multi-line human-readable report of a job snapshot — one row per
/// operator (instances aggregated) plus totals. For logs and examples.
std::string format_metrics(const JobMetricsSnapshot& snap);

inline OperatorMetricsSnapshot snapshot_of(const OperatorMetrics& m) {
  OperatorMetricsSnapshot s;
  s.packets_in = m.packets_in.load(std::memory_order_relaxed);
  s.packets_out = m.packets_out.load(std::memory_order_relaxed);
  s.bytes_in = m.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = m.bytes_out.load(std::memory_order_relaxed);
  s.batches_in = m.batches_in.load(std::memory_order_relaxed);
  s.flushes = m.flushes.load(std::memory_order_relaxed);
  s.timer_flushes = m.timer_flushes.load(std::memory_order_relaxed);
  s.blocked_sends = m.blocked_sends.load(std::memory_order_relaxed);
  s.blocked_ns = m.blocked_ns.load(std::memory_order_relaxed);
  s.seq_violations = m.seq_violations.load(std::memory_order_relaxed);
  s.executions = m.executions.load(std::memory_order_relaxed);
  s.serde_alloc_bytes = m.serde_alloc_bytes.load(std::memory_order_relaxed);
  s.frame_copies = m.frame_copies.load(std::memory_order_relaxed);
  s.batch_dispatches = m.batch_dispatches.load(std::memory_order_relaxed);
  s.outbound_buffered_bytes = m.outbound_buffered_bytes.load(std::memory_order_relaxed);
  s.inbound_ready_batches = m.inbound_ready_batches.load(std::memory_order_relaxed);
  s.reconnects = m.reconnects.load(std::memory_order_relaxed);
  s.corrupt_frames_dropped = m.corrupt_frames_dropped.load(std::memory_order_relaxed);
  s.dup_frames_dropped = m.dup_frames_dropped.load(std::memory_order_relaxed);
  s.packets_shed = m.packets_shed.load(std::memory_order_relaxed);
  s.batches_shed = m.batches_shed.load(std::memory_order_relaxed);
  s.shed_bytes = m.shed_bytes.load(std::memory_order_relaxed);
  s.shed_gaps = m.shed_gaps.load(std::memory_order_relaxed);
  s.packets_quarantined = m.packets_quarantined.load(std::memory_order_relaxed);
  s.deadline_overruns = m.deadline_overruns.load(std::memory_order_relaxed);
  s.watchdog_stalls = m.watchdog_stalls.load(std::memory_order_relaxed);
  s.exec_begin_ns = m.exec_begin_ns.load(std::memory_order_relaxed);
  s.sink_latency_count = m.sink_latency.count();
  s.sink_latency_saturated = m.sink_latency.saturated_count();
  if (s.sink_latency_count > 0) {
    s.sink_latency_p50_ns = m.sink_latency.percentile(50);
    s.sink_latency_p99_ns = m.sink_latency.percentile(99);
    s.sink_latency_p999_ns = m.sink_latency.percentile(99.9);
    s.sink_latency_max_ns = m.sink_latency.max();
    s.sink_latency_mean_ns = m.sink_latency.mean();
  }
  return s;
}

}  // namespace neptune
