#include "neptune/packet.hpp"

namespace neptune {

const char* field_type_name(FieldType t) {
  switch (t) {
    case FieldType::kI32: return "i32";
    case FieldType::kI64: return "i64";
    case FieldType::kF32: return "f32";
    case FieldType::kF64: return "f64";
    case FieldType::kBool: return "bool";
    case FieldType::kString: return "string";
    case FieldType::kBytes: return "bytes";
  }
  return "?";
}

FieldType value_type(const Value& v) { return static_cast<FieldType>(v.index()); }

Schema::Schema(std::initializer_list<Field> fields) : fields_(fields) {}

Schema& Schema::add(std::string name, FieldType type) {
  fields_.push_back({std::move(name), type});
  return *this;
}

int Schema::index_of(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t svarint_size(int64_t v) {
  return varint_size((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

}  // namespace

size_t StreamPacket::serialized_size() const {
  size_t n = svarint_size(event_time_ns_) + varint_size(fields_.size());
  for (const auto& v : fields_) {
    n += 1;  // type tag
    switch (value_type(v)) {
      case FieldType::kI32: n += svarint_size(std::get<int32_t>(v)); break;
      case FieldType::kI64: n += svarint_size(std::get<int64_t>(v)); break;
      case FieldType::kF32: n += 4; break;
      case FieldType::kF64: n += 8; break;
      case FieldType::kBool: n += 1; break;
      case FieldType::kString: {
        const auto& s = std::get<std::string>(v);
        n += varint_size(s.size()) + s.size();
        break;
      }
      case FieldType::kBytes: {
        const auto& b = std::get<std::vector<uint8_t>>(v);
        n += varint_size(b.size()) + b.size();
        break;
      }
    }
  }
  return n;
}

void StreamPacket::serialize(ByteBuffer& out) const {
  out.write_svarint(event_time_ns_);
  out.write_varint(fields_.size());
  for (const auto& v : fields_) {
    FieldType t = value_type(v);
    out.write_u8(static_cast<uint8_t>(t));
    switch (t) {
      case FieldType::kI32: out.write_svarint(std::get<int32_t>(v)); break;
      case FieldType::kI64: out.write_svarint(std::get<int64_t>(v)); break;
      case FieldType::kF32: out.write_f32(std::get<float>(v)); break;
      case FieldType::kF64: out.write_f64(std::get<double>(v)); break;
      case FieldType::kBool: out.write_bool(std::get<bool>(v)); break;
      case FieldType::kString: out.write_string(std::get<std::string>(v)); break;
      case FieldType::kBytes: {
        const auto& b = std::get<std::vector<uint8_t>>(v);
        out.write_block(b);
        break;
      }
    }
  }
}

void StreamPacket::deserialize(ByteReader& in) {
  clear();
  event_time_ns_ = in.read_svarint();
  uint64_t n = in.read_varint();
  if (n > 1u << 20) throw PacketFormatError("absurd field count");
  fields_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t tag = in.read_u8();
    switch (static_cast<FieldType>(tag)) {
      case FieldType::kI32:
        fields_.emplace_back(static_cast<int32_t>(in.read_svarint()));
        break;
      case FieldType::kI64: fields_.emplace_back(in.read_svarint()); break;
      case FieldType::kF32: fields_.emplace_back(in.read_f32()); break;
      case FieldType::kF64: fields_.emplace_back(in.read_f64()); break;
      case FieldType::kBool: fields_.emplace_back(in.read_bool()); break;
      case FieldType::kString: fields_.emplace_back(in.read_string()); break;
      case FieldType::kBytes: {
        auto s = in.read_block();
        fields_.emplace_back(std::vector<uint8_t>(s.begin(), s.end()));
        break;
      }
      default: throw PacketFormatError("unknown field type tag");
    }
  }
}

uint64_t StreamPacket::field_hash(size_t i) const {
  // FNV-1a over the value's canonical bytes.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t j = 0; j < n; ++j) {
      h ^= b[j];
      h *= kPrime;
    }
    return h;
  };
  const Value& v = field(i);
  uint64_t h = kOffset;
  switch (value_type(v)) {
    case FieldType::kI32: {
      // Hash integers through their i64 widening so that the same logical
      // key in an i32 or i64 field lands on the same partition.
      int64_t x = std::get<int32_t>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kI64: {
      int64_t x = std::get<int64_t>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kF32: {
      float x = std::get<float>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kF64: {
      double x = std::get<double>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kBool: {
      uint8_t x = std::get<bool>(v) ? 1 : 0;
      h = mix(h, &x, 1);
      break;
    }
    case FieldType::kString: {
      const auto& s = std::get<std::string>(v);
      h = mix(h, s.data(), s.size());
      break;
    }
    case FieldType::kBytes: {
      const auto& b = std::get<std::vector<uint8_t>>(v);
      h = mix(h, b.data(), b.size());
      break;
    }
  }
  return h;
}

}  // namespace neptune
