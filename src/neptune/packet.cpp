#include "neptune/packet.hpp"

namespace neptune {

const char* field_type_name(FieldType t) {
  switch (t) {
    case FieldType::kI32: return "i32";
    case FieldType::kI64: return "i64";
    case FieldType::kF32: return "f32";
    case FieldType::kF64: return "f64";
    case FieldType::kBool: return "bool";
    case FieldType::kString: return "string";
    case FieldType::kBytes: return "bytes";
  }
  return "?";
}

FieldType value_type(const Value& v) { return static_cast<FieldType>(v.index()); }

Schema::Schema(std::initializer_list<Field> fields) : fields_(fields) {}

Schema& Schema::add(std::string name, FieldType type) {
  fields_.push_back({std::move(name), type});
  return *this;
}

int Schema::index_of(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t svarint_size(int64_t v) {
  return varint_size((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

}  // namespace

size_t StreamPacket::serialized_size() const {
  size_t n = svarint_size(event_time_ns_) + varint_size(fields_.size());
  for (const auto& v : fields_) {
    n += 1;  // type tag
    switch (value_type(v)) {
      case FieldType::kI32: n += svarint_size(std::get<int32_t>(v)); break;
      case FieldType::kI64: n += svarint_size(std::get<int64_t>(v)); break;
      case FieldType::kF32: n += 4; break;
      case FieldType::kF64: n += 8; break;
      case FieldType::kBool: n += 1; break;
      case FieldType::kString: {
        const auto& s = std::get<std::string>(v);
        n += varint_size(s.size()) + s.size();
        break;
      }
      case FieldType::kBytes: {
        const auto& b = std::get<std::vector<uint8_t>>(v);
        n += varint_size(b.size()) + b.size();
        break;
      }
    }
  }
  return n;
}

void StreamPacket::serialize(ByteBuffer& out) const {
  out.write_svarint(event_time_ns_);
  out.write_varint(fields_.size());
  for (const auto& v : fields_) {
    FieldType t = value_type(v);
    out.write_u8(static_cast<uint8_t>(t));
    switch (t) {
      case FieldType::kI32: out.write_svarint(std::get<int32_t>(v)); break;
      case FieldType::kI64: out.write_svarint(std::get<int64_t>(v)); break;
      case FieldType::kF32: out.write_f32(std::get<float>(v)); break;
      case FieldType::kF64: out.write_f64(std::get<double>(v)); break;
      case FieldType::kBool: out.write_bool(std::get<bool>(v)); break;
      case FieldType::kString: out.write_string(std::get<std::string>(v)); break;
      case FieldType::kBytes: {
        const auto& b = std::get<std::vector<uint8_t>>(v);
        out.write_block(b);
        break;
      }
    }
  }
}

void StreamPacket::deserialize(ByteReader& in, uint64_t* alloc_bytes) {
  clear();
  event_time_ns_ = in.read_svarint();
  uint64_t n = in.read_varint();
  if (n > 1u << 20) throw PacketFormatError("absurd field count");
  fields_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t tag = in.read_u8();
    switch (static_cast<FieldType>(tag)) {
      case FieldType::kI32:
        fields_.emplace_back(static_cast<int32_t>(in.read_svarint()));
        break;
      case FieldType::kI64: fields_.emplace_back(in.read_svarint()); break;
      case FieldType::kF32: fields_.emplace_back(in.read_f32()); break;
      case FieldType::kF64: fields_.emplace_back(in.read_f64()); break;
      case FieldType::kBool: fields_.emplace_back(in.read_bool()); break;
      case FieldType::kString: {
        auto s = in.read_block();
        if (alloc_bytes) *alloc_bytes += s.size();
        fields_.emplace_back(std::string(reinterpret_cast<const char*>(s.data()), s.size()));
        break;
      }
      case FieldType::kBytes: {
        auto s = in.read_block();
        if (alloc_bytes) *alloc_bytes += s.size();
        fields_.emplace_back(std::vector<uint8_t>(s.begin(), s.end()));
        break;
      }
      default: throw PacketFormatError("unknown field type tag");
    }
  }
}

namespace {

[[noreturn]] void view_underflow(const char* what) { throw BufferUnderflow(what); }

// Raw-pointer varint decode: the cursor lives in a register for the whole
// parse loop instead of round-tripping through a reader object's member on
// every byte. Decode semantics are identical to ByteReader::read_varint
// (10-byte cap, low 64 bits kept) — the differential fuzz target holds the
// two in lock-step.
inline uint64_t view_varint(const uint8_t*& p, const uint8_t* end) {
  if (p >= end) view_underflow("truncated varint");
  uint8_t b0 = *p;
  if ((b0 & 0x80) == 0) {
    ++p;
    return b0;
  }
  if (end - p >= 2) {
    uint8_t b1 = p[1];
    if ((b1 & 0x80) == 0) {
      p += 2;
      return (static_cast<uint64_t>(b1) << 7) | (b0 & 0x7F);
    }
  }
  uint64_t v = b0 & 0x7F;
  int shift = 7;
  ++p;
  for (;;) {
    if (shift >= 64) view_underflow("varint too long");
    if (p >= end) view_underflow("truncated varint");
    uint8_t b = *p++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

inline int64_t view_svarint(const uint8_t*& p, const uint8_t* end) {
  uint64_t z = view_varint(p, end);
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace

size_t PacketView::parse(std::span<const uint8_t> buf, size_t offset) {
  raw_ = {};
  if (offset > buf.size()) throw PacketFormatError("packet offset past end of batch");
  const uint8_t* const start = buf.data() + offset;
  const uint8_t* p = start;
  const uint8_t* const end = buf.data() + buf.size();
  try {
    event_time_ns_ = view_svarint(p, end);
    uint64_t n = view_varint(p, end);
    if (n > 1u << 20) throw PacketFormatError("absurd field count");
    // Size the table once and fill by index through a hoisted pointer: a
    // push_back in this loop would let the compiler assume reallocation on
    // every iteration and spill the cursor to memory (measured ~3x slower
    // on scalar-heavy packets). If a throw interrupts the fill the view
    // holds stale refs, which is fine — parse() failure leaves the view
    // unusable until the next successful parse.
    fields_.resize(n);
    FieldRef* out = fields_.data();
    for (uint64_t i = 0; i < n; ++i) {
      if (p >= end) view_underflow("truncated field tag");
      uint8_t tag = *p++;
      FieldRef& r = out[i];
      r.type = static_cast<FieldType>(tag);
      switch (r.type) {
        case FieldType::kI32: r.i = static_cast<int32_t>(view_svarint(p, end)); break;
        case FieldType::kI64: r.i = view_svarint(p, end); break;
        case FieldType::kF32: {
          if (end - p < 4) view_underflow("truncated f32");
          uint32_t bits;
          std::memcpy(&bits, p, 4);
          if constexpr (std::endian::native == std::endian::big) bits = __builtin_bswap32(bits);
          std::memcpy(&r.f32, &bits, 4);
          p += 4;
          break;
        }
        case FieldType::kF64: {
          if (end - p < 8) view_underflow("truncated f64");
          uint64_t bits;
          std::memcpy(&bits, p, 8);
          if constexpr (std::endian::native == std::endian::big) bits = __builtin_bswap64(bits);
          std::memcpy(&r.f64, &bits, 8);
          p += 8;
          break;
        }
        case FieldType::kBool: {
          if (p >= end) view_underflow("truncated bool");
          r.i = *p++ != 0 ? 1 : 0;
          break;
        }
        case FieldType::kString:
        case FieldType::kBytes: {
          uint64_t len = view_varint(p, end);
          if (static_cast<uint64_t>(end - p) < len) view_underflow("truncated block");
          r.data = p;
          r.size = static_cast<uint32_t>(len);
          p += len;
          break;
        }
        default: throw PacketFormatError("unknown field type tag");
      }
    }
  } catch (const BufferUnderflow& e) {
    // Truncated fixed field, truncated block, or overlong varint: surface a
    // single malformed-packet error type to callers (every access above is
    // bounded by `end`, so the view never reads past the span either way).
    throw PacketFormatError(std::string("malformed packet: ") + e.what());
  }
  raw_ = buf.subspan(offset, static_cast<size_t>(p - start));
  return offset + static_cast<size_t>(p - start);
}

uint64_t PacketView::field_hash(size_t i) const {
  // FNV-1a over the value's canonical bytes — bit-identical to
  // StreamPacket::field_hash (integers hash through their i64 widening).
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t j = 0; j < n; ++j) {
      h ^= b[j];
      h *= kPrime;
    }
    return h;
  };
  const FieldRef& r = ref_at(i);
  uint64_t h = kOffset;
  switch (r.type) {
    case FieldType::kI32:
    case FieldType::kI64: h = mix(h, &r.i, sizeof r.i); break;
    case FieldType::kF32: h = mix(h, &r.f32, sizeof r.f32); break;
    case FieldType::kF64: h = mix(h, &r.f64, sizeof r.f64); break;
    case FieldType::kBool: {
      uint8_t x = r.i != 0 ? 1 : 0;
      h = mix(h, &x, 1);
      break;
    }
    case FieldType::kString:
    case FieldType::kBytes: h = mix(h, r.data, r.size); break;
  }
  return h;
}

void PacketView::materialize(StreamPacket& out) const {
  out.clear();
  out.set_event_time_ns(event_time_ns_);
  for (const FieldRef& r : fields_) {
    switch (r.type) {
      case FieldType::kI32: out.add_i32(static_cast<int32_t>(r.i)); break;
      case FieldType::kI64: out.add_i64(r.i); break;
      case FieldType::kF32: out.add_f32(r.f32); break;
      case FieldType::kF64: out.add_f64(r.f64); break;
      case FieldType::kBool: out.add_bool(r.i != 0); break;
      case FieldType::kString:
        out.add_string(std::string(reinterpret_cast<const char*>(r.data), r.size));
        break;
      case FieldType::kBytes: out.add_bytes(std::vector<uint8_t>(r.data, r.data + r.size)); break;
    }
  }
}

uint64_t StreamPacket::field_hash(size_t i) const {
  // FNV-1a over the value's canonical bytes.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t j = 0; j < n; ++j) {
      h ^= b[j];
      h *= kPrime;
    }
    return h;
  };
  const Value& v = field(i);
  uint64_t h = kOffset;
  switch (value_type(v)) {
    case FieldType::kI32: {
      // Hash integers through their i64 widening so that the same logical
      // key in an i32 or i64 field lands on the same partition.
      int64_t x = std::get<int32_t>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kI64: {
      int64_t x = std::get<int64_t>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kF32: {
      float x = std::get<float>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kF64: {
      double x = std::get<double>(v);
      h = mix(h, &x, sizeof x);
      break;
    }
    case FieldType::kBool: {
      uint8_t x = std::get<bool>(v) ? 1 : 0;
      h = mix(h, &x, 1);
      break;
    }
    case FieldType::kString: {
      const auto& s = std::get<std::string>(v);
      h = mix(h, s.data(), s.size());
      break;
    }
    case FieldType::kBytes: {
      const auto& b = std::get<std::vector<uint8_t>>(v);
      h = mix(h, b.data(), b.size());
      break;
    }
  }
  return h;
}

}  // namespace neptune
