#include "neptune/json_topology.hpp"

#include <stdexcept>

namespace neptune {

OperatorRegistry& OperatorRegistry::register_source(const std::string& type,
                                                    SourceFactory factory) {
  sources_[type] = std::move(factory);
  return *this;
}

OperatorRegistry& OperatorRegistry::register_processor(const std::string& type,
                                                       ProcessorFactory factory) {
  processors_[type] = std::move(factory);
  return *this;
}

const SourceFactory* OperatorRegistry::find_source(const std::string& type) const {
  auto it = sources_.find(type);
  return it == sources_.end() ? nullptr : &it->second;
}

const ProcessorFactory* OperatorRegistry::find_processor(const std::string& type) const {
  auto it = processors_.find(type);
  return it == processors_.end() ? nullptr : &it->second;
}

namespace {

/// Checked numeric field. JSON numbers arrive as doubles; narrowing them
/// unchecked makes "parallelism": -3 or 1e300 undefined behaviour instead
/// of a diagnosable error (found by fuzz/json_topology_fuzz under UBSan).
int64_t int_field(const JsonValue& v, const char* key, int64_t fallback, int64_t lo, int64_t hi) {
  double d = v.number_or(key, static_cast<double>(fallback));
  if (!(d >= static_cast<double>(lo)) || d > static_cast<double>(hi))
    throw GraphError(std::string(key) + " out of range [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "]");
  return static_cast<int64_t>(d);
}

/// Millisecond field converted to ns, range-checked the same way.
int64_t ms_to_ns_field(const JsonValue& v, const char* key, int64_t fallback_ns) {
  double ms = v.number_or(key, static_cast<double>(fallback_ns) / 1e6);
  if (!(ms >= 0) || ms > 1e9) throw GraphError(std::string(key) + " out of range");
  return static_cast<int64_t>(ms * 1e6);
}

constexpr int64_t kMaxBytes = int64_t{1} << 40;  // 1 TB sanity cap

/// Runtime flush timers tick at half the flush interval, clamped to 500 us
/// (runtime.cpp step 5) — an interval below one tick silently degrades to
/// tick-rate flushing, so reject it as a configuration error instead.
constexpr int64_t kMinFlushIntervalNs = 500'000;

/// Byte-capacity field that must be strictly positive: "buffer_bytes": 0
/// would mean "flush every packet into a zero-byte batch" and negative
/// values are nonsense — both are misconfigurations worth naming.
size_t positive_bytes_field(const JsonValue& v, const char* key, size_t fallback) {
  int64_t n = int_field(v, key, static_cast<int64_t>(fallback), INT64_MIN, kMaxBytes);
  if (n <= 0)
    throw GraphError(std::string(key) + " must be positive, got " + std::to_string(n));
  return static_cast<size_t>(n);
}

/// Flush interval with the tick-resolution floor. 0 stays legal (timer
/// flushing disabled); (0, tick) is the silent-degradation trap.
int64_t flush_interval_field(const JsonValue& v, const char* key, int64_t fallback_ns) {
  int64_t ns = ms_to_ns_field(v, key, fallback_ns);
  if (ns != 0 && ns < kMinFlushIntervalNs)
    throw GraphError(std::string(key) + " is " + std::to_string(ns) +
                     " ns, below the " + std::to_string(kMinFlushIntervalNs) +
                     " ns timer resolution (use 0 to disable timer flushing)");
  return ns;
}

QosClass qos_from_json(const JsonValue& link) {
  std::string qos = link.string_or("qos", "critical");
  if (qos == "critical") return QosClass::kCritical;
  if (qos == "best_effort") return QosClass::kBestEffort;
  throw GraphError("unknown qos class '" + qos + "' (expected 'critical' or 'best_effort')");
}

ShedConfig shed_from_json(const JsonValue& link) {
  ShedConfig shed;
  std::string policy = link.string_or("shed_policy", "none");
  for (char& c : policy)
    if (c == '-') c = '_';  // accept drop-oldest and drop_oldest alike
  if (policy == "none") {
    shed.policy = ShedPolicy::kNone;
  } else if (policy == "drop_newest") {
    shed.policy = ShedPolicy::kDropNewest;
  } else if (policy == "drop_oldest") {
    shed.policy = ShedPolicy::kDropOldest;
  } else if (policy == "probabilistic") {
    shed.policy = ShedPolicy::kProbabilistic;
  } else {
    throw GraphError("unknown shed_policy '" + policy +
                     "' (expected 'none', 'drop_newest', 'drop_oldest' or 'probabilistic')");
  }
  if (link.contains("shed_max_buffered_bytes"))
    shed.max_buffered_bytes = positive_bytes_field(link, "shed_max_buffered_bytes", 1);
  shed.max_queue_wait_ns = ms_to_ns_field(link, "shed_max_queue_wait_ms", shed.max_queue_wait_ns);
  shed.drop_probability = link.number_or("shed_drop_probability", shed.drop_probability);
  if (!(shed.drop_probability >= 0.0) || shed.drop_probability > 1.0)
    throw GraphError("shed_drop_probability must be in [0, 1], got " +
                     std::to_string(shed.drop_probability));
  shed.seed = static_cast<uint64_t>(
      int_field(link, "shed_seed", static_cast<int64_t>(shed.seed), 0, INT64_MAX));
  return shed;
}

CompressionPolicy compression_from_json(const JsonValue& link) {
  CompressionPolicy p;
  std::string mode = link.string_or("compression", "off");
  if (mode == "off") {
    p.mode = CompressionMode::kOff;
  } else if (mode == "always") {
    p.mode = CompressionMode::kAlways;
  } else if (mode == "selective") {
    p.mode = CompressionMode::kSelective;
  } else {
    throw GraphError("unknown compression mode: " + mode);
  }
  p.entropy_threshold = link.number_or("entropy_threshold", p.entropy_threshold);
  p.min_payload_bytes = static_cast<size_t>(
      int_field(link, "min_payload_bytes", static_cast<int64_t>(p.min_payload_bytes), 0,
                kMaxBytes));
  return p;
}

}  // namespace

StreamGraph graph_from_json(const JsonValue& doc, const OperatorRegistry& registry) {
  GraphConfig cfg;
  if (doc.contains("config")) {
    const JsonValue& c = doc.at("config");
    cfg.buffer.capacity_bytes =
        positive_bytes_field(c, "buffer_bytes", cfg.buffer.capacity_bytes);
    cfg.buffer.flush_interval_ns =
        flush_interval_field(c, "flush_interval_ms", cfg.buffer.flush_interval_ns);
    cfg.channel.capacity_bytes =
        positive_bytes_field(c, "channel_bytes", cfg.channel.capacity_bytes);
    cfg.channel.low_watermark_bytes = static_cast<size_t>(
        int_field(c, "channel_low_watermark",
                  static_cast<int64_t>(cfg.channel.capacity_bytes) / 4, 0, kMaxBytes));
    cfg.source_batch_budget = static_cast<size_t>(int_field(
        c, "source_batch", static_cast<int64_t>(cfg.source_batch_budget), 1, 1'000'000));
    cfg.max_batches_per_execution = static_cast<size_t>(
        int_field(c, "max_batches_per_execution",
                  static_cast<int64_t>(cfg.max_batches_per_execution), 1, 1'000'000));
  }

  StreamGraph graph(doc.string_or("name", "anonymous"), cfg);

  for (const JsonValue& op : doc.at("operators").as_array()) {
    std::string id = op.at("id").as_string();
    std::string type = op.at("type").as_string();
    std::string kind = op.string_or("kind", "processor");
    uint32_t parallelism = static_cast<uint32_t>(int_field(op, "parallelism", 1, 1, 65536));
    int resource = static_cast<int>(int_field(op, "resource", -1, -1, 1'000'000));
    if (kind == "source") {
      const SourceFactory* f = registry.find_source(type);
      if (!f) throw GraphError("unregistered source type: " + type);
      graph.add_source(id, *f, parallelism, resource);
    } else if (kind == "processor") {
      const ProcessorFactory* f = registry.find_processor(type);
      if (!f) throw GraphError("unregistered processor type: " + type);
      graph.add_processor(id, *f, parallelism, resource);
    } else {
      throw GraphError("unknown operator kind: " + kind);
    }
  }

  if (doc.contains("links")) {
    for (const JsonValue& link : doc.at("links").as_array()) {
      std::string scheme = link.string_or("partitioning", "shuffle");
      int field = static_cast<int>(int_field(link, "field", 0, 0, 1'000'000));
      std::optional<StreamBufferConfig> buf_override;
      if (link.contains("buffer_bytes") || link.contains("flush_interval_ms")) {
        StreamBufferConfig b = graph.config().buffer;
        b.capacity_bytes = positive_bytes_field(link, "buffer_bytes", b.capacity_bytes);
        b.flush_interval_ns = flush_interval_field(link, "flush_interval_ms", b.flush_interval_ns);
        buf_override = b;
      }
      std::shared_ptr<PartitioningScheme> part;
      try {
        part = make_partitioning(scheme, field);
      } catch (const std::invalid_argument& e) {
        // make_partitioning is API-facing and throws invalid_argument; from a
        // descriptor an unknown scheme is a graph error like any other
        // (fuzz/json_topology_fuzz: the exception escaped the documented set).
        throw GraphError(e.what());
      }
      graph.connect(link.at("from").as_string(), link.at("to").as_string(), std::move(part),
                    compression_from_json(link), buf_override, qos_from_json(link),
                    shed_from_json(link));
    }
  }

  graph.validate();
  return graph;
}

StreamGraph graph_from_json(std::string_view text, const OperatorRegistry& registry) {
  return graph_from_json(JsonValue::parse(text), registry);
}

}  // namespace neptune
