#include "neptune/json_topology.hpp"

namespace neptune {

OperatorRegistry& OperatorRegistry::register_source(const std::string& type,
                                                    SourceFactory factory) {
  sources_[type] = std::move(factory);
  return *this;
}

OperatorRegistry& OperatorRegistry::register_processor(const std::string& type,
                                                       ProcessorFactory factory) {
  processors_[type] = std::move(factory);
  return *this;
}

const SourceFactory* OperatorRegistry::find_source(const std::string& type) const {
  auto it = sources_.find(type);
  return it == sources_.end() ? nullptr : &it->second;
}

const ProcessorFactory* OperatorRegistry::find_processor(const std::string& type) const {
  auto it = processors_.find(type);
  return it == processors_.end() ? nullptr : &it->second;
}

namespace {

CompressionPolicy compression_from_json(const JsonValue& link) {
  CompressionPolicy p;
  std::string mode = link.string_or("compression", "off");
  if (mode == "off") {
    p.mode = CompressionMode::kOff;
  } else if (mode == "always") {
    p.mode = CompressionMode::kAlways;
  } else if (mode == "selective") {
    p.mode = CompressionMode::kSelective;
  } else {
    throw GraphError("unknown compression mode: " + mode);
  }
  p.entropy_threshold = link.number_or("entropy_threshold", p.entropy_threshold);
  p.min_payload_bytes = static_cast<size_t>(link.number_or(
      "min_payload_bytes", static_cast<double>(p.min_payload_bytes)));
  return p;
}

}  // namespace

StreamGraph graph_from_json(const JsonValue& doc, const OperatorRegistry& registry) {
  GraphConfig cfg;
  if (doc.contains("config")) {
    const JsonValue& c = doc.at("config");
    cfg.buffer.capacity_bytes = static_cast<size_t>(
        c.number_or("buffer_bytes", static_cast<double>(cfg.buffer.capacity_bytes)));
    cfg.buffer.flush_interval_ns = static_cast<int64_t>(
        c.number_or("flush_interval_ms",
                    static_cast<double>(cfg.buffer.flush_interval_ns) / 1e6) *
        1e6);
    cfg.channel.capacity_bytes = static_cast<size_t>(
        c.number_or("channel_bytes", static_cast<double>(cfg.channel.capacity_bytes)));
    cfg.channel.low_watermark_bytes = static_cast<size_t>(c.number_or(
        "channel_low_watermark", static_cast<double>(cfg.channel.capacity_bytes) / 4));
    cfg.source_batch_budget = static_cast<size_t>(
        c.number_or("source_batch", static_cast<double>(cfg.source_batch_budget)));
    cfg.max_batches_per_execution = static_cast<size_t>(c.number_or(
        "max_batches_per_execution", static_cast<double>(cfg.max_batches_per_execution)));
  }

  StreamGraph graph(doc.string_or("name", "anonymous"), cfg);

  for (const JsonValue& op : doc.at("operators").as_array()) {
    std::string id = op.at("id").as_string();
    std::string type = op.at("type").as_string();
    std::string kind = op.string_or("kind", "processor");
    uint32_t parallelism = static_cast<uint32_t>(op.number_or("parallelism", 1));
    int resource = static_cast<int>(op.number_or("resource", -1));
    if (kind == "source") {
      const SourceFactory* f = registry.find_source(type);
      if (!f) throw GraphError("unregistered source type: " + type);
      graph.add_source(id, *f, parallelism, resource);
    } else if (kind == "processor") {
      const ProcessorFactory* f = registry.find_processor(type);
      if (!f) throw GraphError("unregistered processor type: " + type);
      graph.add_processor(id, *f, parallelism, resource);
    } else {
      throw GraphError("unknown operator kind: " + kind);
    }
  }

  if (doc.contains("links")) {
    for (const JsonValue& link : doc.at("links").as_array()) {
      std::string scheme = link.string_or("partitioning", "shuffle");
      int field = static_cast<int>(link.number_or("field", 0));
      std::optional<StreamBufferConfig> buf_override;
      if (link.contains("buffer_bytes") || link.contains("flush_interval_ms")) {
        StreamBufferConfig b = graph.config().buffer;
        b.capacity_bytes = static_cast<size_t>(
            link.number_or("buffer_bytes", static_cast<double>(b.capacity_bytes)));
        b.flush_interval_ns = static_cast<int64_t>(
            link.number_or("flush_interval_ms", static_cast<double>(b.flush_interval_ns) / 1e6) *
            1e6);
        buf_override = b;
      }
      graph.connect(link.at("from").as_string(), link.at("to").as_string(),
                    make_partitioning(scheme, field), compression_from_json(link), buf_override);
    }
  }

  graph.validate();
  return graph;
}

StreamGraph graph_from_json(std::string_view text, const OperatorRegistry& registry) {
  return graph_from_json(JsonValue::parse(text), registry);
}

}  // namespace neptune
