// Stream processing graph description (paper §III-A7): stream sources and
// processors for each stage, parallelism levels, links connecting stream
// operators, and a partitioning scheme per link. Built by direct API calls
// here, or from a JSON descriptor (json_topology.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/selective.hpp"
#include "neptune/operators.hpp"
#include "neptune/partitioning.hpp"
#include "neptune/stream_buffer.hpp"

namespace neptune {

class GraphError : public std::runtime_error {
 public:
  explicit GraphError(const std::string& what) : std::runtime_error(what) {}
};

/// Job-wide defaults; individual links can override buffering and
/// compression ("should be enabled and configured for each stream
/// individually", §III-B5).
struct GraphConfig {
  StreamBufferConfig buffer;
  /// In-flight byte budget per edge channel and its writable watermark.
  ChannelConfig channel;
  /// Packets a source is asked for per scheduled execution.
  size_t source_batch_budget = 512;
  /// Frames a processor consumes per scheduled execution before yielding.
  size_t max_batches_per_execution = 8;
};

enum class OperatorKind { kSource, kProcessor };

struct OperatorDecl {
  std::string id;
  OperatorKind kind;
  SourceFactory source_factory;        // kind == kSource
  ProcessorFactory processor_factory;  // kind == kProcessor
  uint32_t parallelism = 1;
  /// Resource placement hint; -1 lets the runtime round-robin instances.
  int resource = -1;
};

struct LinkDecl {
  uint32_t link_id = 0;  ///< globally unique within the graph
  size_t from_op = 0;    ///< index into operators()
  size_t to_op = 0;
  size_t output_index = 0;  ///< position among from_op's output links
  std::shared_ptr<PartitioningScheme> partitioning;
  CompressionPolicy compression;
  std::optional<StreamBufferConfig> buffer_override;
  /// Delivery priority; best-effort links may declare a shed policy.
  QosClass qos = QosClass::kCritical;
  ShedConfig shed;
};

class StreamGraph {
 public:
  explicit StreamGraph(std::string name, GraphConfig config = {});

  StreamGraph& add_source(const std::string& id, SourceFactory factory, uint32_t parallelism = 1,
                          int resource = -1);
  StreamGraph& add_processor(const std::string& id, ProcessorFactory factory,
                             uint32_t parallelism = 1, int resource = -1);

  /// Connect `from` -> `to`. Returns the output-link index on `from` (for
  /// Emitter::emit(link, ...)). Default partitioning is shuffle. A non-none
  /// shed policy requires `qos == kBestEffort` (throws GraphError: the
  /// lossless contract of critical links is load-bearing for exactly-once).
  size_t connect(const std::string& from, const std::string& to,
                 std::shared_ptr<PartitioningScheme> partitioning = nullptr,
                 CompressionPolicy compression = {},
                 std::optional<StreamBufferConfig> buffer_override = std::nullopt,
                 QosClass qos = QosClass::kCritical, ShedConfig shed = {});

  /// Structural checks: ids resolve, sources have no inputs, every operator
  /// is connected, and the graph is acyclic. Throws GraphError.
  void validate() const;

  const std::string& name() const { return name_; }
  const GraphConfig& config() const { return config_; }
  GraphConfig& config() { return config_; }
  const std::vector<OperatorDecl>& operators() const { return operators_; }
  const std::vector<LinkDecl>& links() const { return links_; }

  size_t operator_index(const std::string& id) const;
  /// Output links of an operator, ordered by output_index.
  std::vector<const LinkDecl*> outputs_of(size_t op) const;
  std::vector<const LinkDecl*> inputs_of(size_t op) const;

  /// Graphviz DOT rendering of the graph (operators as nodes annotated
  /// with kind/parallelism; links labelled with partitioning/compression).
  std::string to_dot() const;

 private:
  std::string name_;
  GraphConfig config_;
  std::vector<OperatorDecl> operators_;
  std::vector<LinkDecl> links_;
};

}  // namespace neptune
