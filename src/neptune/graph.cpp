#include "neptune/graph.hpp"

#include <algorithm>

namespace neptune {

StreamGraph::StreamGraph(std::string name, GraphConfig config)
    : name_(std::move(name)), config_(config) {}

StreamGraph& StreamGraph::add_source(const std::string& id, SourceFactory factory,
                                     uint32_t parallelism, int resource) {
  for (const auto& op : operators_) {
    if (op.id == id) throw GraphError("duplicate operator id: " + id);
  }
  if (parallelism == 0) throw GraphError("parallelism must be >= 1 for " + id);
  OperatorDecl d;
  d.id = id;
  d.kind = OperatorKind::kSource;
  d.source_factory = std::move(factory);
  d.parallelism = parallelism;
  d.resource = resource;
  operators_.push_back(std::move(d));
  return *this;
}

StreamGraph& StreamGraph::add_processor(const std::string& id, ProcessorFactory factory,
                                        uint32_t parallelism, int resource) {
  for (const auto& op : operators_) {
    if (op.id == id) throw GraphError("duplicate operator id: " + id);
  }
  if (parallelism == 0) throw GraphError("parallelism must be >= 1 for " + id);
  OperatorDecl d;
  d.id = id;
  d.kind = OperatorKind::kProcessor;
  d.processor_factory = std::move(factory);
  d.parallelism = parallelism;
  d.resource = resource;
  operators_.push_back(std::move(d));
  return *this;
}

size_t StreamGraph::operator_index(const std::string& id) const {
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (operators_[i].id == id) return i;
  }
  throw GraphError("unknown operator id: " + id);
}

size_t StreamGraph::connect(const std::string& from, const std::string& to,
                            std::shared_ptr<PartitioningScheme> partitioning,
                            CompressionPolicy compression,
                            std::optional<StreamBufferConfig> buffer_override, QosClass qos,
                            ShedConfig shed) {
  LinkDecl link;
  link.link_id = static_cast<uint32_t>(links_.size());
  link.from_op = operator_index(from);
  link.to_op = operator_index(to);
  if (operators_[link.to_op].kind == OperatorKind::kSource)
    throw GraphError("cannot link into a source: " + to);
  if (qos == QosClass::kCritical && shed.policy != ShedPolicy::kNone)
    throw GraphError("link " + from + " -> " + to +
                     ": shed policy '" + shed_policy_name(shed.policy) +
                     "' requires qos 'best_effort' (critical links are lossless)");
  link.output_index = outputs_of(link.from_op).size();
  link.partitioning = partitioning ? std::move(partitioning)
                                   : std::make_shared<ShufflePartitioning>();
  link.compression = compression;
  link.buffer_override = buffer_override;
  link.qos = qos;
  link.shed = shed;
  links_.push_back(std::move(link));
  return links_.back().output_index;
}

std::vector<const LinkDecl*> StreamGraph::outputs_of(size_t op) const {
  std::vector<const LinkDecl*> out;
  for (const auto& l : links_) {
    if (l.from_op == op) out.push_back(&l);
  }
  std::sort(out.begin(), out.end(),
            [](const LinkDecl* a, const LinkDecl* b) { return a->output_index < b->output_index; });
  return out;
}

std::vector<const LinkDecl*> StreamGraph::inputs_of(size_t op) const {
  std::vector<const LinkDecl*> in;
  for (const auto& l : links_) {
    if (l.to_op == op) in.push_back(&l);
  }
  return in;
}

std::string StreamGraph::to_dot() const {
  std::string out = "digraph \"" + name_ + "\" {\n  rankdir=LR;\n";
  for (const auto& op : operators_) {
    out += "  \"" + op.id + "\" [shape=" +
           (op.kind == OperatorKind::kSource ? std::string("invhouse") : std::string("box")) +
           ", label=\"" + op.id + "\\nx" + std::to_string(op.parallelism) + "\"];\n";
  }
  for (const auto& l : links_) {
    out += "  \"" + operators_[l.from_op].id + "\" -> \"" + operators_[l.to_op].id +
           "\" [label=\"" + l.partitioning->name();
    if (l.compression.mode != CompressionMode::kOff) out += "+lz4";
    if (l.qos == QosClass::kBestEffort)
      out += std::string("\\nbest_effort/") + shed_policy_name(l.shed.policy);
    out += "\"";
    if (l.qos == QosClass::kBestEffort) out += ", style=dashed";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

void StreamGraph::validate() const {
  if (operators_.empty()) throw GraphError("graph has no operators");
  bool has_source = false;
  for (size_t i = 0; i < operators_.size(); ++i) {
    const auto& op = operators_[i];
    if (op.kind == OperatorKind::kSource) {
      has_source = true;
      if (!op.source_factory) throw GraphError("source " + op.id + " has no factory");
      if (!inputs_of(i).empty()) throw GraphError("source " + op.id + " has inputs");
      if (outputs_of(i).empty()) throw GraphError("source " + op.id + " has no outputs");
    } else {
      if (!op.processor_factory) throw GraphError("processor " + op.id + " has no factory");
      if (inputs_of(i).empty()) throw GraphError("processor " + op.id + " has no inputs");
    }
  }
  if (!has_source) throw GraphError("graph has no stream source");

  // Cycle check (DFS three-color).
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(operators_.size(), Color::kWhite);
  auto dfs = [&](auto&& self, size_t v) -> void {
    color[v] = Color::kGray;
    for (const auto* l : outputs_of(v)) {
      if (color[l->to_op] == Color::kGray)
        throw GraphError("graph has a cycle through " + operators_[l->to_op].id);
      if (color[l->to_op] == Color::kWhite) self(self, l->to_op);
    }
    color[v] = Color::kBlack;
  };
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (color[i] == Color::kWhite) dfs(dfs, i);
  }
}

}  // namespace neptune
