// NEPTUNE runtime: deploys a StreamGraph onto Granules resources, wires the
// edges with channels, and drives operators through Granules' data-driven
// scheduling. Each parallel operator instance becomes one computational
// task; each (link, src-instance, dst-instance) edge gets an
// application-level StreamBuffer on the sending side and a flow-controlled
// channel between the resources.
//
// The runtime upholds NEPTUNE's correctness contract (paper §I-B): packets
// are processed in order, exactly once, and are never dropped — enforced
// with per-edge sequence numbers and verified by the metrics'
// seq_violations counter (always expected to be zero).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/dead_letter.hpp"
#include "fault/supervised_channel.hpp"
#include "granules/resource.hpp"
#include "neptune/graph.hpp"
#include "neptune/metrics.hpp"
#include "neptune/state.hpp"
#include "obs/telemetry.hpp"

namespace neptune {

namespace obs {
class MetricsHttpServer;
}

namespace detail {
class InstanceRuntime;
}

/// A running (or finished) stream processing job.
class Job {
 public:
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Kick off the sources. submit() already deployed all tasks.
  void start();

  /// Wait until every operator instance has terminated (sources exhausted
  /// and all in-flight data fully processed). Returns false on timeout.
  bool wait(std::chrono::nanoseconds timeout = std::chrono::hours(1));

  /// Cooperative cancel: sources stop emitting, remaining in-flight data is
  /// discarded, operators terminate. Safe to call at any time.
  void stop();

  // --- checkpoint / restore (prototype of the paper's §VI future work) ----

  /// Suspend source emission. In-flight data keeps draining downstream.
  void pause();
  /// Resume source emission after pause().
  void resume();

  /// Wait (while paused) until the pipeline is drained: no metric movement
  /// across consecutive samples. Returns false on timeout.
  bool quiesce(std::chrono::nanoseconds timeout = std::chrono::seconds(30));

  /// Capture the state of every Checkpointable operator instance plus
  /// source replay positions. Requires pause() + quiesce() first — the
  /// caller owns that protocol; concurrent execution would race user state.
  JobSnapshot checkpoint_state() const;

  /// Restore a snapshot into this (not-yet-started) job's operators.
  /// Entries with no matching (operator id, instance) are ignored.
  void restore_state(const JobSnapshot& snapshot);

  bool completed() const;

  // --- failure reporting (fault-tolerance subsystem) ----------------------

  /// Invoked (from a supervisor or worker thread) on the first permanent
  /// failure — e.g. a supervised edge exhausting its reconnect budget or a
  /// corrupt frame on an unsupervised edge. Set it before start().
  void set_failure_handler(std::function<void(const std::string&)> handler);
  /// True once any permanent failure has been reported.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Description of the first reported failure (empty if none).
  std::string failure_reason() const;
  /// Record a permanent failure and fire the handler (first call only).
  void report_failure(const std::string& what);

  // --- overload resilience -----------------------------------------------

  /// The job's dead-letter queue, or nullptr when quarantine is disabled
  /// (RuntimeOptions::quarantine). Drain it to inspect/replay poison data.
  const std::shared_ptr<fault::DeadLetterQueue>& dead_letters() const { return dead_letters_; }

  /// Watchdog hook: count a stall detection against the named instance's
  /// metrics (no-op for unknown ids).
  void note_watchdog_stall(const std::string& op_id, uint32_t instance);

  JobMetricsSnapshot metrics() const;
  const std::string& name() const { return name_; }

 private:
  friend class Runtime;
  friend class detail::InstanceRuntime;
  Job() = default;

  void on_instance_done();

  std::string name_;
  // Failure state is declared before instances_ so it outlives the edge
  // teardown in ~Job (supervisor threads may report until they are joined).
  mutable std::mutex failure_mu_;
  std::function<void(const std::string&)> failure_handler_;
  std::string failure_reason_;
  std::atomic<bool> failed_{false};
  std::shared_ptr<fault::DeadLetterQueue> dead_letters_;  // null = quarantine off
  std::vector<std::shared_ptr<detail::InstanceRuntime>> instances_;
  // Telemetry registrations for this job's operators and edges. Samplers
  // capture shared_ptrs, so ordering vs instances_ is not load-bearing;
  // the handles just scope the series to the job's lifetime.
  std::vector<obs::TelemetryRegistry::Handle> telemetry_;
  std::vector<EventLoop::TimerId> timers_;  // (loop, id) pairs below
  std::vector<EventLoop*> timer_loops_;
  std::vector<granules::Resource*> resources_;

  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t done_count_ = 0;
  int64_t start_ns_ = 0;
  mutable std::atomic<int64_t> end_ns_{0};
};

/// How edges between operator instances on *different* resources are
/// carried. Same-resource edges always use in-process channels.
enum class EdgeTransport {
  kInproc,  ///< bounded in-process channels (default; deterministic, fast)
  kTcp,     ///< real loopback TCP via the epoll transport — exercises the
            ///< paper's TCP-flow-control backpressure end to end
};

/// Observability endpoint knobs (see docs/OBSERVABILITY.md).
struct ObsOptions {
  /// >= 0: serve Prometheus /metrics (plus /telemetry.json and /spans.json)
  /// on 127.0.0.1:<port> (0 picks a free port; read it back via
  /// Runtime::metrics_server()->port()). -1: only enabled when the
  /// NEPTUNE_METRICS_PORT env var is set.
  int metrics_port = -1;
  /// Ring/interval for the background sampler feeding /telemetry.json.
  /// The sampler runs whenever the HTTP endpoint is enabled.
  obs::SamplerOptions sampler;
  /// Non-empty: install the process-global IncidentReporter writing JSONL
  /// bundles (and raw crash dumps) into this directory. Empty: only enabled
  /// when the NEPTUNE_INCIDENT_DIR env var is set. Idempotent — the first
  /// Runtime to configure it wins; later Runtimes leave it alone.
  std::string incident_dir;
  /// Rotation bound for the incident directory.
  size_t incident_max_bundles = 16;
};

/// Poison-pill quarantine (overload-resilience subsystem). When enabled,
/// an operator dispatch that throws — or a malformed batch past the CRC
/// layer — captures the offending packet(s) to the job's DeadLetterQueue
/// and the pipeline keeps running. Disabled (the default), such faults are
/// permanent failures exactly as before.
struct QuarantinePolicy {
  bool enabled = false;
  /// > 0: a dispatch slower than this is counted in deadline_overruns.
  /// (Detection only — interrupting user code mid-dispatch is not safe;
  /// pair with the watchdog to escalate dispatches that never return.)
  int64_t packet_deadline_ns = 0;
  fault::DeadLetterConfig dead_letter;
};

struct RuntimeOptions {
  EdgeTransport cross_resource_transport = EdgeTransport::kInproc;

  // --- observability --------------------------------------------------------
  ObsOptions obs;

  // --- fault tolerance ------------------------------------------------------
  /// When true (default), TCP edges are carried by the supervised channel:
  /// per-edge heartbeats, dead-peer detection, reconnect with exponential
  /// backoff, and exactly-once retransmission of unacked frames. When
  /// false, TCP edges use the raw transport (a reset kills the edge).
  bool supervise_tcp = true;
  /// Heartbeat / timeout / backoff knobs for supervised edges.
  fault::SupervisorConfig supervisor;
  /// Optional fault-injection schedule applied to every edge (inproc and
  /// TCP). Shared so tests/benches can inspect injector stats afterwards.
  std::shared_ptr<fault::FaultInjector> fault_injector;

  // --- overload resilience --------------------------------------------------
  /// Poison-pill quarantine into a per-job dead-letter queue.
  QuarantinePolicy quarantine;
};

/// Which slice of a multi-process deployment this Runtime owns, and how to
/// reach the peers (Runtime::submit_slice). One OS process per resource:
/// every operator pinned to `local_resource` is instantiated here; edges
/// whose endpoints straddle processes ride supervised TCP channels on
/// pre-agreed loopback ports, so peers need no port handshake — the
/// supervisor allocates ports once and every worker derives the same
/// edge→port mapping (proc::plan_slices).
struct SliceOptions {
  size_t local_resource = 0;
  size_t total_resources = 1;
  /// Port per cross-process edge, keyed by (link_id, src_instance,
  /// dst_instance). The receiving process binds the port; the sending
  /// process connects to it on 127.0.0.1. A cross-process edge with no
  /// entry is a GraphError (fail fast, before any task runs).
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint16_t> edge_ports;
};

/// Owns a set of Granules resources (the "cluster" within this process) and
/// submits jobs onto them.
class Runtime {
 public:
  /// `resources` resources are created, each with its own worker/IO pools.
  explicit Runtime(size_t resources = 1, granules::ResourceConfig base_config = {},
                   RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Validate, deploy and return the job (not yet started).
  std::shared_ptr<Job> submit(const StreamGraph& graph);

  /// Deploy one resource's slice of `graph` into this Runtime (which must
  /// own exactly one resource — the local one). Every operator needs an
  /// explicit `resource` pin in [0, slice.total_resources); operators pinned
  /// elsewhere are not instantiated, and the edges to/from them become
  /// supervised TCP endpoints on the ports in `slice.edge_ports`. The
  /// returned Job completes when all *local* instances drain — end-of-stream
  /// propagates across processes via the supervised channels' EOF frames.
  std::shared_ptr<Job> submit_slice(const StreamGraph& graph, const SliceOptions& slice);

  granules::Resource* resource(size_t i) { return resources_.at(i).get(); }
  size_t resource_count() const { return resources_.size(); }
  const RuntimeOptions& options() const { return options_; }

  /// The HTTP metrics endpoint, or nullptr when disabled (see ObsOptions).
  obs::MetricsHttpServer* metrics_server() { return metrics_server_.get(); }
  /// Background telemetry sampler backing /telemetry.json (nullptr when the
  /// endpoint is disabled).
  obs::TelemetrySampler* telemetry_sampler() { return sampler_.get(); }

  void shutdown();

 private:
  struct EdgeChannel {
    std::shared_ptr<ChannelSender> sender;
    std::shared_ptr<ChannelReceiver> receiver;
  };
  /// Create the channel for one edge; TCP when the endpoints live on
  /// different resources and the runtime is configured for it. `edge`
  /// identifies the edge to the fault injector; the metrics pointers
  /// receive robustness counters; `job` receives permanent-failure reports.
  EdgeChannel make_edge_channel(granules::Resource* src, granules::Resource* dst,
                                const ChannelConfig& config, const fault::EdgeId& edge,
                                OperatorMetrics* src_metrics, OperatorMetrics* dst_metrics,
                                const std::shared_ptr<Job>& job);

  // Shared tail of submit()/submit_slice(): per-instance telemetry series
  // and periodic flush timers (statics — they only touch the Job).
  static void note_topology_for_incidents(const StreamGraph& graph);
  static void register_job_telemetry(const std::shared_ptr<Job>& job);
  static void install_flush_timers(const std::shared_ptr<Job>& job, const GraphConfig& cfg);

  RuntimeOptions options_;
  std::vector<std::unique_ptr<granules::Resource>> resources_;
  std::vector<std::shared_ptr<Job>> jobs_;
  std::mutex jobs_mu_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  std::unique_ptr<obs::MetricsHttpServer> metrics_server_;
};

}  // namespace neptune
