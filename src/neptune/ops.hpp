// Composable building-block operators, so common stages don't need a
// hand-written StreamProcessor subclass: map, filter, flat-map, sample and
// rate-limit. All are thin adapters over user lambdas; the framework's
// batching/backpressure/ordering guarantees apply unchanged.
#pragma once

#include <functional>
#include <optional>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "neptune/operators.hpp"

namespace neptune::ops {

/// 1:1 transform. The function receives the input packet (mutable — it may
/// be transformed in place and returned by move) and returns the packet to
/// emit.
class MapProcessor final : public StreamProcessor {
 public:
  using Fn = std::function<StreamPacket(StreamPacket&)>;
  explicit MapProcessor(Fn fn) : fn_(std::move(fn)) {}

  void process(StreamPacket& packet, Emitter& out) override {
    StreamPacket mapped = fn_(packet);
    if (mapped.event_time_ns() == 0) mapped.set_event_time_ns(packet.event_time_ns());
    out.emit(std::move(mapped));
  }

 private:
  Fn fn_;
};

/// Emits only packets for which the predicate holds.
class FilterProcessor final : public StreamProcessor {
 public:
  using Fn = std::function<bool(const StreamPacket&)>;
  explicit FilterProcessor(Fn predicate) : predicate_(std::move(predicate)) {}

  void process(StreamPacket& packet, Emitter& out) override {
    if (!predicate_(packet)) return;
    StreamPacket copy = packet;
    out.emit(std::move(copy));
  }

  uint64_t passed() const { return passed_; }

 private:
  Fn predicate_;
  uint64_t passed_ = 0;
};

/// 1:N transform: the function pushes zero or more packets into `emit`.
class FlatMapProcessor final : public StreamProcessor {
 public:
  using EmitFn = std::function<void(StreamPacket&&)>;
  using Fn = std::function<void(StreamPacket&, const EmitFn&)>;
  explicit FlatMapProcessor(Fn fn) : fn_(std::move(fn)) {}

  void process(StreamPacket& packet, Emitter& out) override {
    fn_(packet, [&](StreamPacket&& p) {
      if (p.event_time_ns() == 0) p.set_event_time_ns(packet.event_time_ns());
      out.emit(std::move(p));
    });
  }

 private:
  Fn fn_;
};

/// Uniform random sampling: forwards each packet with probability `rate`.
/// (The paper argues backpressure "obviates the need to resort to
/// sampling"; the operator exists for pipelines that want it anyway.)
class SampleProcessor final : public StreamProcessor {
 public:
  explicit SampleProcessor(double rate, uint64_t seed = 17) : rate_(rate), rng_(seed) {}

  void process(StreamPacket& packet, Emitter& out) override {
    if (!rng_.next_bool(rate_)) return;
    StreamPacket copy = packet;
    out.emit(std::move(copy));
  }

 private:
  double rate_;
  Xoshiro256 rng_;
};

/// Token-bucket rate limiter: forwards at most `rate_pps` packets/s
/// (burst up to `burst` tokens); excess packets are *dropped* — use only
/// where shedding is acceptable, backpressure handles the usual case.
class RateLimitProcessor final : public StreamProcessor {
 public:
  RateLimitProcessor(double rate_pps, double burst = 100,
                     const Clock* clock = &SteadyClock::instance())
      : rate_pps_(rate_pps), burst_(burst), clock_(clock), tokens_(burst) {}

  void process(StreamPacket& packet, Emitter& out) override {
    int64_t now = clock_->now_ns();
    if (primed_) {
      tokens_ = std::min(burst_, tokens_ + static_cast<double>(now - last_ns_) * 1e-9 * rate_pps_);
    }
    primed_ = true;
    last_ns_ = now;
    if (tokens_ < 1.0) {
      ++dropped_;
      return;
    }
    tokens_ -= 1.0;
    StreamPacket copy = packet;
    out.emit(std::move(copy));
  }

  uint64_t dropped() const { return dropped_; }

 private:
  const double rate_pps_;
  const double burst_;
  const Clock* clock_;
  double tokens_;
  int64_t last_ns_ = 0;
  bool primed_ = false;
  uint64_t dropped_ = 0;
};

/// Stateless passthrough with a tap: calls `observe` for every packet and
/// forwards unchanged. Useful for inline metrics/debugging stages.
class TapProcessor final : public StreamProcessor {
 public:
  using Fn = std::function<void(const StreamPacket&)>;
  explicit TapProcessor(Fn observe) : observe_(std::move(observe)) {}

  void process(StreamPacket& packet, Emitter& out) override {
    observe_(packet);
    if (out.output_link_count() > 0) {
      StreamPacket copy = packet;
      out.emit(std::move(copy));
    }
  }

 private:
  Fn observe_;
};

}  // namespace neptune::ops
