// Application-level outbound buffer (paper §III-B1), one per
// (link, source-instance, destination-instance) edge.
//
//  * Capacity is defined in *bytes*, not messages — "flush the buffer as
//    soon as the required threshold is reached irrespective of the number
//    of the messages in the buffer and their sizes".
//  * A flush timer bounds queueing delay: "each buffer is equipped with a
//    timer that guarantees flushing of the buffer after a certain time
//    period since arrival of the first message".
//  * Flushes pass through the link's SelectiveCodec (entropy-gated LZ4,
//    §III-B5), are framed with a CRC, and are handed to the edge's
//    ChannelSender. A rejected flush (flow control) parks the frame in
//    `pending_` — the packet data is never dropped; the owning operator is
//    descheduled until the channel's writable callback fires (§III-B4).
#pragma once

#include <memory>
#include <mutex>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "compress/selective.hpp"
#include "net/channel.hpp"
#include "neptune/metrics.hpp"
#include "neptune/packet.hpp"
#include "obs/trace.hpp"

namespace neptune {

struct StreamBufferConfig {
  /// Flush threshold in bytes (paper default configuration: 1 MB).
  size_t capacity_bytes = 1 << 20;
  /// Soft latency bound: flush this long after the first buffered packet
  /// even if under capacity. 0 disables timer flushing (tests).
  int64_t flush_interval_ns = 5'000'000;  // 5 ms
};

/// Per-stream delivery priority, declared per link in the topology. The
/// default preserves the paper's lossless contract; best-effort links may
/// shed under overload according to their ShedConfig.
enum class QosClass : uint8_t {
  kCritical,    ///< lossless: backpressure only, never shed
  kBestEffort,  ///< sheddable under overload per the link's ShedConfig
};

/// What to drop when a best-effort edge is overloaded.
enum class ShedPolicy : uint8_t {
  kNone,           ///< never shed (the only legal policy for critical links)
  kDropNewest,     ///< admission control: refuse incoming packets while overloaded
  kDropOldest,     ///< release the parked (oldest) frame once it overstays queue-wait
  kProbabilistic,  ///< drop incoming packets with `drop_probability` while overloaded
};

const char* qos_class_name(QosClass q);
const char* shed_policy_name(ShedPolicy p);

/// Shedding parameters for one best-effort edge. Overload is detected from
/// two signals the buffer already has: the channel watermark (flow control
/// refusing frames, or writable() reporting the next flush would block) and
/// queue wait (a parked frame older than `max_queue_wait_ns`).
struct ShedConfig {
  ShedPolicy policy = ShedPolicy::kNone;
  /// Hard local bound on the accumulating batch. Admission drops
  /// unconditionally past this, whatever the policy's normal lane decides.
  /// 0 derives 2x the buffer capacity.
  size_t max_buffered_bytes = 0;
  /// Queue-wait signal: a parked frame older than this is stuck behind a
  /// saturated channel. Drop-oldest releases it; the admission policies
  /// treat it as an overload indicator.
  int64_t max_queue_wait_ns = 20'000'000;  // 20 ms
  /// Drop probability for kProbabilistic while overloaded.
  double drop_probability = 0.5;
  /// Seed for the probabilistic lane (mixed with link/instance ids, so DST
  /// runs shed deterministically).
  uint64_t seed = 0x5eed5eedULL;
};

/// Per-edge batch header carried inside every frame payload, ahead of the
/// serialized packets. The trace block rides in the payload (not the frame
/// header) so it survives compression and crosses both transports untouched;
/// trace_id 0 means the batch is untraced and all trace fields are zero.
struct BatchHeader {
  static constexpr size_t kSize = 4 + 8 + 8 + 8 + 8 + 8;
  // Byte offsets of the trace fields, for in-place patching at flush time.
  static constexpr size_t kTraceIdOffset = 12;
  static constexpr size_t kTraceOriginOffset = 20;
  static constexpr size_t kBatchStartOffset = 28;
  static constexpr size_t kFlushOffset = 36;
  uint32_t src_instance = 0;
  uint64_t base_seq = 0;
  uint64_t trace_id = 0;        ///< 0 = untraced batch
  int64_t trace_origin_ns = 0;  ///< when the trace's root batch started
  int64_t batch_start_ns = 0;   ///< first packet buffered (sender clock)
  int64_t flush_ns = 0;         ///< frame handed to the channel (sender clock)
};

class StreamBuffer {
 public:
  StreamBuffer(uint32_t link_id, uint32_t src_instance, std::shared_ptr<ChannelSender> sender,
               std::shared_ptr<SelectiveCodec> codec, StreamBufferConfig config,
               OperatorMetrics* metrics, const Clock* clock = &SteadyClock::instance(),
               ShedConfig shed = {});

  StreamBuffer(const StreamBuffer&) = delete;
  StreamBuffer& operator=(const StreamBuffer&) = delete;

  /// Serialize one packet into the buffer, assigning the edge sequence
  /// number. Triggers a flush attempt when the capacity threshold is
  /// crossed. Returns false when the edge is now flow-controlled (caller
  /// should stop producing).
  bool add(const StreamPacket& packet);

  /// Append one *already serialized* packet — the zero-copy re-emit path:
  /// a relay operator working on a BatchView hands the packet's wire bytes
  /// straight from the inbound frame into this buffer, skipping both
  /// deserialize and re-serialize. The bytes must be exactly one packet in
  /// StreamPacket wire format. Same flush/flow-control behavior as add().
  bool add_raw(std::span<const uint8_t> packet_bytes);

  /// Timer hook: flush if the oldest buffered packet has waited past the
  /// interval. Called from the IO thread.
  void on_timer();

  /// Retry a parked frame and/or flush remaining content. `force` flushes
  /// even below capacity (used at end-of-stream). Returns true when
  /// nothing remains unflushed.
  bool drain(bool force);

  /// True if a parked frame or buffered bytes exist.
  bool has_unflushed() const;

  /// True when the edge would currently accept a flush.
  bool blocked() const;

  void close_channel();

  /// Inherit a trace context for the batch being accumulated (or the next
  /// one if the buffer is empty). Called by the runtime while executing a
  /// traced upstream batch so the trace follows the data downstream. A
  /// no-op for inactive contexts or when this batch is already traced.
  void note_trace(const obs::TraceContext& ctx);

  /// Bytes currently parked in the buffer (accumulating + flow-controlled
  /// frame). Telemetry gauge; takes the buffer lock briefly.
  size_t buffered_bytes() const;

  uint32_t link_id() const { return link_id_; }
  uint32_t src_instance() const { return src_instance_; }
  uint64_t next_seq() const;

  // --- shedding ----------------------------------------------------------------
  const ShedConfig& shed_config() const { return shed_; }
  /// True when this edge may drop packets (receivers treat seq gaps as
  /// sheds, not contract violations).
  bool lossy() const { return shed_.policy != ShedPolicy::kNone; }
  uint64_t shed_packets() const;
  uint64_t shed_batches() const;
  uint64_t shed_bytes_total() const;

 private:
  /// Batch-start bookkeeping shared by add()/add_raw(). Pre: lock held.
  void prepare_batch_locked();
  /// Post-append bookkeeping: seq/count, threshold flush. Pre: lock held.
  bool finish_add_locked();
  /// Build a frame from the accumulation buffer and try to send it.
  /// Pre: lock held, accum non-empty, no pending frame.
  bool flush_locked();
  /// Try to send the parked frame. Pre: lock held.
  bool retry_pending_locked();
  /// Clear the blocked flag, folding the completed stall into blocked_ns.
  void settle_blocked_locked();
  /// Admission decision for one incoming packet of `packet_bytes` wire
  /// bytes. Returns true when the packet must be dropped (already counted).
  /// For kDropOldest this never drops the incoming packet but may release
  /// an overstayed parked frame to make room. Pre: lock held.
  bool admission_shed_locked(size_t packet_bytes);
  /// Release the parked frame back to the pool without sending (zero-copy
  /// shed) and count it. Pre: lock held.
  void shed_pending_locked();
  void count_admission_shed_locked(size_t packet_bytes);
  /// True when the parked frame has waited past the queue-wait bound.
  bool pending_overstayed_locked(int64_t now) const;

  const uint32_t link_id_;
  const uint32_t src_instance_;
  uint32_t flight_actor_ = 0;  ///< flight-recorder actor for this edge
  std::shared_ptr<ChannelSender> sender_;
  std::shared_ptr<SelectiveCodec> codec_;
  const StreamBufferConfig config_;
  OperatorMetrics* metrics_;
  const Clock* clock_;

  mutable std::mutex mu_;
  ByteBuffer accum_;          // batch header + serialized packets
  uint32_t accum_count_ = 0;  // packets in accum_
  uint64_t next_seq_ = 0;     // seq of the next packet added
  int64_t first_packet_ns_ = 0;
  /// Fully framed bytes awaiting (re)send, in a pooled refcounted buffer:
  /// an in-process channel takes its own ref instead of copying, so the
  /// flush -> receive path moves zero payload bytes.
  FrameBufRef pending_;
  uint32_t pending_count_ = 0;    // packets inside pending_
  int64_t pending_since_ns_ = 0;  // when pending_ was framed (queue-wait signal)
  std::vector<uint8_t> codec_scratch_;
  bool blocked_ = false;
  int64_t blocked_since_ns_ = 0;   // when blocked_ last became true
  obs::TraceContext batch_trace_;  // trace attached to the accumulating batch

  const ShedConfig shed_;
  Xoshiro256 shed_rng_;
  uint64_t shed_packets_ = 0;  // under mu_; mirrored into metrics_
  uint64_t shed_batches_ = 0;
  uint64_t shed_bytes_ = 0;
};

}  // namespace neptune
