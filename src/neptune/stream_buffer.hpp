// Application-level outbound buffer (paper §III-B1), one per
// (link, source-instance, destination-instance) edge.
//
//  * Capacity is defined in *bytes*, not messages — "flush the buffer as
//    soon as the required threshold is reached irrespective of the number
//    of the messages in the buffer and their sizes".
//  * A flush timer bounds queueing delay: "each buffer is equipped with a
//    timer that guarantees flushing of the buffer after a certain time
//    period since arrival of the first message".
//  * Flushes pass through the link's SelectiveCodec (entropy-gated LZ4,
//    §III-B5), are framed with a CRC, and are handed to the edge's
//    ChannelSender. A rejected flush (flow control) parks the frame in
//    `pending_` — the packet data is never dropped; the owning operator is
//    descheduled until the channel's writable callback fires (§III-B4).
#pragma once

#include <memory>
#include <mutex>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "compress/selective.hpp"
#include "net/channel.hpp"
#include "neptune/metrics.hpp"
#include "neptune/packet.hpp"

namespace neptune {

struct StreamBufferConfig {
  /// Flush threshold in bytes (paper default configuration: 1 MB).
  size_t capacity_bytes = 1 << 20;
  /// Soft latency bound: flush this long after the first buffered packet
  /// even if under capacity. 0 disables timer flushing (tests).
  int64_t flush_interval_ns = 5'000'000;  // 5 ms
};

/// Per-edge batch header carried inside every frame payload, ahead of the
/// serialized packets.
struct BatchHeader {
  static constexpr size_t kSize = 4 + 8;
  uint32_t src_instance = 0;
  uint64_t base_seq = 0;
};

class StreamBuffer {
 public:
  StreamBuffer(uint32_t link_id, uint32_t src_instance, std::shared_ptr<ChannelSender> sender,
               std::shared_ptr<SelectiveCodec> codec, StreamBufferConfig config,
               OperatorMetrics* metrics, const Clock* clock = &SteadyClock::instance());

  StreamBuffer(const StreamBuffer&) = delete;
  StreamBuffer& operator=(const StreamBuffer&) = delete;

  /// Serialize one packet into the buffer, assigning the edge sequence
  /// number. Triggers a flush attempt when the capacity threshold is
  /// crossed. Returns false when the edge is now flow-controlled (caller
  /// should stop producing).
  bool add(const StreamPacket& packet);

  /// Timer hook: flush if the oldest buffered packet has waited past the
  /// interval. Called from the IO thread.
  void on_timer();

  /// Retry a parked frame and/or flush remaining content. `force` flushes
  /// even below capacity (used at end-of-stream). Returns true when
  /// nothing remains unflushed.
  bool drain(bool force);

  /// True if a parked frame or buffered bytes exist.
  bool has_unflushed() const;

  /// True when the edge would currently accept a flush.
  bool blocked() const;

  void close_channel();

  uint32_t link_id() const { return link_id_; }
  uint32_t src_instance() const { return src_instance_; }
  uint64_t next_seq() const;

 private:
  /// Build a frame from the accumulation buffer and try to send it.
  /// Pre: lock held, accum non-empty, no pending frame.
  bool flush_locked();
  /// Try to send the parked frame. Pre: lock held.
  bool retry_pending_locked();

  const uint32_t link_id_;
  const uint32_t src_instance_;
  std::shared_ptr<ChannelSender> sender_;
  std::shared_ptr<SelectiveCodec> codec_;
  const StreamBufferConfig config_;
  OperatorMetrics* metrics_;
  const Clock* clock_;

  mutable std::mutex mu_;
  ByteBuffer accum_;          // batch header + serialized packets
  uint32_t accum_count_ = 0;  // packets in accum_
  uint64_t next_seq_ = 0;     // seq of the next packet added
  int64_t first_packet_ns_ = 0;
  ByteBuffer pending_;        // fully framed bytes rejected by flow control
  std::vector<uint8_t> codec_scratch_;
  bool blocked_ = false;
};

}  // namespace neptune
