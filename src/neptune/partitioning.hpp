// Stream partitioning schemes (paper §III-A6): given a packet emitted by a
// source instance, pick the destination instance of the downstream
// operator. NEPTUNE "supports a set of partitioning schemes natively and
// also allows users to design custom partitioning schemes".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "neptune/packet.hpp"

namespace neptune {

/// Sentinel returned by a scheme to request delivery to *every* instance.
inline constexpr uint32_t kBroadcastInstance = ~0u;

class PartitioningScheme {
 public:
  virtual ~PartitioningScheme() = default;
  virtual const char* name() const = 0;

  /// Called once at wiring time with the upstream parallelism, before any
  /// select(). Lets stateful schemes preallocate one lane per sender so
  /// that concurrent select() calls from *distinct* src_instance values
  /// are race-free.
  virtual void prepare(uint32_t src_instances) { (void)src_instances; }

  /// Destination instance in [0, instance_count), or kBroadcastInstance.
  /// `src_instance` allows per-sender state (e.g. round-robin cursors) to
  /// stay contention-free.
  virtual uint32_t select(const StreamPacket& packet, uint32_t src_instance,
                          uint32_t instance_count) = 0;

  /// View-path variant used by the zero-copy batch pipeline. The default
  /// materializes into a thread-local scratch packet and defers to
  /// select(), so custom schemes keep working; the native schemes override
  /// it to skip materialization entirely.
  virtual uint32_t select_view(const PacketView& view, uint32_t src_instance,
                               uint32_t instance_count) {
    thread_local StreamPacket scratch;
    view.materialize(scratch);
    return select(scratch, src_instance, instance_count);
  }

 protected:
  /// For schemes that ignore packet contents: a shared immutable empty
  /// packet lets select_view() reuse select() without materializing.
  static const StreamPacket& empty_packet() {
    static const StreamPacket p;
    return p;
  }
};

/// Round-robin per sender instance — NEPTUNE's default ("shuffle").
class ShufflePartitioning final : public PartitioningScheme {
 public:
  const char* name() const override { return "shuffle"; }
  void prepare(uint32_t src_instances) override { cursors_.resize(src_instances); }
  uint32_t select(const StreamPacket&, uint32_t src_instance, uint32_t n) override;
  uint32_t select_view(const PacketView&, uint32_t src_instance, uint32_t n) override {
    return select(empty_packet(), src_instance, n);
  }

 private:
  struct Cursor {
    alignas(64) uint32_t next = 0;
  };
  std::vector<Cursor> cursors_;
};

/// Uniform random instance selection.
class RandomPartitioning final : public PartitioningScheme {
 public:
  explicit RandomPartitioning(uint64_t seed = 0x9E3779B97F4A7C15ULL) : seed_(seed) {}
  const char* name() const override { return "random"; }
  void prepare(uint32_t src_instances) override {
    states_.resize(src_instances);
    for (uint32_t i = 0; i < src_instances; ++i) states_[i].s = (seed_ + i * 0x9E37u) | 1;
  }
  uint32_t select(const StreamPacket&, uint32_t src_instance, uint32_t n) override;
  uint32_t select_view(const PacketView&, uint32_t src_instance, uint32_t n) override {
    return select(empty_packet(), src_instance, n);
  }

 private:
  struct Lane {
    alignas(64) uint64_t s = 1;
  };
  uint64_t seed_;
  std::vector<Lane> states_;
};

/// Key-grouped: hash of one field picks the instance, so all packets with
/// the same key reach the same instance (stateful operators rely on this).
class FieldsHashPartitioning final : public PartitioningScheme {
 public:
  explicit FieldsHashPartitioning(size_t field_index) : field_(field_index) {}
  const char* name() const override { return "fields-hash"; }
  uint32_t select(const StreamPacket& p, uint32_t, uint32_t n) override {
    return static_cast<uint32_t>(p.field_hash(field_) % n);
  }
  uint32_t select_view(const PacketView& v, uint32_t, uint32_t n) override {
    // PacketView::field_hash is bit-identical to StreamPacket's, so a key
    // routes to the same instance regardless of decode path.
    return static_cast<uint32_t>(v.field_hash(field_) % n);
  }
  size_t field_index() const { return field_; }

 private:
  size_t field_;
};

/// Every instance receives a copy of every packet.
class BroadcastPartitioning final : public PartitioningScheme {
 public:
  const char* name() const override { return "broadcast"; }
  uint32_t select(const StreamPacket&, uint32_t, uint32_t) override {
    return kBroadcastInstance;
  }
  uint32_t select_view(const PacketView&, uint32_t, uint32_t) override {
    return kBroadcastInstance;
  }
};

/// Sender instance i delivers to destination instance i % n (pipelines with
/// matched parallelism become contention-free lanes).
class DirectPartitioning final : public PartitioningScheme {
 public:
  const char* name() const override { return "direct"; }
  uint32_t select(const StreamPacket&, uint32_t src_instance, uint32_t n) override {
    return src_instance % n;
  }
  uint32_t select_view(const PacketView&, uint32_t src_instance, uint32_t n) override {
    return src_instance % n;
  }
};

/// User-supplied function (paper: "custom partitioning schemes").
class CustomPartitioning final : public PartitioningScheme {
 public:
  using Fn = std::function<uint32_t(const StreamPacket&, uint32_t src, uint32_t n)>;
  explicit CustomPartitioning(Fn fn, std::string scheme_name = "custom")
      : fn_(std::move(fn)), name_(std::move(scheme_name)) {}
  const char* name() const override { return name_.c_str(); }
  uint32_t select(const StreamPacket& p, uint32_t src, uint32_t n) override {
    return fn_(p, src, n);
  }

 private:
  Fn fn_;
  std::string name_;
};

/// Factory used by the JSON topology loader.
std::shared_ptr<PartitioningScheme> make_partitioning(const std::string& scheme,
                                                      int field_index = 0);

}  // namespace neptune
