// Stream packets (paper §III-A1): the most fine-grained element of data in
// NEPTUNE. A packet is an ordered set of typed data fields plus an event
// timestamp stamped at ingest (used for end-to-end latency accounting).
//
// The wire encoding is self-describing (a one-byte type tag per field) and
// varint-compressed. Serde goes through reusable ByteBuffers and packets are
// recycled through ObjectPools — the object-reuse scheme of §III-B3.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/object_pool.hpp"

namespace neptune {

enum class FieldType : uint8_t {
  kI32 = 0,
  kI64 = 1,
  kF32 = 2,
  kF64 = 3,
  kBool = 4,
  kString = 5,
  kBytes = 6,
};

const char* field_type_name(FieldType t);

/// One typed field value. The variant order must match FieldType.
using Value = std::variant<int32_t, int64_t, float, double, bool, std::string,
                           std::vector<uint8_t>>;

FieldType value_type(const Value& v);

/// Optional schema: a named, ordered field layout. Packets do not carry
/// their schema on the wire (the encoding is self-describing); schemas give
/// operators name-based field access and validation.
class Schema {
 public:
  struct Field {
    std::string name;
    FieldType type;
  };

  Schema() = default;
  Schema(std::initializer_list<Field> fields);

  Schema& add(std::string name, FieldType type);

  size_t field_count() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_.at(i); }
  /// Index of a named field, or -1.
  int index_of(const std::string& name) const;

 private:
  std::vector<Field> fields_;
};

class StreamPacket {
 public:
  StreamPacket() = default;

  /// Event timestamp (steady-clock ns), stamped when the packet entered the
  /// system at a stream source.
  int64_t event_time_ns() const { return event_time_ns_; }
  void set_event_time_ns(int64_t t) { event_time_ns_ = t; }

  size_t field_count() const { return fields_.size(); }
  const Value& field(size_t i) const { return fields_.at(i); }
  Value& field(size_t i) { return fields_.at(i); }

  StreamPacket& add(Value v) {
    fields_.push_back(std::move(v));
    return *this;
  }
  StreamPacket& add_i32(int32_t v) { return add(Value(v)); }
  StreamPacket& add_i64(int64_t v) { return add(Value(v)); }
  StreamPacket& add_f32(float v) { return add(Value(v)); }
  StreamPacket& add_f64(double v) { return add(Value(v)); }
  StreamPacket& add_bool(bool v) { return add(Value(v)); }
  StreamPacket& add_string(std::string v) { return add(Value(std::move(v))); }
  StreamPacket& add_bytes(std::vector<uint8_t> v) { return add(Value(std::move(v))); }

  int32_t i32(size_t i) const { return std::get<int32_t>(field(i)); }
  int64_t i64(size_t i) const { return std::get<int64_t>(field(i)); }
  float f32(size_t i) const { return std::get<float>(field(i)); }
  double f64(size_t i) const { return std::get<double>(field(i)); }
  bool boolean(size_t i) const { return std::get<bool>(field(i)); }
  const std::string& str(size_t i) const { return std::get<std::string>(field(i)); }
  const std::vector<uint8_t>& bytes(size_t i) const {
    return std::get<std::vector<uint8_t>>(field(i));
  }

  /// Reset for reuse; keeps the field vector's capacity (object reuse).
  void clear() {
    fields_.clear();
    event_time_ns_ = 0;
  }

  /// Wire size of this packet if serialized now.
  size_t serialized_size() const;

  /// Append the packet to `out`.
  void serialize(ByteBuffer& out) const;

  /// Read one packet from `in`, *reusing* this object's storage.
  /// Throws BufferUnderflow / PacketFormatError on malformed input.
  /// When `alloc_bytes` is non-null, the payload bytes heap-copied for
  /// string/bytes fields are accumulated into it (serde_alloc_bytes
  /// telemetry — the cost the zero-copy view path avoids).
  void deserialize(ByteReader& in, uint64_t* alloc_bytes = nullptr);

  /// Stable 64-bit hash of a field's value (for fields-hash partitioning).
  uint64_t field_hash(size_t i) const;

  bool operator==(const StreamPacket& o) const {
    return event_time_ns_ == o.event_time_ns_ && fields_ == o.fields_;
  }

 private:
  int64_t event_time_ns_ = 0;
  std::vector<Value> fields_;
};

class PacketFormatError : public std::runtime_error {
 public:
  explicit PacketFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Zero-copy decoded packet: a reusable cursor + field table over a
/// packet's wire bytes. parse() decodes scalars eagerly into the table and
/// records string/bytes fields as pointers into the input — no per-field
/// heap allocation, ever. Accessors for variable-length fields return
/// views; everything a PacketView hands out is valid only while the
/// backing frame bytes live (in the runtime: one scheduled execution —
/// the batch's pooled frame ref pins them, see docs/INTERNALS.md §11).
///
/// parse() throws PacketFormatError on any malformed input — unknown type
/// tag, absurd field count, truncation, overlong varint — and never reads
/// outside the given span.
class PacketView {
 public:
  struct FieldRef {
    FieldType type = FieldType::kI32;
    union {
      int64_t i;   ///< kI32 (sign-extended), kI64, kBool (0/1)
      float f32;   ///< kF32
      double f64;  ///< kF64
    };
    const uint8_t* data = nullptr;  ///< kString / kBytes payload
    uint32_t size = 0;
  };

  /// Decode one packet from `buf` starting at `offset`; returns the offset
  /// one past the packet. Reuses the field table's capacity (object-reuse
  /// scheme §III-B3: one PacketView per instance serves every packet).
  size_t parse(std::span<const uint8_t> buf, size_t offset = 0);

  int64_t event_time_ns() const { return event_time_ns_; }
  size_t field_count() const { return fields_.size(); }
  FieldType type(size_t i) const { return ref_at(i).type; }

  int32_t i32(size_t i) const { return static_cast<int32_t>(checked(i, FieldType::kI32).i); }
  int64_t i64(size_t i) const { return checked(i, FieldType::kI64).i; }
  float f32(size_t i) const { return checked(i, FieldType::kF32).f32; }
  double f64(size_t i) const { return checked(i, FieldType::kF64).f64; }
  bool boolean(size_t i) const { return checked(i, FieldType::kBool).i != 0; }
  std::string_view str(size_t i) const {
    const FieldRef& r = checked(i, FieldType::kString);
    return {reinterpret_cast<const char*>(r.data), r.size};
  }
  std::span<const uint8_t> bytes(size_t i) const {
    const FieldRef& r = checked(i, FieldType::kBytes);
    return {r.data, r.size};
  }

  /// The packet's serialized wire bytes — the zero-copy re-emit currency:
  /// StreamBuffer::add_raw() appends them to an outbound batch unchanged.
  std::span<const uint8_t> raw() const { return raw_; }

  /// Stable 64-bit value hash, bit-identical to StreamPacket::field_hash
  /// so fields-hash partitioning routes a packet the same way on both
  /// decode paths.
  uint64_t field_hash(size_t i) const;

  /// Deep-copy into an owning packet (reusing its storage) — the bridge to
  /// per-packet operators and to keeping data beyond the view's lifetime.
  void materialize(StreamPacket& out) const;

 private:
  const FieldRef& ref_at(size_t i) const { return fields_.at(i); }
  const FieldRef& checked(size_t i, FieldType want) const {
    const FieldRef& r = fields_.at(i);
    if (r.type != want)
      throw PacketFormatError(std::string("field type mismatch: want ") + field_type_name(want) +
                              ", have " + field_type_name(r.type));
    return r;
  }

  int64_t event_time_ns_ = 0;
  std::vector<FieldRef> fields_;
  std::span<const uint8_t> raw_;
};

/// Sequential zero-copy view over the packets of one decoded batch payload
/// (the bytes after the BatchHeader). Owns nothing: the runtime pins the
/// backing frame for the duration of the operator's scheduled execution and
/// resets the attached arena once per execution — operators may use
/// arena() for per-batch scratch that needs no destructors.
class BatchView {
 public:
  BatchView() = default;
  BatchView(std::span<const uint8_t> packet_bytes, uint32_t count, Arena* arena = nullptr) {
    reset(packet_bytes, count, arena);
  }

  /// Rebind to a new batch (reuse from the runtime's per-instance object).
  void reset(std::span<const uint8_t> packet_bytes, uint32_t count, Arena* arena = nullptr) {
    bytes_ = packet_bytes;
    offset_ = 0;
    count_ = count;
    consumed_ = 0;
    arena_ = arena;
    last_event_time_ns_ = 0;
  }

  /// Packets in the batch (total, not remaining).
  size_t size() const { return count_; }
  size_t consumed() const { return consumed_; }
  size_t remaining() const { return count_ - consumed_; }

  /// Decode the next packet into `view`. Returns false once exhausted.
  /// Throws PacketFormatError if the payload is malformed.
  bool next(PacketView& view) {
    if (consumed_ == count_) return false;
    offset_ = view.parse(bytes_, offset_);
    ++consumed_;
    last_event_time_ns_ = view.event_time_ns();
    return true;
  }

  /// Skip `n` packets without handing them to the operator (duplicate-frame
  /// cursor replay after recovery). Stops early at end of batch.
  void skip(size_t n) {
    while (n-- > 0 && next(scratch_)) {
    }
  }

  /// Per-execution bump allocator for operator scratch; null when the
  /// caller provided none (standalone/test use).
  Arena* arena() const { return arena_; }

  /// Event time of the most recently decoded packet (sink latency is
  /// sampled per batch on the view path).
  int64_t last_event_time_ns() const { return last_event_time_ns_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
  uint32_t count_ = 0;
  uint32_t consumed_ = 0;
  Arena* arena_ = nullptr;
  int64_t last_event_time_ns_ = 0;
  PacketView scratch_;  // for skip()
};

/// Pool of reusable packets (paper §III-B3). One per operator instance.
using PacketPool = ObjectPool<StreamPacket>;

}  // namespace neptune
