// Stream packets (paper §III-A1): the most fine-grained element of data in
// NEPTUNE. A packet is an ordered set of typed data fields plus an event
// timestamp stamped at ingest (used for end-to-end latency accounting).
//
// The wire encoding is self-describing (a one-byte type tag per field) and
// varint-compressed. Serde goes through reusable ByteBuffers and packets are
// recycled through ObjectPools — the object-reuse scheme of §III-B3.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/object_pool.hpp"

namespace neptune {

enum class FieldType : uint8_t {
  kI32 = 0,
  kI64 = 1,
  kF32 = 2,
  kF64 = 3,
  kBool = 4,
  kString = 5,
  kBytes = 6,
};

const char* field_type_name(FieldType t);

/// One typed field value. The variant order must match FieldType.
using Value = std::variant<int32_t, int64_t, float, double, bool, std::string,
                           std::vector<uint8_t>>;

FieldType value_type(const Value& v);

/// Optional schema: a named, ordered field layout. Packets do not carry
/// their schema on the wire (the encoding is self-describing); schemas give
/// operators name-based field access and validation.
class Schema {
 public:
  struct Field {
    std::string name;
    FieldType type;
  };

  Schema() = default;
  Schema(std::initializer_list<Field> fields);

  Schema& add(std::string name, FieldType type);

  size_t field_count() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_.at(i); }
  /// Index of a named field, or -1.
  int index_of(const std::string& name) const;

 private:
  std::vector<Field> fields_;
};

class StreamPacket {
 public:
  StreamPacket() = default;

  /// Event timestamp (steady-clock ns), stamped when the packet entered the
  /// system at a stream source.
  int64_t event_time_ns() const { return event_time_ns_; }
  void set_event_time_ns(int64_t t) { event_time_ns_ = t; }

  size_t field_count() const { return fields_.size(); }
  const Value& field(size_t i) const { return fields_.at(i); }
  Value& field(size_t i) { return fields_.at(i); }

  StreamPacket& add(Value v) {
    fields_.push_back(std::move(v));
    return *this;
  }
  StreamPacket& add_i32(int32_t v) { return add(Value(v)); }
  StreamPacket& add_i64(int64_t v) { return add(Value(v)); }
  StreamPacket& add_f32(float v) { return add(Value(v)); }
  StreamPacket& add_f64(double v) { return add(Value(v)); }
  StreamPacket& add_bool(bool v) { return add(Value(v)); }
  StreamPacket& add_string(std::string v) { return add(Value(std::move(v))); }
  StreamPacket& add_bytes(std::vector<uint8_t> v) { return add(Value(std::move(v))); }

  int32_t i32(size_t i) const { return std::get<int32_t>(field(i)); }
  int64_t i64(size_t i) const { return std::get<int64_t>(field(i)); }
  float f32(size_t i) const { return std::get<float>(field(i)); }
  double f64(size_t i) const { return std::get<double>(field(i)); }
  bool boolean(size_t i) const { return std::get<bool>(field(i)); }
  const std::string& str(size_t i) const { return std::get<std::string>(field(i)); }
  const std::vector<uint8_t>& bytes(size_t i) const {
    return std::get<std::vector<uint8_t>>(field(i));
  }

  /// Reset for reuse; keeps the field vector's capacity (object reuse).
  void clear() {
    fields_.clear();
    event_time_ns_ = 0;
  }

  /// Wire size of this packet if serialized now.
  size_t serialized_size() const;

  /// Append the packet to `out`.
  void serialize(ByteBuffer& out) const;

  /// Read one packet from `in`, *reusing* this object's storage.
  /// Throws BufferUnderflow / PacketFormatError on malformed input.
  void deserialize(ByteReader& in);

  /// Stable 64-bit hash of a field's value (for fields-hash partitioning).
  uint64_t field_hash(size_t i) const;

  bool operator==(const StreamPacket& o) const {
    return event_time_ns_ == o.event_time_ns_ && fields_ == o.fields_;
  }

 private:
  int64_t event_time_ns_ = 0;
  std::vector<Value> fields_;
};

class PacketFormatError : public std::runtime_error {
 public:
  explicit PacketFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Pool of reusable packets (paper §III-B3). One per operator instance.
using PacketPool = ObjectPool<StreamPacket>;

}  // namespace neptune
