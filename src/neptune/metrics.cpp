#include "neptune/metrics.hpp"

#include <cstdio>

namespace neptune {

std::string format_metrics(const JobMetricsSnapshot& snap) {
  // Aggregate instances per operator id, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, OperatorMetricsSnapshot> agg;
  for (const auto& m : snap.operators) {
    auto [it, inserted] = agg.try_emplace(m.operator_id);
    if (inserted) {
      order.push_back(m.operator_id);
      it->second.operator_id = m.operator_id;
    }
    OperatorMetricsSnapshot& a = it->second;
    a.packets_in += m.packets_in;
    a.packets_out += m.packets_out;
    a.bytes_in += m.bytes_in;
    a.bytes_out += m.bytes_out;
    a.flushes += m.flushes;
    a.timer_flushes += m.timer_flushes;
    a.blocked_sends += m.blocked_sends;
    a.blocked_ns += m.blocked_ns;
    a.seq_violations += m.seq_violations;
    a.executions += m.executions;
    a.reconnects += m.reconnects;
    a.corrupt_frames_dropped += m.corrupt_frames_dropped;
    a.dup_frames_dropped += m.dup_frames_dropped;
    a.packets_shed += m.packets_shed;
    a.batches_shed += m.batches_shed;
    a.shed_bytes += m.shed_bytes;
    a.shed_gaps += m.shed_gaps;
    a.packets_quarantined += m.packets_quarantined;
    a.deadline_overruns += m.deadline_overruns;
    a.watchdog_stalls += m.watchdog_stalls;
    // Keep the worst sink percentile across instances.
    a.sink_latency_p99_ns = std::max(a.sink_latency_p99_ns, m.sink_latency_p99_ns);
    a.sink_latency_p999_ns = std::max(a.sink_latency_p999_ns, m.sink_latency_p999_ns);
    a.sink_latency_p50_ns = std::max(a.sink_latency_p50_ns, m.sink_latency_p50_ns);
    a.sink_latency_count += m.sink_latency_count;
    a.sink_latency_saturated += m.sink_latency_saturated;
  }

  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-14s %12s %12s %12s %10s %8s %11s %9s\n", "operator",
                "pkts-in", "pkts-out", "wire-out-B", "flushes", "blocked", "blocked-ms",
                "seq-viol");
  out += line;
  for (const auto& id : order) {
    const auto& a = agg[id];
    std::snprintf(line, sizeof line, "%-14s %12llu %12llu %12llu %10llu %8llu %11.3f %9llu\n",
                  id.c_str(), static_cast<unsigned long long>(a.packets_in),
                  static_cast<unsigned long long>(a.packets_out),
                  static_cast<unsigned long long>(a.bytes_out),
                  static_cast<unsigned long long>(a.flushes),
                  static_cast<unsigned long long>(a.blocked_sends),
                  static_cast<double>(a.blocked_ns) * 1e-6,
                  static_cast<unsigned long long>(a.seq_violations));
    out += line;
    if (a.sink_latency_count > 0) {
      std::snprintf(line, sizeof line,
                    "%-14s   sink latency p50=%.3f ms p99=%.3f ms p99.9=%.3f ms (n=%llu%s)\n",
                    "", static_cast<double>(a.sink_latency_p50_ns) * 1e-6,
                    static_cast<double>(a.sink_latency_p99_ns) * 1e-6,
                    static_cast<double>(a.sink_latency_p999_ns) * 1e-6,
                    static_cast<unsigned long long>(a.sink_latency_count),
                    a.sink_latency_saturated > 0 ? ", saturated" : "");
      out += line;
    }
  }
  uint64_t reconnects = 0, corrupt = 0, dups = 0;
  uint64_t shed = 0, quarantined = 0, overruns = 0, stalls = 0;
  for (const auto& m : snap.operators) {
    reconnects += m.reconnects;
    corrupt += m.corrupt_frames_dropped;
    dups += m.dup_frames_dropped;
    shed += m.packets_shed;
    quarantined += m.packets_quarantined;
    overruns += m.deadline_overruns;
    stalls += m.watchdog_stalls;
  }
  if (shed + quarantined + overruns + stalls > 0) {
    std::snprintf(line, sizeof line,
                  "overload: shed=%llu quarantined=%llu deadline-overruns=%llu "
                  "watchdog-stalls=%llu\n",
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(quarantined),
                  static_cast<unsigned long long>(overruns),
                  static_cast<unsigned long long>(stalls));
    out += line;
  }
  if (reconnects + corrupt + dups + snap.checkpoints_taken + snap.recoveries > 0) {
    std::snprintf(line, sizeof line,
                  "robustness: reconnects=%llu corrupt-dropped=%llu dup-dropped=%llu "
                  "checkpoints=%llu recoveries=%llu recovery=%.3f ms\n",
                  static_cast<unsigned long long>(reconnects),
                  static_cast<unsigned long long>(corrupt),
                  static_cast<unsigned long long>(dups),
                  static_cast<unsigned long long>(snap.checkpoints_taken),
                  static_cast<unsigned long long>(snap.recoveries),
                  static_cast<double>(snap.recovery_ns) * 1e-6);
    out += line;
  }
  std::snprintf(line, sizeof line, "wall time: %.3f s\n", snap.seconds());
  out += line;
  return out;
}

}  // namespace neptune
