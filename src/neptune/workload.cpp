#include "neptune/workload.hpp"

#include "common/clock.hpp"

#include <algorithm>
#include <fstream>

namespace neptune::workload {

// --- BytesSource -------------------------------------------------------------

BytesSource::BytesSource(uint64_t total_packets, size_t payload_bytes, PayloadKind kind,
                         uint64_t seed)
    : total_packets_(total_packets), payload_bytes_(payload_bytes), kind_(kind), rng_(seed) {}

void BytesSource::open(uint32_t instance, uint32_t parallelism) {
  if (total_packets_ == 0) {
    quota_ = 0;  // unbounded
    return;
  }
  // Split the packet budget across instances; earlier instances absorb the
  // remainder so the totals add up exactly.
  uint64_t base = total_packets_ / parallelism;
  uint64_t extra = instance < total_packets_ % parallelism ? 1 : 0;
  quota_ = base + extra;
  // Decorrelate instances' payload streams.
  rng_ = Xoshiro256(rng_.next_u64() ^ (0x9E3779B97F4A7C15ULL * (instance + 1)));
}

void BytesSource::fill_payload(std::vector<uint8_t>& payload) {
  payload.resize(payload_bytes_);
  switch (kind_) {
    case PayloadKind::kZero:
      std::fill(payload.begin(), payload.end(), 0);
      break;
    case PayloadKind::kText: {
      // Repetitive telemetry text; a fresh reading id every packet keeps it
      // from being *perfectly* constant.
      static constexpr char kTemplate[] = "id=0000,temp=21.5,hum=40.2,valve=open,flow=ok;";
      uint32_t id = static_cast<uint32_t>(rng_.next_below(10000));
      for (size_t i = 0; i < payload.size(); ++i) {
        char c = kTemplate[i % (sizeof kTemplate - 1)];
        payload[i] = static_cast<uint8_t>(c);
      }
      if (payload.size() >= 7) {
        payload[3] = static_cast<uint8_t>('0' + id / 1000 % 10);
        payload[4] = static_cast<uint8_t>('0' + id / 100 % 10);
        payload[5] = static_cast<uint8_t>('0' + id / 10 % 10);
        payload[6] = static_cast<uint8_t>('0' + id % 10);
      }
      break;
    }
    case PayloadKind::kRandom:
      for (auto& b : payload) b = static_cast<uint8_t>(rng_.next_u64());
      break;
  }
}

bool BytesSource::next(Emitter& out, size_t budget) {
  std::vector<uint8_t> payload;
  uint64_t emitted = emitted_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < budget; ++i) {
    if (total_packets_ != 0 && emitted >= quota_) return false;
    fill_payload(payload);
    StreamPacket p;
    p.set_event_time_ns(now_ns());
    p.add_i64(static_cast<int64_t>(emitted));
    p.add_bytes(std::move(payload));
    emitted_.store(++emitted, std::memory_order_relaxed);
    payload.clear();
    if (out.emit(std::move(p)) == EmitStatus::kBackpressured) break;
  }
  return total_packets_ == 0 || emitted < quota_;
}

// --- PacedSource --------------------------------------------------------------

PacedSource::PacedSource(PacedSourceConfig config)
    : config_(config), rng_(config.seed ? config.seed : 1) {}

void PacedSource::open(uint32_t instance, uint32_t parallelism) {
  instance_rate_ = config_.rate_pps / parallelism;
  if (config_.total_packets == 0) {
    quota_ = 0;
  } else {
    uint64_t base = config_.total_packets / parallelism;
    quota_ = base + (instance < config_.total_packets % parallelism ? 1 : 0);
  }
  rng_ = Xoshiro256(rng_.next_u64() ^ (0x9E3779B97F4A7C15ULL * (instance + 1)));
  payload_.resize(config_.payload_bytes);
  for (auto& b : payload_) b = static_cast<uint8_t>(rng_.next_u64());
  epoch_ns_ = 0;
}

uint64_t PacedSource::entitlement(int64_t elapsed_ns) const {
  // Piecewise integral of the offered rate: steady `instance_rate_` outside
  // the overload window, `instance_rate_ * overload_factor` inside it.
  const double rate = instance_rate_;
  const int64_t t0 = config_.overload_start_ns;
  const int64_t t1 =
      config_.overload_duration_ns > 0 ? t0 + config_.overload_duration_ns : INT64_MAX;
  double packets = 0;
  int64_t steady_ns = std::min(elapsed_ns, t0);
  if (steady_ns > 0) packets += rate * steady_ns / 1e9;
  if (elapsed_ns > t0 && config_.overload_factor != 1.0) {
    int64_t hot_ns = std::min(elapsed_ns, t1) - t0;
    packets += rate * config_.overload_factor * hot_ns / 1e9;
    if (elapsed_ns > t1) packets += rate * (elapsed_ns - t1) / 1e9;
  } else if (elapsed_ns > t0) {
    packets += rate * (elapsed_ns - t0) / 1e9;
  }
  return static_cast<uint64_t>(packets);
}

bool PacedSource::in_overload() const {
  if (epoch_ns_ == 0 || config_.overload_factor == 1.0) return false;
  int64_t elapsed = now_ns() - epoch_ns_;
  if (elapsed < config_.overload_start_ns) return false;
  return config_.overload_duration_ns == 0 ||
         elapsed < config_.overload_start_ns + config_.overload_duration_ns;
}

bool PacedSource::next(Emitter& out, size_t budget) {
  if (epoch_ns_ == 0) epoch_ns_ = now_ns();
  uint64_t emitted = emitted_.load(std::memory_order_relaxed);
  if (quota_ != 0 && emitted >= quota_) return false;
  uint64_t due = entitlement(now_ns() - epoch_ns_);
  if (quota_ != 0) due = std::min(due, quota_);
  uint64_t lag = due > emitted ? due - emitted : 0;
  backlog_.store(lag, std::memory_order_relaxed);
  size_t n = static_cast<size_t>(std::min<uint64_t>(lag, budget));
  for (size_t i = 0; i < n; ++i) {
    StreamPacket p;
    p.set_event_time_ns(now_ns());
    p.add_i64(static_cast<int64_t>(emitted));
    p.add_bytes(payload_);
    emitted_.store(++emitted, std::memory_order_relaxed);
    if (out.emit(std::move(p)) == EmitStatus::kBackpressured) break;
  }
  return quota_ == 0 || emitted < quota_;
}

// --- RelayProcessor / CountingSink --------------------------------------------

void RelayProcessor::process(StreamPacket& packet, Emitter& out) {
  StreamPacket copy = packet;  // keep arrival timestamp for latency tracking
  out.emit(std::move(copy));
}

void RelayProcessor::on_batch(BatchView& batch, Emitter& out) {
  // Zero-copy forward: each view's wire bytes (timestamp included) go
  // straight into the outbound buffer.
  PacketView v;
  while (batch.next(v)) out.emit(v);
}

void CountingSink::process(StreamPacket& packet, Emitter&) {
  (void)packet;
  count_.fetch_add(1, std::memory_order_relaxed);
  if (delay_ns_ > 0) {
    int64_t until = now_ns() + delay_ns_;
    while (now_ns() < until) {
      // spin: emulates CPU-bound per-packet work
    }
  }
}

void CountingSink::on_batch(BatchView& batch, Emitter&) {
  // Per-view iteration (not count_ += batch.size()) keeps the per-packet
  // spin-delay semantics identical to process().
  PacketView v;
  while (batch.next(v)) {
    count_.fetch_add(1, std::memory_order_relaxed);
    if (delay_ns_ > 0) {
      int64_t until = now_ns() + delay_ns_;
      while (now_ns() < until) {
      }
    }
  }
}

// --- VariableRateSink ------------------------------------------------------------

VariableRateSink::VariableRateSink(std::vector<int64_t> sleep_steps_ns,
                                   uint64_t step_every_packets, int64_t step_every_ns)
    : sleep_steps_ns_(std::move(sleep_steps_ns)),
      step_every_(step_every_packets),
      step_every_ns_(step_every_ns) {}

void VariableRateSink::advance_step() {
  size_t steps = sleep_steps_ns_.empty() ? 1 : sleep_steps_ns_.size();
  step_.store((step_.load(std::memory_order_relaxed) + 1) % steps, std::memory_order_relaxed);
}

void VariableRateSink::process(StreamPacket&, Emitter&) {
  count_.fetch_add(1, std::memory_order_relaxed);
  int64_t delay = current_delay_ns();
  if (delay > 0) {
    int64_t until = now_ns() + delay;
    while (now_ns() < until) {
    }
  }
  if (step_every_ns_ > 0) {
    int64_t now = now_ns();
    if (step_started_ns_ == 0) step_started_ns_ = now;
    if (now - step_started_ns_ >= step_every_ns_) {
      step_started_ns_ = now;
      advance_step();
    }
  } else if (++in_step_ >= step_every_) {
    in_step_ = 0;
    advance_step();
  }
}

// --- ManufacturingSource ----------------------------------------------------------

ManufacturingSource::ManufacturingSource(ManufacturingConfig config)
    : config_(config), rng_(config.seed) {}

void ManufacturingSource::open(uint32_t instance, uint32_t parallelism) {
  if (config_.total_readings != 0) {
    uint64_t base = config_.total_readings / parallelism;
    quota_ = base + (instance < config_.total_readings % parallelism ? 1 : 0);
  }
  rng_ = Xoshiro256(config_.seed ^ (0x6A09E667F3BCC909ULL * (instance + 1)));
  for (auto& a : aux_) a = static_cast<int32_t>(rng_.next_below(1000));
}

bool ManufacturingSource::next(Emitter& out, size_t budget) {
  using S = ManufacturingSchema;
  for (size_t i = 0; i < budget; ++i) {
    if (config_.total_readings != 0 && emitted_ >= quota_) return false;

    // Advance the plant state: rare sensor flips, lagged valve actuation.
    for (size_t s = 0; s < S::kSensors; ++s) {
      if (pending_actuation_[s] > 0) {
        if (--pending_actuation_[s] == 0) valves_[s] = sensors_[s];
      }
      if (rng_.next_bool(config_.sensor_flip_probability)) {
        sensors_[s] = !sensors_[s];
        pending_actuation_[s] = config_.actuation_lag_readings;
      }
    }
    // Aux channels: slow drift (low entropy) or white noise (high entropy).
    for (size_t a = S::kAuxBase; a < S::kTotalFields; ++a) {
      if (config_.low_entropy_aux) {
        if (rng_.next_bool(0.01))
          aux_[a] += static_cast<int32_t>(rng_.next_below(3)) - 1;
      } else {
        aux_[a] = static_cast<int32_t>(rng_.next_u64());
      }
    }
    sim_time_ms_ += 1;

    StreamPacket p;
    p.set_event_time_ns(now_ns());
    p.add_i64(sim_time_ms_);
    for (size_t s = 0; s < S::kSensors; ++s) p.add_bool(sensors_[s]);
    for (size_t s = 0; s < S::kSensors; ++s) p.add_bool(valves_[s]);
    for (size_t a = S::kAuxBase; a < S::kTotalFields; ++a) p.add_i32(aux_[a]);
    ++emitted_;
    if (out.emit(std::move(p)) == EmitStatus::kBackpressured) break;
  }
  return config_.total_readings == 0 || emitted_ < quota_;
}

// --- SensorStateExtractor ------------------------------------------------------------

void SensorStateExtractor::process(StreamPacket& packet, Emitter& out) {
  using S = ManufacturingSchema;
  StreamPacket slim;
  slim.set_event_time_ns(packet.event_time_ns());
  slim.add_i64(packet.i64(S::kTimestamp));
  for (size_t s = 0; s < S::kSensors; ++s) slim.add_bool(packet.boolean(S::kSensorBase + s));
  for (size_t s = 0; s < S::kSensors; ++s) slim.add_bool(packet.boolean(S::kValveBase + s));
  out.emit(std::move(slim));
}

// --- ChangeDetector ------------------------------------------------------------------

void ChangeDetector::process(StreamPacket& packet, Emitter& out) {
  using S = ManufacturingSchema;
  int64_t ts = packet.i64(0);
  for (size_t s = 0; s < S::kSensors; ++s) {
    bool sensor = packet.boolean(1 + s);
    bool valve = packet.boolean(1 + S::kSensors + s);
    if (primed_) {
      if (sensor != last_sensor_[s]) {
        StreamPacket ev;
        ev.set_event_time_ns(packet.event_time_ns());
        ev.add_i64(ts);
        ev.add_i32(static_cast<int32_t>(s));
        ev.add_i32(0);  // 0 = sensor change
        ev.add_bool(sensor);
        out.emit(std::move(ev));
      }
      if (valve != last_valve_[s]) {
        StreamPacket ev;
        ev.set_event_time_ns(packet.event_time_ns());
        ev.add_i64(ts);
        ev.add_i32(static_cast<int32_t>(s));
        ev.add_i32(1);  // 1 = valve actuation
        ev.add_bool(valve);
        out.emit(std::move(ev));
      }
    }
    last_sensor_[s] = sensor;
    last_valve_[s] = valve;
  }
  primed_ = true;
}

// --- ActuationDelayMonitor ---------------------------------------------------------------

ActuationDelayMonitor::ActuationDelayMonitor(int64_t window_ms) : window_ms_(window_ms) {
  for (auto& p : pending_change_ms_) p = -1;
}

void ActuationDelayMonitor::expire(int64_t now_ms) {
  while (!window_.empty() && window_.front().first < now_ms - window_ms_) {
    window_delay_sum_ -= static_cast<double>(window_.front().second);
    window_.pop_front();
  }
}

void ActuationDelayMonitor::process(StreamPacket& packet, Emitter&) {
  int64_t ts = packet.i64(0);
  auto sensor = static_cast<size_t>(packet.i32(1));
  int32_t kind = packet.i32(2);
  if (sensor >= ManufacturingSchema::kSensors) return;
  if (kind == 0) {  // sensor change: remember when
    pending_change_ms_[sensor] = ts;
  } else if (pending_change_ms_[sensor] >= 0) {  // valve actuated
    int64_t delay = ts - pending_change_ms_[sensor];
    pending_change_ms_[sensor] = -1;
    expire(ts);
    window_.emplace_back(ts, delay);
    window_delay_sum_ += static_cast<double>(delay);
    delays_observed_.fetch_add(1, std::memory_order_relaxed);
    delay_sum_ms_.fetch_add(static_cast<uint64_t>(delay), std::memory_order_relaxed);
  }
}

void ActuationDelayMonitor::close(Emitter& out) {
  if (out.output_link_count() == 0) return;
  StreamPacket summary;
  summary.add_i64(static_cast<int64_t>(delays_observed_.load()));
  summary.add_f64(mean_delay_ms());
  out.emit(std::move(summary));
}

double ActuationDelayMonitor::mean_delay_ms() const {
  uint64_t n = delays_observed_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(delay_sum_ms_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

// --- CSV replay --------------------------------------------------------------

StreamPacket parse_csv_row(const std::string& line, const Schema& schema) {
  StreamPacket p;
  size_t pos = 0;
  for (size_t f = 0; f < schema.field_count(); ++f) {
    size_t comma = line.find(',', pos);
    bool last = f + 1 == schema.field_count();
    if (!last && comma == std::string::npos)
      throw PacketFormatError("csv row has too few columns: " + line);
    std::string cell = last ? line.substr(pos)
                            : line.substr(pos, comma - pos);
    pos = comma == std::string::npos ? line.size() : comma + 1;
    try {
      switch (schema.field(f).type) {
        case FieldType::kI32: p.add_i32(static_cast<int32_t>(std::stol(cell))); break;
        case FieldType::kI64: p.add_i64(std::stoll(cell)); break;
        case FieldType::kF32: p.add_f32(std::stof(cell)); break;
        case FieldType::kF64: p.add_f64(std::stod(cell)); break;
        case FieldType::kBool:
          p.add_bool(cell == "1" || cell == "true" || cell == "TRUE");
          break;
        case FieldType::kString: p.add_string(std::move(cell)); break;
        case FieldType::kBytes:
          throw PacketFormatError("csv replay does not support bytes columns");
      }
    } catch (const std::invalid_argument&) {
      throw PacketFormatError("csv cell not parseable as " +
                              std::string(field_type_name(schema.field(f).type)) + ": '" +
                              cell + "'");
    } catch (const std::out_of_range&) {
      throw PacketFormatError("csv cell out of range: '" + cell + "'");
    }
  }
  return p;
}

struct CsvReplaySource::FileState {
  std::ifstream in;
};

CsvReplaySource::CsvReplaySource(std::string path, Schema schema, uint64_t max_rows)
    : path_(std::move(path)), schema_(std::move(schema)), max_rows_(max_rows) {}

CsvReplaySource::~CsvReplaySource() = default;

void CsvReplaySource::open(uint32_t instance, uint32_t parallelism) {
  instance_ = instance;
  parallelism_ = parallelism == 0 ? 1 : parallelism;
  file_ = std::make_unique<FileState>();
  file_->in.open(path_);
  if (!file_->in) throw std::runtime_error("CsvReplaySource: cannot open " + path_);
}

bool CsvReplaySource::next(Emitter& out, size_t budget) {
  if (!file_ || !file_->in) return false;
  std::string line;
  uint64_t next_row = row_index_.load(std::memory_order_relaxed);
  // Restored from a checkpoint: skip rows the previous run already emitted.
  while (next_row < resume_from_row_) {
    if (!std::getline(file_->in, line)) return false;
    row_index_.store(++next_row, std::memory_order_relaxed);
  }
  size_t produced = 0;
  while (produced < budget) {
    if (max_rows_ != 0 && next_row >= max_rows_) return false;
    if (!std::getline(file_->in, line)) return false;  // EOF: source done
    uint64_t row = next_row;
    row_index_.store(++next_row, std::memory_order_relaxed);
    if (line.empty()) continue;
    if (row % parallelism_ != instance_) continue;  // another instance's row
    StreamPacket p = parse_csv_row(line, schema_);
    p.set_event_time_ns(now_ns());
    emitted_.fetch_add(1, std::memory_order_relaxed);
    ++produced;
    if (out.emit(std::move(p)) == EmitStatus::kBackpressured) break;
  }
  return true;
}

void CsvReplaySource::close() { file_.reset(); }

struct CsvFileSink::FileState {
  std::ofstream out;
};

CsvFileSink::CsvFileSink(std::string path) : path_(std::move(path)) {
  file_ = std::make_unique<FileState>();
  file_->out.open(path_);
  if (!file_->out) throw std::runtime_error("CsvFileSink: cannot open " + path_);
}

CsvFileSink::~CsvFileSink() = default;

void CsvFileSink::process(StreamPacket& packet, Emitter&) {
  auto& out = file_->out;
  for (size_t f = 0; f < packet.field_count(); ++f) {
    if (f > 0) out << ',';
    const Value& v = packet.field(f);
    switch (value_type(v)) {
      case FieldType::kI32: out << std::get<int32_t>(v); break;
      case FieldType::kI64: out << std::get<int64_t>(v); break;
      case FieldType::kF32: out << std::get<float>(v); break;
      case FieldType::kF64: out << std::get<double>(v); break;
      case FieldType::kBool: out << (std::get<bool>(v) ? 1 : 0); break;
      case FieldType::kString: out << std::get<std::string>(v); break;
      case FieldType::kBytes: out << "<bytes>"; break;
    }
  }
  out << '\n';
  ++rows_;
}

void CsvFileSink::close(Emitter&) {
  if (file_) file_->out.flush();
}

}  // namespace neptune::workload
